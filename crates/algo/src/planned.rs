//! Selectivity-planned pattern matching.
//!
//! [`crate::match_pattern`] seeds its search from *all* nodes and
//! re-resolves label text per edge visited; on index-bearing graphs
//! both costs are avoidable. This module is the planned counterpart:
//! [`match_pattern_planned`] accepts a per-variable candidate
//! **domain** (typically an index lookup produced by
//! [`gdm_core::AttributedView::candidates`]), orders variables by
//! estimated selectivity — smallest domain first, connectivity to
//! already-placed variables as the tiebreak — and matches with
//! per-pattern symbol caches so label comparisons are one `u32` hash
//! instead of a text resolution per edge.
//!
//! Results land in a flat [`MatchTable`] (one row per match, one
//! column per pattern variable) rather than one hash map per match;
//! [`MatchTable::to_bindings`] converts for consumers of the unplanned
//! API. The planned and unplanned matchers always produce the same
//! binding *set* (verified by the `planned_equiv` property suite); the
//! row order may differ because the variable order does.

use crate::pattern::{Binding, Pattern};
use gdm_core::{AttributedView, Direction, FxHashMap, FxHashSet, NodeId, Result, Symbol};
use gdm_govern::{ExecutionGuard, GuardExt};

/// Per-variable candidate domains, indexed like `Pattern::nodes`.
/// `None` leaves the variable unrestricted (full scan or neighbor
/// expansion); `Some(ids)` restricts it to the listed nodes.
pub type Domains = Vec<Option<Vec<NodeId>>>;

/// A flat match result: one row per match, one column per pattern
/// node, in `Pattern::nodes` order. Equality is exact — same columns,
/// same rows, same row *order* — which is what the parallel executor's
/// byte-identity tests assert against the sequential pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchTable {
    vars: Vec<String>,
    data: Vec<NodeId>,
}

impl MatchTable {
    /// Column names, in `Pattern::nodes` order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        if self.vars.is_empty() {
            0
        } else {
            self.data.len() / self.vars.len()
        }
    }

    /// True when no match was found.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterates matches as node-id rows aligned with [`Self::vars`].
    pub fn rows(&self) -> impl Iterator<Item = &[NodeId]> {
        self.data.chunks_exact(self.vars.len().max(1))
    }

    /// Converts to the unplanned API's binding maps.
    pub fn to_bindings(&self) -> Vec<Binding> {
        self.rows()
            .map(|row| {
                self.vars
                    .iter()
                    .zip(row)
                    .map(|(v, &n)| (v.clone(), n))
                    .collect()
            })
            .collect()
    }

    /// Builds a table from the unplanned API's binding maps, with
    /// columns in `pattern`'s variable order — the conversion used
    /// when the planned matcher degrades to the reference path.
    pub fn from_bindings(pattern: &Pattern, bindings: &[Binding]) -> Self {
        let vars: Vec<String> = pattern.nodes.iter().map(|pn| pn.var.clone()).collect();
        let mut data = Vec::with_capacity(vars.len() * bindings.len());
        for b in bindings {
            for v in &vars {
                data.push(b[v]);
            }
        }
        MatchTable { vars, data }
    }

    /// Assembles a table directly from a flat row buffer — the
    /// vectorized executor's exit point into the planned API.
    pub(crate) fn from_parts(vars: Vec<String>, data: Vec<NodeId>) -> Self {
        debug_assert!(vars.is_empty() || data.len().is_multiple_of(vars.len()));
        MatchTable { vars, data }
    }
}

/// Variable elimination order by estimated selectivity: the first
/// variable is the one with the smallest estimate; each subsequent
/// pick prefers variables connected to an already-placed one (classic
/// VF2 connectivity), breaking ties by smaller estimate, then index.
pub fn planned_order(pattern: &Pattern, estimates: &[usize]) -> Vec<usize> {
    let n = pattern.nodes.len();
    debug_assert_eq!(estimates.len(), n);
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for step in 0..n {
        let next = (0..n)
            .filter(|&i| !placed[i])
            .min_by_key(|&i| {
                let connected = step > 0
                    && pattern
                        .edges
                        .iter()
                        .any(|e| (placed[e.from] && e.to == i) || (placed[e.to] && e.from == i));
                (!connected, estimates[i], i)
            })
            .expect("unplaced node exists");
        placed[next] = true;
        order.push(next);
    }
    order
}

/// Domain estimates for ordering: the domain size where one is given,
/// the graph's node count where not.
pub fn domain_estimates<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
) -> Vec<usize> {
    (0..pattern.nodes.len())
        .map(|i| {
            domains
                .get(i)
                .and_then(Option::as_ref)
                .map_or_else(|| g.node_count(), Vec::len)
        })
        .collect()
}

/// Builds domains for `pattern` from the view's own indexes: each
/// constrained variable whose constraints an index can bound (per
/// [`AttributedView::candidate_estimate`]) gets its candidate list;
/// unconstrained or index-less variables stay unrestricted.
pub fn auto_domains<G: AttributedView + ?Sized>(g: &G, pattern: &Pattern) -> Domains {
    pattern
        .nodes
        .iter()
        .map(|pn| {
            if pn.label.is_none() && pn.props.is_empty() {
                return None;
            }
            g.candidate_estimate(pn.label.as_deref(), &pn.props)
                .map(|_| g.candidates(pn.label.as_deref(), &pn.props))
        })
        .collect()
}

/// Probes index-supplied domains for consistency with the graph: a
/// secondary index that hands back a node the graph does not contain
/// is corrupt (stale entry, torn rebuild), and — since the matcher
/// only *filters* candidates — may equally be **missing** entries, so
/// its domains cannot be trusted as complete either. Returns `false`
/// on the first dangling id.
pub fn domains_consistent<G: AttributedView + ?Sized>(
    g: &G,
    domains: &[Option<Vec<NodeId>>],
) -> bool {
    domains
        .iter()
        .flatten()
        .flatten()
        .all(|&n| g.contains_node(n))
}

/// Planned matching with the view's own indexes seeding the domains.
///
/// Degradation ladder: the index-built domains are probed with
/// [`domains_consistent`] first; if the probe reports an inconsistency
/// the planned path is abandoned and the query is answered by the
/// unplanned reference matcher ([`crate::match_pattern`]), which scans
/// rather than trusts indexes — slower, never wrong.
pub fn match_pattern_auto<G: AttributedView + ?Sized>(g: &G, pattern: &Pattern) -> MatchTable {
    match_pattern_auto_guarded(g, pattern, None).expect("ungoverned search cannot be interrupted")
}

/// [`match_pattern_auto`] under an [`ExecutionGuard`] (same
/// index-inconsistency fallback; both paths are governed).
pub fn match_pattern_auto_governed<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    guard: &ExecutionGuard,
) -> Result<MatchTable> {
    match_pattern_auto_guarded(g, pattern, Some(guard))
}

pub(crate) fn match_pattern_auto_guarded<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    guard: Option<&ExecutionGuard>,
) -> Result<MatchTable> {
    let domains = auto_domains(g, pattern);
    if !domains_consistent(g, &domains) {
        let bindings = crate::pattern::match_pattern_guarded(g, pattern, guard)?;
        return Ok(MatchTable::from_bindings(pattern, &bindings));
    }
    match_pattern_planned_guarded(g, pattern, &domains, guard)
}

/// Finds all subgraph matches of `pattern` in `g`, seeding each
/// variable from its domain (where given) and ordering variables by
/// estimated selectivity. Matches are injective on nodes and equal to
/// [`crate::match_pattern`]'s as a set; row order is deterministic but
/// follows the planned variable order.
pub fn match_pattern_planned<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
) -> MatchTable {
    match_pattern_planned_guarded(g, pattern, domains, None)
        .expect("ungoverned search cannot be interrupted")
}

/// [`match_pattern_planned`] under an [`ExecutionGuard`]: one node
/// charge per candidate binding attempt, one row charge per match.
/// With an unlimited guard the result equals [`match_pattern_planned`].
pub fn match_pattern_planned_governed<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    guard: &ExecutionGuard,
) -> Result<MatchTable> {
    match_pattern_planned_guarded(g, pattern, domains, Some(guard))
}

pub(crate) fn match_pattern_planned_guarded<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    guard: Option<&ExecutionGuard>,
) -> Result<MatchTable> {
    let vars: Vec<String> = pattern.nodes.iter().map(|pn| pn.var.clone()).collect();
    if pattern.nodes.is_empty() {
        return Ok(MatchTable {
            vars,
            data: Vec::new(),
        });
    }
    let estimates = domain_estimates(g, pattern, domains);
    let order = planned_order(pattern, &estimates);
    let domain_sets: Vec<Option<FxHashSet<u64>>> = (0..pattern.nodes.len())
        .map(|i| {
            domains
                .get(i)
                .and_then(Option::as_ref)
                .map(|d| d.iter().map(|n| n.raw()).collect())
        })
        .collect();
    let mut search = Search {
        g,
        pattern,
        order: &order,
        domains,
        domain_sets: &domain_sets,
        edge_label_cache: vec![FxHashMap::default(); pattern.edges.len()],
        node_label_cache: vec![FxHashMap::default(); pattern.nodes.len()],
        assignment: vec![None; pattern.nodes.len()],
        all_nodes: None,
        data: Vec::new(),
        guard,
    };
    search.extend(0)?;
    Ok(MatchTable {
        vars,
        data: search.data,
    })
}

struct Search<'a, G: ?Sized> {
    g: &'a G,
    pattern: &'a Pattern,
    order: &'a [usize],
    domains: &'a [Option<Vec<NodeId>>],
    domain_sets: &'a [Option<FxHashSet<u64>>],
    /// Per pattern edge: label symbol → "matches the edge's label
    /// constraint", so text is resolved once per distinct symbol.
    edge_label_cache: Vec<FxHashMap<u32, bool>>,
    /// Per pattern node: ditto for the node label constraint.
    node_label_cache: Vec<FxHashMap<u32, bool>>,
    assignment: Vec<Option<NodeId>>,
    /// Full node list, materialized at most once per search.
    all_nodes: Option<Vec<NodeId>>,
    data: Vec<NodeId>,
    guard: Option<&'a ExecutionGuard>,
}

impl<G: AttributedView + ?Sized> Search<'_, G> {
    fn extend(&mut self, depth: usize) -> Result<()> {
        if depth == self.order.len() {
            self.guard.row()?;
            for slot in &self.assignment {
                self.data.push(slot.expect("complete assignment"));
            }
            return Ok(());
        }
        let pv = self.order[depth];
        // Generating edge: the first pattern edge joining `pv` to an
        // already-bound variable. Expanding along it yields exactly
        // the nodes satisfying that edge constraint, so it is skipped
        // during the consistency re-check.
        let generator = self.pattern.edges.iter().position(|e| {
            (e.to == pv && e.from != pv && self.assignment[e.from].is_some())
                || (e.from == pv && e.to != pv && self.assignment[e.to].is_some())
        });
        match generator {
            Some(ei) => {
                let candidates = self.expand(ei, pv);
                for n in candidates {
                    if let Some(set) = &self.domain_sets[pv] {
                        if !set.contains(&n.raw()) {
                            continue;
                        }
                    }
                    self.try_bind(depth, pv, n, Some(ei))?;
                }
            }
            None => {
                let domains = self.domains;
                if let Some(dom) = domains.get(pv).and_then(|d| d.as_deref()) {
                    for &n in dom {
                        self.try_bind(depth, pv, n, None)?;
                    }
                } else {
                    if self.all_nodes.is_none() {
                        self.all_nodes = Some(self.g.node_ids());
                    }
                    let all = self.all_nodes.take().expect("just filled");
                    for &n in &all {
                        if let Err(e) = self.try_bind(depth, pv, n, None) {
                            self.all_nodes = Some(all);
                            return Err(e);
                        }
                    }
                    self.all_nodes = Some(all);
                }
            }
        }
        Ok(())
    }

    /// Distinct neighbors of the bound endpoint of pattern edge `ei`
    /// reachable along it, with the edge-label constraint applied
    /// during the visit.
    fn expand(&mut self, ei: usize, pv: usize) -> Vec<NodeId> {
        let g = self.g;
        let e = &self.pattern.edges[ei];
        let (bound, dir) = if e.to == pv {
            (self.assignment[e.from].expect("generator"), e.direction)
        } else {
            let dir = match e.direction {
                Direction::Outgoing => Direction::Incoming,
                other => other,
            };
            (self.assignment[e.to].expect("generator"), dir)
        };
        let want = e.label.as_deref();
        let ranges = &e.ranges;
        let cache = &mut self.edge_label_cache[ei];
        let mut out = Vec::new();
        g.visit_edges_dir(bound, dir, &mut |er| {
            if label_ok(g, cache, want, er.label)
                && crate::pattern::edge_ranges_ok(g, er.id, ranges)
                && !out.contains(&er.to)
            {
                out.push(er.to);
            }
        });
        out
    }

    fn try_bind(
        &mut self,
        depth: usize,
        pv: usize,
        n: NodeId,
        generator: Option<usize>,
    ) -> Result<()> {
        self.guard.node()?;
        if self.assignment.iter().flatten().any(|&m| m == n) {
            return Ok(()); // injectivity
        }
        if !self.node_ok(pv, n) {
            return Ok(());
        }
        self.assignment[pv] = Some(n);
        let recurse = if self.edges_consistent(pv, generator) {
            self.extend(depth + 1)
        } else {
            Ok(())
        };
        self.assignment[pv] = None;
        recurse
    }

    fn node_ok(&mut self, pv: usize, n: NodeId) -> bool {
        let g = self.g;
        if !g.contains_node(n) {
            return false;
        }
        let pn = &self.pattern.nodes[pv];
        if let Some(want) = &pn.label {
            let cache = &mut self.node_label_cache[pv];
            let ok = match g.node_label(n) {
                None => false,
                Some(sym) => *cache
                    .entry(sym.raw())
                    .or_insert_with(|| g.label_text(sym).is_some_and(|t| t == want)),
            };
            if !ok {
                return false;
            }
        }
        pn.props.iter().all(|(key, want)| {
            g.node_property(n, key)
                .is_some_and(|got| got.loose_eq(want))
        })
    }

    /// Checks every pattern edge incident to `just_placed` whose
    /// endpoints are both bound, except the generating edge (already
    /// satisfied by construction).
    fn edges_consistent(&mut self, just_placed: usize, skip: Option<usize>) -> bool {
        for ei in 0..self.pattern.edges.len() {
            if Some(ei) == skip {
                continue;
            }
            let e = &self.pattern.edges[ei];
            if e.from != just_placed && e.to != just_placed {
                continue;
            }
            let (Some(from), Some(to)) = (self.assignment[e.from], self.assignment[e.to]) else {
                continue;
            };
            if !self.has_edge(ei, from, to) {
                return false;
            }
        }
        true
    }

    fn has_edge(&mut self, ei: usize, from: NodeId, to: NodeId) -> bool {
        let g = self.g;
        let e = &self.pattern.edges[ei];
        let want = e.label.as_deref();
        let ranges = &e.ranges;
        let cache = &mut self.edge_label_cache[ei];
        let check = |a: NodeId, b: NodeId, cache: &mut FxHashMap<u32, bool>| {
            let mut found = false;
            g.visit_out_edges(a, &mut |er| {
                if er.to == b
                    && label_ok(g, cache, want, er.label)
                    && crate::pattern::edge_ranges_ok(g, er.id, ranges)
                {
                    found = true;
                }
            });
            found
        };
        match e.direction {
            Direction::Outgoing => check(from, to, cache),
            Direction::Incoming => check(to, from, cache),
            Direction::Both => check(from, to, cache) || check(to, from, cache),
        }
    }
}

/// Does `sym` satisfy the edge/node label constraint `want`, resolving
/// each distinct symbol's text at most once via `cache`?
fn label_ok<G: AttributedView + ?Sized>(
    g: &G,
    cache: &mut FxHashMap<u32, bool>,
    want: Option<&str>,
    sym: Option<Symbol>,
) -> bool {
    let Some(want) = want else { return true };
    match sym {
        None => false,
        Some(sym) => *cache
            .entry(sym.raw())
            .or_insert_with(|| g.label_text(sym).is_some_and(|t| t == want)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{canonical, match_pattern, PatternNode};
    use gdm_core::props;
    use gdm_graphs::PropertyGraph;

    fn community() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let mut nodes = Vec::new();
        for i in 0..20u64 {
            let label = if i % 4 == 0 { "company" } else { "person" };
            nodes.push(g.add_node(label, props! { "i" => i as i64, "band" => i as i64 % 3 }));
        }
        for i in 0..20usize {
            let a = nodes[i];
            let b = nodes[(i * 7 + 3) % 20];
            let c = nodes[(i * 11 + 5) % 20];
            let _ = g.add_edge(a, b, "knows", props! {});
            let _ = g.add_edge(a, c, if i % 2 == 0 { "knows" } else { "likes" }, props! {});
        }
        g
    }

    fn chain_pattern() -> Pattern {
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x"));
        let y = p.node(PatternNode::var("y").with_label("person"));
        let z = p.node(PatternNode::var("z"));
        p.edge(x, y, Some("knows")).unwrap();
        p.edge(y, z, Some("knows")).unwrap();
        p
    }

    #[test]
    fn planned_equals_unplanned_on_chain() {
        let g = community();
        let p = chain_pattern();
        let planned = match_pattern_auto(&g, &p);
        let unplanned = match_pattern(&g, &p);
        assert_eq!(canonical(&planned.to_bindings()), canonical(&unplanned));
        assert_eq!(planned.len(), unplanned.len());
    }

    #[test]
    fn explicit_domains_restrict_results() {
        let g = community();
        let mut p = Pattern::new();
        p.node(PatternNode::var("x"));
        let all = match_pattern_planned(&g, &p, &[None]);
        assert_eq!(all.len(), 20);
        let dom: Domains = vec![Some(vec![NodeId(1), NodeId(2)])];
        let some = match_pattern_planned(&g, &p, &dom);
        assert_eq!(some.len(), 2);
        let rows: Vec<&[NodeId]> = some.rows().collect();
        assert_eq!(rows[0], &[NodeId(1)]);
        assert_eq!(rows[1], &[NodeId(2)]);
    }

    #[test]
    fn domains_apply_to_expanded_variables_too() {
        let g = community();
        let p = chain_pattern();
        // Restrict z to a single node; every surviving row must bind
        // z there, and the rows must be a subset of the unrestricted
        // result.
        let z_only = NodeId(3);
        let dom: Domains = vec![None, None, Some(vec![z_only])];
        let restricted = match_pattern_planned(&g, &p, &dom);
        let full = canonical(&match_pattern(&g, &p));
        for row in restricted.rows() {
            assert_eq!(row[2], z_only);
        }
        let restricted_canon = canonical(&restricted.to_bindings());
        for r in &restricted_canon {
            assert!(full.contains(r));
        }
    }

    #[test]
    fn selectivity_order_puts_smallest_domain_first() {
        let mut p = Pattern::new();
        let a = p.node(PatternNode::var("a"));
        let b = p.node(PatternNode::var("b"));
        let c = p.node(PatternNode::var("c"));
        p.edge(a, b, None).unwrap();
        p.edge(b, c, None).unwrap();
        let order = planned_order(&p, &[100, 50, 3]);
        assert_eq!(order[0], 2, "smallest estimate first");
        assert_eq!(order[1], 1, "then its pattern neighbor");
        assert_eq!(order[2], 0);
    }

    #[test]
    fn connectivity_beats_selectivity_after_the_root() {
        let mut p = Pattern::new();
        let a = p.node(PatternNode::var("a"));
        let b = p.node(PatternNode::var("b"));
        let c = p.node(PatternNode::var("c"));
        p.edge(a, b, None).unwrap();
        // c is disconnected and tiny; it still goes last because b is
        // connected to the placed a.
        let order = planned_order(&p, &[1, 100, 2]);
        assert_eq!(order, vec![0, 1, 2]);
        let _ = c;
    }

    #[test]
    fn empty_pattern_and_empty_table() {
        let g = community();
        let table = match_pattern_planned(&g, &Pattern::new(), &Vec::new());
        assert_eq!(table.len(), 0);
        assert!(table.is_empty());
        assert!(table.to_bindings().is_empty());
    }

    #[test]
    fn table_round_trips_to_bindings() {
        let g = community();
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x").with_label("company"));
        let y = p.node(PatternNode::var("y"));
        p.edge(x, y, Some("knows")).unwrap();
        let table = match_pattern_auto(&g, &p);
        assert_eq!(table.vars(), &["x".to_owned(), "y".to_owned()]);
        let bindings = table.to_bindings();
        assert_eq!(bindings.len(), table.len());
        for (row, b) in table.rows().zip(&bindings) {
            assert_eq!(b["x"], row[0]);
            assert_eq!(b["y"], row[1]);
        }
    }

    /// A view whose index lies: `candidate_estimate` claims coverage
    /// and `candidates` hands back a dangling node id — the corrupt
    /// secondary index the degradation ladder must survive.
    struct LyingIndex(PropertyGraph);

    impl gdm_core::GraphView for LyingIndex {
        fn is_directed(&self) -> bool {
            self.0.is_directed()
        }
        fn node_count(&self) -> usize {
            self.0.node_count()
        }
        fn edge_count(&self) -> usize {
            self.0.edge_count()
        }
        fn contains_node(&self, n: NodeId) -> bool {
            self.0.contains_node(n)
        }
        fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
            self.0.visit_nodes(f)
        }
        fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(gdm_core::EdgeRef)) {
            self.0.visit_out_edges(n, f)
        }
        fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(gdm_core::EdgeRef)) {
            self.0.visit_in_edges(n, f)
        }
        fn label_text(&self, sym: Symbol) -> Option<&str> {
            self.0.label_text(sym)
        }
    }

    impl AttributedView for LyingIndex {
        fn node_label(&self, n: NodeId) -> Option<Symbol> {
            self.0.node_label(n)
        }
        fn node_property(&self, n: NodeId, key: &str) -> Option<gdm_core::Value> {
            self.0.node_property(n, key)
        }
        fn edge_property(&self, e: gdm_core::EdgeId, key: &str) -> Option<gdm_core::Value> {
            self.0.edge_property(e, key)
        }
        fn candidates(
            &self,
            _label: Option<&str>,
            _props: &[(String, gdm_core::Value)],
        ) -> Vec<NodeId> {
            vec![NodeId(u64::MAX)] // stale entry for a node that never existed
        }
        fn candidate_estimate(
            &self,
            _label: Option<&str>,
            _props: &[(String, gdm_core::Value)],
        ) -> Option<usize> {
            Some(1)
        }
    }

    #[test]
    fn inconsistent_index_falls_back_to_reference_matcher() {
        let g = LyingIndex(community());
        let p = chain_pattern();
        let domains = auto_domains(&g, &p);
        assert!(!domains_consistent(&g, &domains));
        // Trusting the lying index would return zero matches; the
        // fallback answers from the reference scan instead.
        let via_auto = match_pattern_auto(&g, &p);
        let reference = match_pattern(&g.0, &p);
        assert!(!reference.is_empty());
        assert_eq!(canonical(&via_auto.to_bindings()), canonical(&reference));
    }

    #[test]
    fn governed_planned_interrupts_on_tiny_budget() {
        let g = community();
        let p = chain_pattern();
        let guard = gdm_govern::ExecutionGuard::new(gdm_govern::Limits::none().with_node_visits(1));
        let err =
            match_pattern_planned_governed(&g, &p, &auto_domains(&g, &p), &guard).unwrap_err();
        assert!(err.is_interrupted());
    }

    #[test]
    fn governed_unlimited_equals_ungoverned() {
        let g = community();
        let p = chain_pattern();
        let guard = gdm_govern::ExecutionGuard::unlimited();
        let governed =
            match_pattern_planned_governed(&g, &p, &auto_domains(&g, &p), &guard).unwrap();
        let plain = match_pattern_auto(&g, &p);
        assert_eq!(
            canonical(&governed.to_bindings()),
            canonical(&plain.to_bindings())
        );
    }

    #[test]
    fn loose_numeric_property_constraints_match() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("n", props! { "v" => 3 });
        let b = g.add_node("n", props! { "v" => 3.0 });
        g.add_node("n", props! { "v" => 4 });
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_prop("v", 3.0));
        let planned = match_pattern_auto(&g, &p);
        let unplanned = match_pattern(&g, &p);
        assert_eq!(canonical(&planned.to_bindings()), canonical(&unplanned));
        assert_eq!(planned.len(), 2);
        let bound: Vec<NodeId> = planned.rows().map(|r| r[0]).collect();
        assert!(bound.contains(&a) && bound.contains(&b));
    }
}
