//! Regular path queries (Section IV.2).
//!
//! The paper's "regular simple paths ... allow some node and edge
//! restrictions (e.g., regular expressions)" and notes the key
//! complexity fact: "finding simple paths with desired properties in
//! direct graphs is an NP-complete problem". Accordingly:
//!
//! * [`regular_path_exists`] answers the *walk* semantics (does any
//!   walk spell a word in the language?) in polynomial time via the
//!   product of the graph with a Thompson NFA;
//! * [`regular_simple_paths`] enumerates *simple* paths matching the
//!   expression by budgeted backtracking, failing loudly when the
//!   budget is exhausted.
//!
//! Expression syntax over edge labels:
//!
//! ```text
//! expr     := alt
//! alt      := seq ('|' seq)*
//! seq      := rep+
//! rep      := atom ('*' | '+' | '?')?
//! atom     := label | '.' | '(' expr ')'
//! label    := identifier | '<' any chars except '>' '>'
//! ```

use crate::paths::Path;
use gdm_core::{EdgeId, FxHashSet, GdmError, GraphView, NodeId, Result};
use gdm_govern::{ExecutionGuard, GuardExt};
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Label(String),
    Any,
    Concat(Box<Ast>, Box<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> GdmError {
        GdmError::Parse {
            dialect: "label-regex",
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.bump();
        }
    }

    fn parse_alt(&mut self) -> Result<Ast> {
        let mut left = self.parse_seq()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                let right = self.parse_seq()?;
                left = Ast::Alt(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Ast> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => parts.push(self.parse_rep()?),
            }
        }
        let mut iter = parts.into_iter();
        let first = iter.next().ok_or_else(|| self.error("empty expression"))?;
        Ok(iter.fold(first, |acc, next| {
            Ast::Concat(Box::new(acc), Box::new(next))
        }))
    }

    fn parse_rep(&mut self) -> Result<Ast> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    atom = Ast::Star(Box::new(atom));
                }
                Some('+') => {
                    self.bump();
                    atom = Ast::Plus(Box::new(atom));
                }
                Some('?') => {
                    self.bump();
                    atom = Ast::Opt(Box::new(atom));
                }
                _ => return Ok(atom),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Ast> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.parse_alt()?;
                self.skip_ws();
                if self.bump() != Some(')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some('.') => {
                self.bump();
                Ok(Ast::Any)
            }
            Some('<') => {
                self.bump();
                let start = self.pos;
                while self.peek().is_some_and(|c| c != '>') {
                    self.bump();
                }
                let label = self.src[start..self.pos].to_owned();
                if self.bump() != Some('>') {
                    return Err(self.error("unterminated '<label>'"));
                }
                Ok(Ast::Label(label))
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let start = self.pos;
                while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    self.bump();
                }
                Ok(Ast::Label(self.src[start..self.pos].to_owned()))
            }
            Some(c) => Err(self.error(format!("unexpected character {c:?}"))),
            None => Err(self.error("unexpected end of expression")),
        }
    }
}

// ---------------------------------------------------------------------
// Thompson NFA
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Trans {
    Label(String),
    Any,
}

#[derive(Debug, Clone, Default)]
struct State {
    eps: Vec<usize>,
    steps: Vec<(Trans, usize)>,
}

/// A compiled edge-label regular expression.
#[derive(Debug, Clone)]
pub struct LabelRegex {
    states: Vec<State>,
    start: usize,
    accept: usize,
    source: String,
}

impl LabelRegex {
    /// Compiles `expr`.
    pub fn compile(expr: &str) -> Result<Self> {
        let mut parser = Parser::new(expr);
        let ast = parser.parse_alt()?;
        parser.skip_ws();
        if parser.pos != expr.len() {
            return Err(parser.error("trailing input"));
        }
        let mut nfa = LabelRegex {
            states: Vec::new(),
            start: 0,
            accept: 0,
            source: expr.to_owned(),
        };
        let (s, a) = nfa.build(&ast);
        nfa.start = s;
        nfa.accept = a;
        Ok(nfa)
    }

    /// The original expression text.
    pub fn source(&self) -> &str {
        &self.source
    }

    fn add_state(&mut self) -> usize {
        self.states.push(State::default());
        self.states.len() - 1
    }

    fn build(&mut self, ast: &Ast) -> (usize, usize) {
        match ast {
            Ast::Label(l) => {
                let s = self.add_state();
                let a = self.add_state();
                self.states[s].steps.push((Trans::Label(l.clone()), a));
                (s, a)
            }
            Ast::Any => {
                let s = self.add_state();
                let a = self.add_state();
                self.states[s].steps.push((Trans::Any, a));
                (s, a)
            }
            Ast::Concat(x, y) => {
                let (sx, ax) = self.build(x);
                let (sy, ay) = self.build(y);
                self.states[ax].eps.push(sy);
                (sx, ay)
            }
            Ast::Alt(x, y) => {
                let s = self.add_state();
                let a = self.add_state();
                let (sx, ax) = self.build(x);
                let (sy, ay) = self.build(y);
                self.states[s].eps.push(sx);
                self.states[s].eps.push(sy);
                self.states[ax].eps.push(a);
                self.states[ay].eps.push(a);
                (s, a)
            }
            Ast::Star(x) => {
                let s = self.add_state();
                let a = self.add_state();
                let (sx, ax) = self.build(x);
                self.states[s].eps.push(sx);
                self.states[s].eps.push(a);
                self.states[ax].eps.push(sx);
                self.states[ax].eps.push(a);
                (s, a)
            }
            Ast::Plus(x) => {
                let (sx, ax) = self.build(x);
                let a = self.add_state();
                self.states[ax].eps.push(sx);
                self.states[ax].eps.push(a);
                (sx, a)
            }
            Ast::Opt(x) => {
                let s = self.add_state();
                let a = self.add_state();
                let (sx, ax) = self.build(x);
                self.states[s].eps.push(sx);
                self.states[s].eps.push(a);
                self.states[ax].eps.push(a);
                (s, a)
            }
        }
    }

    pub(crate) fn eps_closure(&self, set: &mut FxHashSet<usize>) {
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &next in &self.states[s].eps {
                if set.insert(next) {
                    stack.push(next);
                }
            }
        }
    }

    pub(crate) fn step(&self, set: &FxHashSet<usize>, label: Option<&str>) -> FxHashSet<usize> {
        let mut out = FxHashSet::default();
        for &s in set {
            for (trans, next) in &self.states[s].steps {
                let matches = match trans {
                    Trans::Any => true,
                    Trans::Label(want) => label == Some(want.as_str()),
                };
                if matches {
                    out.insert(*next);
                }
            }
        }
        self.eps_closure(&mut out);
        out
    }

    pub(crate) fn start_set(&self) -> FxHashSet<usize> {
        let mut set = FxHashSet::default();
        set.insert(self.start);
        self.eps_closure(&mut set);
        set
    }

    pub(crate) fn accepts_set(&self, set: &FxHashSet<usize>) -> bool {
        set.contains(&self.accept)
    }

    /// Does the word (sequence of labels) belong to the language?
    pub fn accepts<'a>(&self, word: impl IntoIterator<Item = &'a str>) -> bool {
        let mut set = self.start_set();
        for label in word {
            set = self.step(&set, Some(label));
            if set.is_empty() {
                return false;
            }
        }
        self.accepts_set(&set)
    }
}

// ---------------------------------------------------------------------
// Graph queries
// ---------------------------------------------------------------------

/// Walk semantics: is there any walk from `a` to `b` whose label word
/// matches `regex`? Polynomial product-automaton BFS.
pub fn regular_path_exists(g: &dyn GraphView, a: NodeId, b: NodeId, regex: &LabelRegex) -> bool {
    regular_path_exists_guarded(g, a, b, regex, None)
        .expect("ungoverned search cannot be interrupted")
}

/// [`regular_path_exists`] under an [`ExecutionGuard`]: the product
/// BFS charges one node visit per dequeued product state and one edge
/// visit per expanded edge. With an unlimited guard the result equals
/// [`regular_path_exists`].
pub fn regular_path_exists_governed(
    g: &dyn GraphView,
    a: NodeId,
    b: NodeId,
    regex: &LabelRegex,
    guard: &ExecutionGuard,
) -> Result<bool> {
    regular_path_exists_guarded(g, a, b, regex, Some(guard))
}

pub(crate) fn regular_path_exists_guarded(
    g: &dyn GraphView,
    a: NodeId,
    b: NodeId,
    regex: &LabelRegex,
    guard: Option<&ExecutionGuard>,
) -> Result<bool> {
    if !g.contains_node(a) || !g.contains_node(b) {
        return Ok(false);
    }
    // Product state: (node, nfa state). BFS over epsilon-closed sets is
    // per-node; we track (node, state) pairs explicitly.
    let mut seen: FxHashSet<(u64, usize)> = FxHashSet::default();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    let start = regex.start_set();
    for &s in &start {
        if seen.insert((a.raw(), s)) {
            queue.push_back((a, s));
        }
    }
    if a == b && regex.accepts_set(&start) {
        return Ok(true);
    }
    while let Some((node, state)) = queue.pop_front() {
        guard.node()?;
        let mut edges = Vec::new();
        g.visit_out_edges(node, &mut |e| edges.push(e));
        for e in edges {
            guard.edge()?;
            let label = e.label.and_then(|sym| g.label_text(sym));
            let mut from_set = FxHashSet::default();
            from_set.insert(state);
            // No eps-closure needed here: sets in `seen` are already
            // closed at insertion time via step()/start_set(). A single
            // state still needs closing before stepping.
            regex.eps_closure(&mut from_set);
            let next = regex.step(&from_set, label);
            for &ns in &next {
                if ns == regex.accept && e.to == b {
                    return Ok(true);
                }
                if seen.insert((e.to.raw(), ns)) {
                    queue.push_back((e.to, ns));
                }
            }
            // Accepting in a non-accept-labeled state set.
            if e.to == b && regex.accepts_set(&next) {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Simple-path semantics: enumerate simple paths from `a` to `b` whose
/// label word matches `regex`, up to `budget` search steps
/// (NP-complete in general — the budget keeps the search honest).
pub fn regular_simple_paths(
    g: &dyn GraphView,
    a: NodeId,
    b: NodeId,
    regex: &LabelRegex,
    budget: usize,
) -> Result<Vec<Path>> {
    if !g.contains_node(a) || !g.contains_node(b) {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut steps = 0usize;
    let start = regex.start_set();
    if a == b && regex.accepts_set(&start) {
        out.push(Path {
            nodes: vec![a],
            edges: vec![],
        });
    }
    let mut nodes = vec![a];
    let mut edges: Vec<EdgeId> = Vec::new();
    backtrack(
        g, b, regex, budget, &mut steps, &start, &mut nodes, &mut edges, &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    g: &dyn GraphView,
    target: NodeId,
    regex: &LabelRegex,
    budget: usize,
    steps: &mut usize,
    states: &FxHashSet<usize>,
    nodes: &mut Vec<NodeId>,
    edges: &mut Vec<EdgeId>,
    out: &mut Vec<Path>,
) -> Result<()> {
    *steps += 1;
    if *steps > budget {
        return Err(GdmError::BudgetExhausted(format!(
            "regular simple path search exceeded {budget} steps"
        )));
    }
    let current = *nodes.last().expect("non-empty");
    let mut next_edges = Vec::new();
    g.visit_out_edges(current, &mut |e| next_edges.push(e));
    for e in next_edges {
        if nodes.contains(&e.to) {
            continue;
        }
        let label = e.label.and_then(|sym| g.label_text(sym));
        let next_states = regex.step(states, label);
        if next_states.is_empty() {
            continue;
        }
        nodes.push(e.to);
        edges.push(e.id);
        if e.to == target && regex.accepts_set(&next_states) {
            out.push(Path {
                nodes: nodes.clone(),
                edges: edges.clone(),
            });
        }
        backtrack(
            g,
            target,
            regex,
            budget,
            steps,
            &next_states,
            nodes,
            edges,
            out,
        )?;
        nodes.pop();
        edges.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_graphs::SimpleGraph;

    #[test]
    fn regex_word_acceptance() {
        let r = LabelRegex::compile("knows+ works_at").unwrap();
        assert!(r.accepts(["knows", "works_at"]));
        assert!(r.accepts(["knows", "knows", "works_at"]));
        assert!(!r.accepts(["works_at"]));
        assert!(!r.accepts(["knows"]));
    }

    #[test]
    fn regex_alternation_and_grouping() {
        let r = LabelRegex::compile("(a | b)* c").unwrap();
        assert!(r.accepts(["c"]));
        assert!(r.accepts(["a", "b", "a", "c"]));
        assert!(!r.accepts(["a", "b"]));
    }

    #[test]
    fn regex_optional_and_wildcard() {
        let r = LabelRegex::compile("a? . b").unwrap();
        assert!(r.accepts(["a", "x", "b"]));
        assert!(r.accepts(["x", "b"]));
        assert!(!r.accepts(["b"]));
    }

    #[test]
    fn quoted_labels() {
        let r = LabelRegex::compile("<has part> <is a>").unwrap();
        assert!(r.accepts(["has part", "is a"]));
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["", "a |", "(a", "a)"] {
            let err = LabelRegex::compile(bad).unwrap_err();
            assert!(matches!(err, GdmError::Parse { .. }), "{bad:?}");
        }
    }

    fn chain() -> (SimpleGraph, Vec<NodeId>) {
        // 0 -a-> 1 -a-> 2 -b-> 3, plus shortcut 0 -b-> 3 and cycle 1->0.
        let mut g = SimpleGraph::directed();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_labeled_edge(n[0], n[1], "a").unwrap();
        g.add_labeled_edge(n[1], n[2], "a").unwrap();
        g.add_labeled_edge(n[2], n[3], "b").unwrap();
        g.add_labeled_edge(n[0], n[3], "b").unwrap();
        g.add_labeled_edge(n[1], n[0], "a").unwrap();
        (g, n)
    }

    #[test]
    fn walk_semantics_existence() {
        let (g, n) = chain();
        let r = LabelRegex::compile("a a b").unwrap();
        assert!(regular_path_exists(&g, n[0], n[3], &r));
        let r2 = LabelRegex::compile("a b").unwrap();
        assert!(!regular_path_exists(&g, n[0], n[3], &r2));
        let r3 = LabelRegex::compile("a* b").unwrap();
        assert!(regular_path_exists(&g, n[0], n[3], &r3));
    }

    #[test]
    fn walk_can_use_cycles() {
        let (g, n) = chain();
        // a a a a b requires going around the 0↔1 cycle.
        let r = LabelRegex::compile("a a a a b").unwrap();
        assert!(regular_path_exists(&g, n[0], n[3], &r));
    }

    #[test]
    fn empty_word_at_same_node() {
        let (g, n) = chain();
        let r = LabelRegex::compile("a*").unwrap();
        assert!(regular_path_exists(&g, n[0], n[0], &r));
    }

    #[test]
    fn simple_paths_exclude_cycles() {
        let (g, n) = chain();
        let r = LabelRegex::compile("a a a a b").unwrap();
        // Walk exists (previous test) but no *simple* path does.
        let paths = regular_simple_paths(&g, n[0], n[3], &r, 10_000).unwrap();
        assert!(paths.is_empty());
        let r2 = LabelRegex::compile("a a b | b").unwrap();
        let paths2 = regular_simple_paths(&g, n[0], n[3], &r2, 10_000).unwrap();
        assert_eq!(paths2.len(), 2, "the long arm and the shortcut");
    }

    #[test]
    fn simple_path_budget() {
        let (g, n) = chain();
        let r = LabelRegex::compile(".*").unwrap();
        let err = regular_simple_paths(&g, n[0], n[3], &r, 1).unwrap_err();
        assert!(matches!(err, GdmError::BudgetExhausted(_)));
    }

    #[test]
    fn unlabeled_edges_match_wildcard_only() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap(); // unlabeled
        let any = LabelRegex::compile(".").unwrap();
        assert!(regular_path_exists(&g, a, b, &any));
        let named = LabelRegex::compile("x").unwrap();
        assert!(!regular_path_exists(&g, a, b, &named));
    }
}
