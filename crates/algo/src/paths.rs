//! Reachability queries (Section IV.2): reachability tests,
//! fixed-length paths, and shortest paths.
//!
//! The paper distinguishes *fixed-length paths* ("contain a fixed
//! number of nodes and edges") from *regular simple paths* (module
//! [`crate::regular`]) and calls shortest path "a related but more
//! complicated problem". Fixed-length **simple-path enumeration** is
//! exponential in general, so the enumerator takes an explicit budget
//! and fails loudly instead of silently truncating.

use gdm_core::{
    Direction, EdgeId, EdgeRef, FxHashMap, FxHashSet, GdmError, GraphView, NodeId, Result,
    WeightedView,
};
use gdm_govern::{ExecutionGuard, GuardExt};
use std::collections::VecDeque;

/// A path: `nodes.len() == edges.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed edges, in order.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Path length = number of edges (the paper's "length of a path").
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the trivial single-node path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Target node.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }
}

/// Reachability test: is there a directed path from `a` to `b`?
pub fn is_reachable(g: &dyn GraphView, a: NodeId, b: NodeId) -> bool {
    if !g.contains_node(a) || !g.contains_node(b) {
        return false;
    }
    if a == b {
        return true;
    }
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut queue = VecDeque::from([a]);
    seen.insert(a.raw());
    while let Some(n) = queue.pop_front() {
        let mut found = false;
        g.visit_out_edges(n, &mut |e| {
            if e.to == b {
                found = true;
            }
            if seen.insert(e.to.raw()) {
                queue.push_back(e.to);
            }
        });
        if found {
            return true;
        }
    }
    false
}

/// True when a *walk* (nodes may repeat) of exactly `len` edges leads
/// from `a` to `b`. Computed by level-set dynamic programming, so it
/// is polynomial even when path enumeration would explode.
pub fn fixed_length_path_exists(g: &dyn GraphView, a: NodeId, b: NodeId, len: usize) -> bool {
    if !g.contains_node(a) || !g.contains_node(b) {
        return false;
    }
    let mut frontier: FxHashSet<u64> = FxHashSet::default();
    frontier.insert(a.raw());
    for _ in 0..len {
        let mut next: FxHashSet<u64> = FxHashSet::default();
        for &n in &frontier {
            g.visit_out_edges(NodeId(n), &mut |e| {
                next.insert(e.to.raw());
            });
        }
        if next.is_empty() {
            return false;
        }
        frontier = next;
    }
    frontier.contains(&b.raw())
}

/// Enumerates all **simple** paths (no repeated node) of exactly `len`
/// edges from `a` to `b`, by backtracking. `budget` bounds the number
/// of search steps; exceeding it returns
/// [`GdmError::BudgetExhausted`] — the honest outcome for a problem
/// whose output can be exponential.
pub fn fixed_length_paths(
    g: &dyn GraphView,
    a: NodeId,
    b: NodeId,
    len: usize,
    budget: usize,
) -> Result<Vec<Path>> {
    if !g.contains_node(a) || !g.contains_node(b) {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut steps = 0usize;
    let mut node_stack = vec![a];
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    search_fixed(
        g,
        b,
        len,
        budget,
        &mut steps,
        &mut node_stack,
        &mut edge_stack,
        &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn search_fixed(
    g: &dyn GraphView,
    target: NodeId,
    len: usize,
    budget: usize,
    steps: &mut usize,
    nodes: &mut Vec<NodeId>,
    edges: &mut Vec<EdgeId>,
    out: &mut Vec<Path>,
) -> Result<()> {
    *steps += 1;
    if *steps > budget {
        return Err(GdmError::BudgetExhausted(format!(
            "fixed-length path search exceeded {budget} steps"
        )));
    }
    let current = *nodes.last().expect("non-empty stack");
    if edges.len() == len {
        if current == target {
            out.push(Path {
                nodes: nodes.clone(),
                edges: edges.clone(),
            });
        }
        return Ok(());
    }
    // Collect successors first: visit_out_edges borrows g immutably and
    // recursion re-borrows, which is fine, but we must not hold the
    // closure across the recursive call.
    let mut next = Vec::new();
    g.visit_out_edges(current, &mut |e| next.push(e));
    for e in next {
        if nodes.contains(&e.to) {
            continue; // simple paths only
        }
        nodes.push(e.to);
        edges.push(e.id);
        search_fixed(g, target, len, budget, steps, nodes, edges, out)?;
        nodes.pop();
        edges.pop();
    }
    Ok(())
}

/// Unweighted shortest path from `a` to `b` (BFS), if any.
pub fn shortest_path(g: &dyn GraphView, a: NodeId, b: NodeId) -> Option<Path> {
    shortest_path_guarded(g, a, b, None).expect("ungoverned search cannot be interrupted")
}

/// [`shortest_path`] under an [`ExecutionGuard`]: the BFS charges one
/// node visit per dequeued node and one edge visit per traversed edge.
/// With an unlimited guard the result equals [`shortest_path`].
pub fn shortest_path_governed(
    g: &dyn GraphView,
    a: NodeId,
    b: NodeId,
    guard: &ExecutionGuard,
) -> Result<Option<Path>> {
    shortest_path_guarded(g, a, b, Some(guard))
}

pub(crate) fn shortest_path_guarded(
    g: &dyn GraphView,
    a: NodeId,
    b: NodeId,
    guard: Option<&ExecutionGuard>,
) -> Result<Option<Path>> {
    if !g.contains_node(a) || !g.contains_node(b) {
        return Ok(None);
    }
    if a == b {
        return Ok(Some(Path {
            nodes: vec![a],
            edges: vec![],
        }));
    }
    let mut parent: FxHashMap<u64, EdgeRef> = FxHashMap::default();
    let mut queue = VecDeque::from([a]);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.insert(a.raw());
    'outer: while let Some(n) = queue.pop_front() {
        guard.node()?;
        let mut hit = false;
        let mut tripped = Ok(());
        g.visit_out_edges(n, &mut |e| {
            if tripped.is_err() {
                return;
            }
            tripped = guard.edge();
            if tripped.is_err() {
                return;
            }
            if seen.insert(e.to.raw()) {
                parent.insert(e.to.raw(), e);
                queue.push_back(e.to);
            }
            if e.to == b {
                hit = true;
            }
        });
        tripped?;
        if hit {
            // First discovery of b is at minimal depth (BFS order).
            break 'outer;
        }
    }
    Ok(reconstruct(&parent, a, b))
}

/// Distance between nodes: length of the shortest path, if connected.
pub fn distance(g: &dyn GraphView, a: NodeId, b: NodeId) -> Option<usize> {
    shortest_path(g, a, b).map(|p| p.len())
}

/// Bidirectional BFS: expands frontiers from both endpoints (forward
/// from `a`, backward from `b`) and meets in the middle — the search
/// visits O(b^(d/2)) nodes instead of O(b^d). Returns a shortest
/// path, the same length as [`shortest_path`]'s answer.
///
/// Correctness note: a level is always expanded *completely* and the
/// meeting node with the smallest opposite-side depth is chosen —
/// stopping at the first meet can overshoot by the depth spread within
/// one level.
pub fn bidirectional_shortest_path(g: &dyn GraphView, a: NodeId, b: NodeId) -> Option<Path> {
    if !g.contains_node(a) || !g.contains_node(b) {
        return None;
    }
    if a == b {
        return Some(Path {
            nodes: vec![a],
            edges: vec![],
        });
    }
    let mut fwd_parent: FxHashMap<u64, EdgeRef> = FxHashMap::default();
    let mut bwd_parent: FxHashMap<u64, EdgeRef> = FxHashMap::default();
    let mut fwd_depth: FxHashMap<u64, usize> = FxHashMap::default();
    let mut bwd_depth: FxHashMap<u64, usize> = FxHashMap::default();
    fwd_depth.insert(a.raw(), 0);
    bwd_depth.insert(b.raw(), 0);
    let mut fwd_frontier = vec![a];
    let mut bwd_frontier = vec![b];
    let mut fwd_level = 0usize;
    let mut bwd_level = 0usize;

    let meet: NodeId = loop {
        if fwd_frontier.is_empty() || bwd_frontier.is_empty() {
            return None;
        }
        let forward = fwd_frontier.len() <= bwd_frontier.len();
        let mut next = Vec::new();
        // The best meet of this level: smallest opposite-side depth.
        let mut best: Option<(usize, NodeId)> = None;
        if forward {
            fwd_level += 1;
            for &n in &fwd_frontier {
                g.visit_out_edges(n, &mut |e| {
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        fwd_depth.entry(e.to.raw())
                    {
                        slot.insert(fwd_level);
                        fwd_parent.insert(e.to.raw(), e);
                        next.push(e.to);
                        if let Some(&db) = bwd_depth.get(&e.to.raw()) {
                            if best.is_none_or(|(d, _)| db < d) {
                                best = Some((db, e.to));
                            }
                        }
                    }
                });
            }
            fwd_frontier = next;
        } else {
            bwd_level += 1;
            for &n in &bwd_frontier {
                g.visit_in_edges(n, &mut |e| {
                    // e.from == n (nearer b), e.to == predecessor.
                    if let std::collections::hash_map::Entry::Vacant(slot) =
                        bwd_depth.entry(e.to.raw())
                    {
                        slot.insert(bwd_level);
                        bwd_parent.insert(e.to.raw(), e);
                        next.push(e.to);
                        if let Some(&df) = fwd_depth.get(&e.to.raw()) {
                            if best.is_none_or(|(d, _)| df < d) {
                                best = Some((df, e.to));
                            }
                        }
                    }
                });
            }
            bwd_frontier = next;
        }
        if let Some((_, m)) = best {
            break m;
        }
    };

    // Stitch: a … meet via forward parents, meet … b via backward
    // parents (each backward entry at node x is the edge oriented with
    // `from` = x's successor toward b).
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut cur = meet;
    while cur != a {
        let e = fwd_parent.get(&cur.raw())?;
        edges.push(e.id);
        nodes.push(cur);
        cur = e.from;
    }
    nodes.push(a);
    nodes.reverse();
    edges.reverse();
    cur = meet;
    while cur != b {
        let e = bwd_parent.get(&cur.raw())?;
        edges.push(e.id);
        cur = e.from;
        nodes.push(cur);
    }
    Some(Path { nodes, edges })
}

/// Weighted shortest path (Dijkstra) using [`WeightedView`] weights.
/// Negative weights are rejected.
pub fn dijkstra<G: WeightedView + ?Sized>(
    g: &G,
    a: NodeId,
    b: NodeId,
) -> Result<Option<(Path, f64)>> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    if !g.contains_node(a) || !g.contains_node(b) {
        return Ok(None);
    }

    struct Entry {
        cost: f64,
        node: NodeId,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.cost == other.cost
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse for a min-heap.
            other.cost.total_cmp(&self.cost)
        }
    }

    let mut dist: FxHashMap<u64, f64> = FxHashMap::default();
    let mut parent: FxHashMap<u64, EdgeRef> = FxHashMap::default();
    let mut heap = BinaryHeap::new();
    dist.insert(a.raw(), 0.0);
    heap.push(Entry { cost: 0.0, node: a });
    while let Some(Entry { cost, node }) = heap.pop() {
        if node == b {
            let path = reconstruct(&parent, a, b).expect("parent chain complete");
            return Ok(Some((path, cost)));
        }
        if dist.get(&node.raw()).is_some_and(|&d| cost > d) {
            continue; // stale entry
        }
        let mut edges = Vec::new();
        g.visit_out_edges(node, &mut |e| edges.push(e));
        for e in edges {
            let w = g.edge_weight(&e);
            if w < 0.0 {
                return Err(GdmError::InvalidArgument(format!(
                    "negative edge weight {w} on {}",
                    e.id
                )));
            }
            let next_cost = cost + w;
            if dist.get(&e.to.raw()).is_none_or(|&d| next_cost < d) {
                dist.insert(e.to.raw(), next_cost);
                parent.insert(e.to.raw(), e);
                heap.push(Entry {
                    cost: next_cost,
                    node: e.to,
                });
            }
        }
    }
    Ok(None)
}

/// All nodes reachable from `a` within the given direction, including
/// `a` itself (used by components and eccentricity computations).
pub fn reachable_set(g: &dyn GraphView, a: NodeId, direction: Direction) -> FxHashSet<u64> {
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    if !g.contains_node(a) {
        return seen;
    }
    seen.insert(a.raw());
    let mut queue = VecDeque::from([a]);
    while let Some(n) = queue.pop_front() {
        g.visit_edges_dir(n, direction, &mut |e| {
            if seen.insert(e.to.raw()) {
                queue.push_back(e.to);
            }
        });
    }
    seen
}

fn reconstruct(parent: &FxHashMap<u64, EdgeRef>, a: NodeId, b: NodeId) -> Option<Path> {
    let mut nodes = vec![b];
    let mut edges = Vec::new();
    let mut cur = b;
    while cur != a {
        let e = parent.get(&cur.raw())?;
        edges.push(e.id);
        cur = e.from;
        nodes.push(cur);
    }
    nodes.reverse();
    edges.reverse();
    Some(Path { nodes, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;
    use gdm_graphs::{PropertyGraph, SimpleGraph};

    fn diamond() -> (SimpleGraph, Vec<NodeId>) {
        let mut g = SimpleGraph::directed();
        let n: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        g.add_edge(n[0], n[1]).unwrap();
        g.add_edge(n[0], n[2]).unwrap();
        g.add_edge(n[1], n[3]).unwrap();
        g.add_edge(n[2], n[3]).unwrap();
        g.add_edge(n[3], n[4]).unwrap();
        (g, n)
    }

    #[test]
    fn reachability() {
        let (g, n) = diamond();
        assert!(is_reachable(&g, n[0], n[4]));
        assert!(!is_reachable(&g, n[4], n[0]));
        assert!(is_reachable(&g, n[2], n[2]), "trivially reachable");
        assert!(!is_reachable(&g, n[0], NodeId(99)));
    }

    #[test]
    fn fixed_length_walk_existence() {
        let (g, n) = diamond();
        assert!(fixed_length_path_exists(&g, n[0], n[3], 2));
        assert!(!fixed_length_path_exists(&g, n[0], n[3], 1));
        assert!(fixed_length_path_exists(&g, n[0], n[4], 3));
        assert!(!fixed_length_path_exists(&g, n[0], n[4], 2));
    }

    #[test]
    fn walks_may_repeat_nodes() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        // a→b→a→b is a length-3 walk.
        assert!(fixed_length_path_exists(&g, a, b, 3));
        // But not a simple path.
        assert!(fixed_length_paths(&g, a, b, 3, 1000).unwrap().is_empty());
    }

    #[test]
    fn fixed_length_simple_path_enumeration() {
        let (g, n) = diamond();
        let paths = fixed_length_paths(&g, n[0], n[3], 2, 1000).unwrap();
        assert_eq!(paths.len(), 2, "both diamond arms");
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert_eq!(p.source(), n[0]);
            assert_eq!(p.target(), n[3]);
        }
    }

    #[test]
    fn budget_exhaustion_is_loud() {
        let (g, n) = diamond();
        let err = fixed_length_paths(&g, n[0], n[4], 3, 2).unwrap_err();
        assert!(matches!(err, GdmError::BudgetExhausted(_)));
    }

    #[test]
    fn bfs_shortest_path() {
        let (g, n) = diamond();
        let p = shortest_path(&g, n[0], n[4]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.nodes.first(), Some(&n[0]));
        assert_eq!(p.nodes.last(), Some(&n[4]));
        assert_eq!(distance(&g, n[0], n[4]), Some(3));
        assert_eq!(distance(&g, n[4], n[0]), None);
        assert_eq!(distance(&g, n[1], n[1]), Some(0));
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("v", props! {});
        let b = g.add_node("v", props! {});
        let c = g.add_node("v", props! {});
        g.add_edge(a, b, "e", props! { "weight" => 10.0 }).unwrap();
        g.add_edge(a, c, "e", props! { "weight" => 1.0 }).unwrap();
        g.add_edge(c, b, "e", props! { "weight" => 2.0 }).unwrap();
        let (path, cost) = dijkstra(&g, a, b).unwrap().unwrap();
        assert_eq!(cost, 3.0);
        assert_eq!(path.nodes, vec![a, c, b]);
        // BFS ignores weights and goes direct.
        assert_eq!(shortest_path(&g, a, b).unwrap().len(), 1);
    }

    #[test]
    fn dijkstra_rejects_negative_weights() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("v", props! {});
        let b = g.add_node("v", props! {});
        g.add_edge(a, b, "e", props! { "weight" => -1.0 }).unwrap();
        assert!(dijkstra(&g, a, b).is_err());
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("v", props! {});
        let b = g.add_node("v", props! {});
        assert!(dijkstra(&g, a, b).unwrap().is_none());
    }

    #[test]
    fn bidirectional_agrees_with_bfs_on_the_diamond() {
        let (g, n) = diamond();
        for (s, t) in [(0usize, 4usize), (0, 3), (1, 4), (4, 0), (2, 2)] {
            let uni = shortest_path(&g, n[s], n[t]).map(|p| p.len());
            let bi = bidirectional_shortest_path(&g, n[s], n[t]).map(|p| p.len());
            assert_eq!(uni, bi, "({s}, {t})");
        }
        // The stitched path is a real walk.
        let p = bidirectional_shortest_path(&g, n[0], n[4]).unwrap();
        assert_eq!(p.source(), n[0]);
        assert_eq!(p.target(), n[4]);
        assert_eq!(p.nodes.len(), p.edges.len() + 1);
        for w in p.nodes.windows(2) {
            let mut ok = false;
            g.visit_out_edges(w[0], &mut |e| ok |= e.to == w[1]);
            assert!(ok, "gap between {} and {}", w[0], w[1]);
        }
    }

    #[test]
    fn bidirectional_on_long_chain() {
        let mut g = SimpleGraph::directed();
        let n: Vec<NodeId> = (0..200).map(|_| g.add_node()).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let p = bidirectional_shortest_path(&g, n[0], n[199]).unwrap();
        assert_eq!(p.len(), 199);
        assert!(bidirectional_shortest_path(&g, n[199], n[0]).is_none());
    }

    #[test]
    fn reachable_set_directions() {
        let (g, n) = diamond();
        assert_eq!(reachable_set(&g, n[0], Direction::Outgoing).len(), 5);
        assert_eq!(reachable_set(&g, n[4], Direction::Outgoing).len(), 1);
        assert_eq!(reachable_set(&g, n[4], Direction::Incoming).len(), 5);
    }
}
