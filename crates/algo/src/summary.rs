//! Summarization queries (Section IV.4).
//!
//! "This type of queries are not related to consult the graph
//! structure. Instead they are based on special functions that allow
//! to summarize or operate on the query results, normally returning a
//! single value." Two families:
//!
//! * **Aggregation functions** over value sequences: count, sum,
//!   average, minimum, maximum ([`aggregate`]).
//! * **Structural functions** over the graph: order, size, node
//!   degree, min/max/average degree, path length, distance between
//!   nodes, eccentricity, diameter ([`graph_order`] and friends).

use crate::paths::{distance, reachable_set};
use gdm_core::{Direction, GdmError, GraphView, NodeId, Result, Value};
use gdm_govern::ExecutionGuard;

/// The aggregate functions of the paper's summarization group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of values (nulls excluded, as in SQL).
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Minimum under [`Value::total_cmp`].
    Min,
    /// Maximum under [`Value::total_cmp`].
    Max,
}

/// Applies `agg` to `values`. Non-numeric inputs to `Sum`/`Avg` are a
/// type error; empty input yields `Null` (except `Count`, which is 0).
pub fn aggregate(agg: Aggregate, values: &[Value]) -> Result<Value> {
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    match agg {
        Aggregate::Count => Ok(Value::Int(non_null.len() as i64)),
        Aggregate::Sum | Aggregate::Avg => {
            if non_null.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0;
            let mut all_int = true;
            for v in &non_null {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        sum += f;
                    }
                    other => {
                        return Err(GdmError::Type {
                            expected: "number",
                            got: other.type_name().to_owned(),
                        })
                    }
                }
            }
            if agg == Aggregate::Avg {
                Ok(Value::Float(sum / non_null.len() as f64))
            } else if all_int {
                Ok(Value::Int(sum as i64))
            } else {
                Ok(Value::Float(sum))
            }
        }
        Aggregate::Min => Ok(non_null
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
        Aggregate::Max => Ok(non_null
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
    }
}

/// Parses an aggregate function name (case-insensitive).
pub fn parse_aggregate(name: &str) -> Option<Aggregate> {
    match name.to_ascii_lowercase().as_str() {
        "count" => Some(Aggregate::Count),
        "sum" => Some(Aggregate::Sum),
        "avg" | "average" => Some(Aggregate::Avg),
        "min" | "minimum" => Some(Aggregate::Min),
        "max" | "maximum" => Some(Aggregate::Max),
        _ => None,
    }
}

/// The order of the graph: its number of vertices.
pub fn graph_order(g: &dyn GraphView) -> usize {
    g.node_count()
}

/// The size of the graph: its number of edges.
pub fn graph_size(g: &dyn GraphView) -> usize {
    g.edge_count()
}

/// Degree statistics `(min, max, average)` over all nodes; `None` for
/// an empty graph.
pub fn degree_stats(g: &dyn GraphView) -> Option<(usize, usize, f64)> {
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut count = 0usize;
    g.visit_nodes(&mut |n| {
        let d = g.degree(n);
        min = min.min(d);
        max = max.max(d);
        sum += d;
        count += 1;
    });
    (count > 0).then(|| (min, max, sum as f64 / count as f64))
}

/// Eccentricity of `n`: greatest distance from `n` to any node
/// reachable from it (BFS, following `direction`).
pub fn eccentricity(g: &dyn GraphView, n: NodeId, direction: Direction) -> Option<usize> {
    if !g.contains_node(n) {
        return None;
    }
    let visits = crate::traverse::Traversal::new(n)
        .direction(direction)
        .visits(g);
    visits.iter().map(|v| v.depth).max()
}

/// Diameter: the greatest distance between any two connected nodes
/// ("the greatest distance between any two nodes"). Exact all-pairs
/// BFS — O(V·E); fine at the scales the benches use. Returns `None`
/// for an empty graph. Nodes that cannot reach each other do not
/// contribute (the usual finite-diameter convention).
pub fn diameter(g: &dyn GraphView, direction: Direction) -> Option<usize> {
    let mut best: Option<usize> = None;
    g.visit_nodes(&mut |n| {
        if let Some(e) = eccentricity(g, n, direction) {
            best = Some(best.map_or(e, |b| b.max(e)));
        }
    });
    best
}

/// [`diameter`] under an [`ExecutionGuard`]: all-pairs BFS is O(V·E),
/// so the guard is consulted at per-source granularity — one node
/// charge plus a deadline/cancellation check before each source's
/// eccentricity BFS. Each completed source is counted as one emitted
/// row, so the `partial` field of an interrupt reports how many
/// sources contributed to the (partial) maximum. With an unlimited
/// guard the result equals [`diameter`].
pub fn diameter_governed(
    g: &dyn GraphView,
    direction: Direction,
    guard: &ExecutionGuard,
) -> Result<Option<usize>> {
    let mut best: Option<usize> = None;
    for n in g.node_ids() {
        guard.check_now()?;
        guard.node()?;
        if let Some(e) = eccentricity(g, n, direction) {
            best = Some(best.map_or(e, |b| b.max(e)));
        }
        guard.row()?;
    }
    Ok(best)
}

/// Distance between two nodes, re-exported beside the other
/// summarization functions for discoverability (the paper lists it in
/// this group).
pub fn distance_between(g: &dyn GraphView, a: NodeId, b: NodeId) -> Option<usize> {
    distance(g, a, b)
}

/// Number of nodes reachable from `n` (including itself) — a common
/// summarization building block.
pub fn reachable_count(g: &dyn GraphView, n: NodeId, direction: Direction) -> usize {
    reachable_set(g, n, direction).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_graphs::SimpleGraph;

    #[test]
    fn aggregates_over_ints() {
        let vals: Vec<Value> = [3i64, 1, 4, 1, 5].into_iter().map(Value::from).collect();
        assert_eq!(aggregate(Aggregate::Count, &vals).unwrap(), Value::from(5));
        assert_eq!(aggregate(Aggregate::Sum, &vals).unwrap(), Value::from(14));
        assert_eq!(aggregate(Aggregate::Avg, &vals).unwrap(), Value::from(2.8));
        assert_eq!(aggregate(Aggregate::Min, &vals).unwrap(), Value::from(1));
        assert_eq!(aggregate(Aggregate::Max, &vals).unwrap(), Value::from(5));
    }

    #[test]
    fn aggregates_skip_nulls() {
        let vals = vec![Value::from(2), Value::Null, Value::from(4)];
        assert_eq!(aggregate(Aggregate::Count, &vals).unwrap(), Value::from(2));
        assert_eq!(aggregate(Aggregate::Avg, &vals).unwrap(), Value::from(3.0));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(aggregate(Aggregate::Count, &[]).unwrap(), Value::from(0));
        assert_eq!(aggregate(Aggregate::Sum, &[]).unwrap(), Value::Null);
        assert_eq!(aggregate(Aggregate::Min, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn sum_of_strings_is_a_type_error() {
        let vals = vec![Value::from("a")];
        assert!(aggregate(Aggregate::Sum, &vals).is_err());
        // But min/max over strings is fine.
        assert_eq!(aggregate(Aggregate::Max, &vals).unwrap(), Value::from("a"));
    }

    #[test]
    fn mixed_numeric_sum_is_float() {
        let vals = vec![Value::from(1), Value::from(0.5)];
        assert_eq!(aggregate(Aggregate::Sum, &vals).unwrap(), Value::from(1.5));
    }

    #[test]
    fn aggregate_names() {
        assert_eq!(parse_aggregate("COUNT"), Some(Aggregate::Count));
        assert_eq!(parse_aggregate("avg"), Some(Aggregate::Avg));
        assert_eq!(parse_aggregate("median"), None);
    }

    fn path_graph(n: usize) -> (SimpleGraph, Vec<NodeId>) {
        let mut g = SimpleGraph::directed();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        (g, nodes)
    }

    #[test]
    fn order_size_degree() {
        let (g, _) = path_graph(5);
        assert_eq!(graph_order(&g), 5);
        assert_eq!(graph_size(&g), 4);
        let (min, max, avg) = degree_stats(&g).unwrap();
        assert_eq!(min, 1); // endpoints
        assert_eq!(max, 2); // middle nodes
        assert!((avg - 1.6).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let g = SimpleGraph::directed();
        assert_eq!(degree_stats(&g), None);
        assert_eq!(diameter(&g, Direction::Both), None);
    }

    #[test]
    fn eccentricity_and_diameter() {
        let (g, n) = path_graph(5);
        assert_eq!(eccentricity(&g, n[0], Direction::Outgoing), Some(4));
        assert_eq!(eccentricity(&g, n[4], Direction::Outgoing), Some(0));
        assert_eq!(diameter(&g, Direction::Outgoing), Some(4));
        // Treating edges as bidirectional the diameter is the same
        // here but eccentricity of the middle node drops.
        assert_eq!(eccentricity(&g, n[2], Direction::Both), Some(2));
        assert_eq!(diameter(&g, Direction::Both), Some(4));
    }

    #[test]
    fn distance_between_nodes() {
        let (g, n) = path_graph(4);
        assert_eq!(distance_between(&g, n[0], n[3]), Some(3));
        assert_eq!(distance_between(&g, n[3], n[0]), None);
    }

    #[test]
    fn reachability_counts() {
        let (g, n) = path_graph(4);
        assert_eq!(reachable_count(&g, n[0], Direction::Outgoing), 4);
        assert_eq!(reachable_count(&g, n[2], Direction::Outgoing), 2);
    }
}
