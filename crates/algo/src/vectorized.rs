//! Vectorized batch-at-a-time pattern matching over the CSR snapshot.
//!
//! The planned matcher ([`crate::planned`]) walks [`FrozenGraph`] one
//! binding at a time through the generic [`gdm_core::AttributedView`]
//! trait: every candidate costs a virtual call, a dense-index hash
//! lookup, and a `NodeId`-keyed hash-set probe. This module is the
//! columnar counterpart in the MonetDB/GraphBLAS style: operators
//! consume and produce **batches of dense `u32` ids** ([`BATCH`] rows
//! at a time) directly against the snapshot's CSR arrays, so the inner
//! loops are array indexing over integer columns with no dynamic
//! dispatch at all (DESIGN.md §13).
//!
//! The operator set mirrors a classic batch pipeline:
//!
//! * **label scan** — a variable constrained only by label seeds
//!   straight from the `nodes_with_label` slice;
//! * **index/range seed** — planner-supplied domains (equality and
//!   range lookups, node or edge) arrive as dense selection vectors;
//! * **batched expand** — the generating pattern edge is expanded by
//!   walking `out_targets`/`in_targets` runs, deduplicating per source
//!   row with a reusable stamp array (no per-row allocation);
//! * **residual filter** — label symbols (pre-resolved once per query
//!   against the snapshot's interner, so the batch loop compares
//!   `u32`s), property equality, injectivity, and non-generator edge
//!   checks run over the batch columns in place;
//! * **materialize** — surviving rows append to a flat buffer that
//!   exits as a [`MatchTable`], the planned API's result type.
//!
//! Search order is depth-first at *batch* granularity: a child batch
//! is flushed into the next operator as soon as it fills, so memory
//! stays bounded by `depth × BATCH` regardless of result size.
//!
//! **Equivalence.** The pipeline binds variables in exactly
//! [`planned_order`] and applies exactly the planned matcher's
//! constraint checks, so its result equals
//! [`crate::match_pattern_planned`]'s as a set (the `planned_equiv`
//! property suite proves vectorized ≡ planned ≡ unplanned). Row order
//! may differ: batching reorders siblings, never membership.
//!
//! **Governance.** The guard is ticked once per batch, not once per
//! visit: [`gdm_govern::ExecutionGuard::nodes`] charges a whole
//! candidate batch in one atomic add and runs the deadline/cancel
//! check unconditionally — at ≤ [`BATCH`] visits per draw that is both
//! cheaper and *more responsive* than the per-visit amortized pulse.
//! A trip surfaces as the same structured
//! [`gdm_core::GdmError::Interrupted`] (reason + rows emitted so far)
//! the row-at-a-time matchers return.

use crate::frozen::FrozenGraph;
use crate::pattern::{value_in_range, Pattern};
use crate::planned::{domain_estimates, planned_order, MatchTable};
use gdm_core::{Direction, GraphView, NodeId, Result, Symbol, Value};
use gdm_govern::{ExecutionGuard, GuardExt};

/// Rows per batch. Large enough to amortize per-batch costs (guard
/// draw, recursion) to noise; small enough that a working set of
/// `pattern depth × BATCH × 4` bytes stays cache-resident.
pub const BATCH: usize = 1024;

/// A label constraint pre-resolved against the snapshot's interner.
#[derive(Clone, Copy, PartialEq)]
enum Want {
    /// No constraint.
    Any,
    /// Constraint names a label the snapshot never interned: nothing
    /// can match.
    Impossible,
    /// Must carry exactly this symbol (compare `u32`s, never text).
    Sym(Symbol),
}

impl Want {
    fn resolve(fz: &FrozenGraph, want: Option<&str>) -> Want {
        match want {
            None => Want::Any,
            Some(text) => fz.label_symbol(text).map_or(Want::Impossible, Want::Sym),
        }
    }

    #[inline]
    fn accepts(self, sym: Option<Symbol>) -> bool {
        match self {
            Want::Any => true,
            Want::Impossible => false,
            Want::Sym(want) => sym == Some(want),
        }
    }
}

/// A batch of partial matches: one `u32` dense-id column per *bound*
/// pattern variable (unbound columns stay empty), `len` rows.
struct Frame {
    cols: Vec<Vec<u32>>,
    len: usize,
}

impl Frame {
    fn root(vars: usize) -> Frame {
        // One virtual row binding nothing: the depth-0 seed operator
        // crosses it with the first variable's candidate list.
        Frame {
            cols: vec![Vec::new(); vars],
            len: 1,
        }
    }
}

/// Finds all subgraph matches of `pattern` in the snapshot, seeding
/// each variable from its domain (where given). Equal to
/// [`crate::match_pattern_planned`] as a binding set; row order may
/// differ (batch siblings are emitted in seed order).
pub fn match_pattern_vectorized(
    fz: &FrozenGraph,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
) -> MatchTable {
    match_pattern_vectorized_guarded(fz, pattern, domains, None)
        .expect("ungoverned search cannot be interrupted")
}

/// [`match_pattern_vectorized`] under an [`ExecutionGuard`]: candidate
/// batches charge [`ExecutionGuard::nodes`], emitted row batches
/// charge [`ExecutionGuard::rows`], and a trip returns the structured
/// `Interrupted` error with the partial row count.
pub fn match_pattern_vectorized_governed(
    fz: &FrozenGraph,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    guard: &ExecutionGuard,
) -> Result<MatchTable> {
    match_pattern_vectorized_guarded(fz, pattern, domains, Some(guard))
}

/// Vectorized matching with the snapshot's own indexes seeding the
/// domains — the batch counterpart of [`crate::match_pattern_auto`],
/// including its degradation ladder (inconsistent domains fall back to
/// the unplanned reference matcher).
pub fn match_pattern_vectorized_auto(fz: &FrozenGraph, pattern: &Pattern) -> MatchTable {
    match_pattern_vectorized_auto_guarded(fz, pattern, None)
        .expect("ungoverned search cannot be interrupted")
}

/// [`match_pattern_vectorized_auto`] under an [`ExecutionGuard`].
pub fn match_pattern_vectorized_auto_governed(
    fz: &FrozenGraph,
    pattern: &Pattern,
    guard: &ExecutionGuard,
) -> Result<MatchTable> {
    match_pattern_vectorized_auto_guarded(fz, pattern, Some(guard))
}

fn match_pattern_vectorized_auto_guarded(
    fz: &FrozenGraph,
    pattern: &Pattern,
    guard: Option<&ExecutionGuard>,
) -> Result<MatchTable> {
    let domains = crate::planned::auto_domains(fz, pattern);
    if !crate::planned::domains_consistent(fz, &domains) {
        let bindings = crate::pattern::match_pattern_guarded(fz, pattern, guard)?;
        return Ok(MatchTable::from_bindings(pattern, &bindings));
    }
    match_pattern_vectorized_guarded(fz, pattern, &domains, guard)
}

pub(crate) fn match_pattern_vectorized_guarded(
    fz: &FrozenGraph,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    guard: Option<&ExecutionGuard>,
) -> Result<MatchTable> {
    let vars = var_names(pattern);
    if pattern.nodes.is_empty() {
        return Ok(MatchTable::from_parts(vars, Vec::new()));
    }
    let plan = BatchPlan::compile(fz, pattern, domains);
    let mut scratch = BatchScratch::new(fz);
    let data = plan.run(None, &mut scratch, guard)?;
    Ok(MatchTable::from_parts(vars, data))
}

/// Column names of the result table, in pattern variable order.
pub(crate) fn var_names(pattern: &Pattern) -> Vec<String> {
    pattern.nodes.iter().map(|pn| pn.var.clone()).collect()
}

/// Everything about a vectorized match that depends only on the
/// (snapshot, pattern, domains) triple: the elimination order, the
/// per-depth generator/residual schedule, pre-resolved label symbols,
/// and the domain selection vectors/bitsets. Compiled once and then
/// shared read-only — by the sequential [`BatchPlan::run`] over the
/// whole root domain, or by every worker of the morsel-driven parallel
/// executor ([`crate::par_vectorized`]) over root sub-ranges, which is
/// what guarantees all morsels see the *same* plan.
pub(crate) struct BatchPlan<'a> {
    fz: &'a FrozenGraph,
    pattern: &'a Pattern,
    order: Vec<usize>,
    generators: Vec<Option<usize>>,
    residual_edges: Vec<Vec<usize>>,
    node_want: Vec<Want>,
    edge_want: Vec<Want>,
    dom_list: Vec<Option<Vec<u32>>>,
    dom_bits: Vec<Option<Vec<u64>>>,
}

/// Reusable per-thread search scratch: the dense-indexed dedup stamp
/// array. Kept outside [`BatchPlan`] so one allocation serves every
/// morsel a worker runs, instead of `O(|V|)` zeroing per morsel.
pub(crate) struct BatchScratch {
    stamp: Vec<u32>,
    stamp_gen: u32,
}

impl BatchScratch {
    pub(crate) fn new(fz: &FrozenGraph) -> BatchScratch {
        BatchScratch {
            stamp: vec![0u32; fz.len()],
            stamp_gen: 0,
        }
    }
}

impl<'a> BatchPlan<'a> {
    /// Compiles the static plan. Callers must have rejected empty
    /// patterns already ([`planned_order`] needs at least one node).
    pub(crate) fn compile(
        fz: &'a FrozenGraph,
        pattern: &'a Pattern,
        domains: &[Option<Vec<NodeId>>],
    ) -> BatchPlan<'a> {
        let estimates = domain_estimates(fz, pattern, domains);
        let order = planned_order(pattern, &estimates);
        let n_vars = pattern.nodes.len();

        // Selection vectors: planner domains mapped to dense positions
        // (ids the snapshot never held simply drop out — the planned
        // matcher rejects them via `contains_node` the same way), plus
        // a bitset per restricted variable for O(1) membership during
        // expansion.
        let dom_list: Vec<Option<Vec<u32>>> = (0..n_vars)
            .map(|i| {
                domains.get(i).and_then(Option::as_ref).map(|d| {
                    d.iter()
                        .filter_map(|n| fz.dense_of(*n))
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        let words = fz.len().div_ceil(64);
        let dom_bits: Vec<Option<Vec<u64>>> = dom_list
            .iter()
            .map(|d| {
                d.as_ref().map(|list| {
                    let mut bits = vec![0u64; words];
                    for &dense in list {
                        bits[dense as usize / 64] |= 1 << (dense % 64);
                    }
                    bits
                })
            })
            .collect();

        // Labels resolved once per query; the batch loops compare
        // symbols.
        let node_want: Vec<Want> = pattern
            .nodes
            .iter()
            .map(|pn| Want::resolve(fz, pn.label.as_deref()))
            .collect();
        let edge_want: Vec<Want> = pattern
            .edges
            .iter()
            .map(|pe| Want::resolve(fz, pe.label.as_deref()))
            .collect();

        // Static per-depth plan: with a fixed elimination order, the
        // bound set at each depth is `order[..depth]`, so the
        // generating edge and the residual edge checks are knowable up
        // front instead of per candidate.
        let mut bound = vec![false; n_vars];
        let mut generators: Vec<Option<usize>> = Vec::with_capacity(order.len());
        let mut residual_edges: Vec<Vec<usize>> = Vec::with_capacity(order.len());
        for &pv in &order {
            let generator = pattern.edges.iter().position(|e| {
                (e.to == pv && e.from != pv && bound[e.from])
                    || (e.from == pv && e.to != pv && bound[e.to])
            });
            bound[pv] = true;
            let checks = pattern
                .edges
                .iter()
                .enumerate()
                .filter(|&(ei, e)| {
                    Some(ei) != generator
                        && (e.from == pv || e.to == pv)
                        && bound[e.from]
                        && bound[e.to]
                })
                .map(|(ei, _)| ei)
                .collect();
            generators.push(generator);
            residual_edges.push(checks);
        }

        BatchPlan {
            fz,
            pattern,
            order,
            generators,
            residual_edges,
            node_want,
            edge_want,
            dom_list,
            dom_bits,
        }
    }

    /// The full root seed list (dense positions), in the exact order
    /// the sequential executor scans it. The morsel driver splits this
    /// into contiguous ranges; because emission order is a function of
    /// seed order alone (batch boundaries split but never reorder the
    /// candidate stream, and recursion drains a prefix before its
    /// suffix), concatenating per-range results in range order
    /// reproduces the sequential output byte for byte.
    pub(crate) fn root_seed_list(&self) -> Vec<u32> {
        let pv = self.order[0];
        if self.node_want[pv] == Want::Impossible {
            return Vec::new();
        }
        match &self.dom_list[pv] {
            Some(list) => list.clone(),
            None => self.all_dense(pv),
        }
    }

    /// Dense positions a label-only scan of `pv` must consider: the
    /// label index slice when the variable is labelled, else all
    /// nodes. (Only reached when the planner supplied no domain.)
    fn all_dense(&self, pv: usize) -> Vec<u32> {
        match self.node_want[pv] {
            Want::Sym(sym) => self.fz.nodes_with_label(sym).to_vec(),
            _ => (0..self.fz.len() as u32).collect(),
        }
    }

    /// Runs the full operator chain — seed, batched expand, residual
    /// filter, materialize — and returns the flat result data
    /// (`n_vars` node ids per row). `root_seeds` restricts the root
    /// seed operator to a sub-range (the morsel driver's hook); `None`
    /// scans the whole root domain. The guard is generic so the same
    /// pipeline serves the sequential path (`Option<&ExecutionGuard>`)
    /// and parallel workers (`&WorkerGuard`) without dynamic dispatch.
    pub(crate) fn run<G: GuardExt>(
        &self,
        root_seeds: Option<&[u32]>,
        scratch: &mut BatchScratch,
        guard: G,
    ) -> Result<Vec<NodeId>> {
        let mut search = VecSearch {
            plan: self,
            root_seeds,
            scratch,
            data: Vec::new(),
            guard,
        };
        search.step(0, &Frame::root(self.pattern.nodes.len()))?;
        Ok(search.data)
    }
}

struct VecSearch<'a, G: GuardExt> {
    plan: &'a BatchPlan<'a>,
    /// Root seed sub-range override (morsel execution); `None` scans
    /// the plan's whole root domain.
    root_seeds: Option<&'a [u32]>,
    /// Reusable per-row dedup marks for batched expansion: a node is a
    /// duplicate within one source row's expansion iff its stamp
    /// equals the current generation.
    scratch: &'a mut BatchScratch,
    /// Flat result buffer, `n_vars` node ids per row in pattern
    /// variable order.
    data: Vec<NodeId>,
    guard: G,
}

impl<G: GuardExt> VecSearch<'_, G> {
    /// Runs the operator for depth `depth` over one input batch.
    fn step(&mut self, depth: usize, frame: &Frame) -> Result<()> {
        if depth == self.plan.order.len() {
            return self.emit(frame);
        }
        let pv = self.plan.order[depth];
        if self.plan.node_want[pv] == Want::Impossible {
            return Ok(());
        }

        // Pending child batch: parent row index + candidate value.
        let mut sel: Vec<u32> = Vec::with_capacity(BATCH);
        let mut vals: Vec<u32> = Vec::with_capacity(BATCH);

        match self.plan.generators[depth] {
            Some(ei) => {
                if self.plan.edge_want[ei] == Want::Impossible {
                    return Ok(());
                }
                for row in 0..frame.len {
                    self.expand_row(depth, pv, ei, frame, row, &mut sel, &mut vals)?;
                }
            }
            None => {
                // Seed operator: the morsel's root sub-range at depth
                // 0 when one was supplied, else the domain selection
                // vector when the planner supplied one, else the
                // label-scan slice, else every dense position.
                let owned: Vec<u32>;
                let scan: &[u32] = match (depth, self.root_seeds) {
                    (0, Some(seeds)) => seeds,
                    _ => match &self.plan.dom_list[pv] {
                        Some(list) => list,
                        None => {
                            owned = self.plan.all_dense(pv);
                            &owned
                        }
                    },
                };
                for row in 0..frame.len {
                    for chunk in scan.chunks(BATCH) {
                        // The seed list is independent of the row, so
                        // whole chunks flush without the fill loop.
                        sel.clear();
                        vals.clear();
                        sel.resize(chunk.len(), row as u32);
                        vals.extend_from_slice(chunk);
                        self.flush(depth, pv, frame, &mut sel, &mut vals)?;
                    }
                }
                return Ok(());
            }
        }
        if !vals.is_empty() {
            self.flush(depth, pv, frame, &mut sel, &mut vals)?;
        }
        Ok(())
    }

    /// Batched expand: walks the CSR run of `row`'s bound endpoint of
    /// generating edge `ei`, pushing label/range-qualified,
    /// deduplicated, in-domain targets into the pending batch and
    /// flushing whenever it fills.
    #[allow(clippy::too_many_arguments)]
    fn expand_row(
        &mut self,
        depth: usize,
        pv: usize,
        ei: usize,
        frame: &Frame,
        row: usize,
        sel: &mut Vec<u32>,
        vals: &mut Vec<u32>,
    ) -> Result<()> {
        let e = &self.plan.pattern.edges[ei];
        let (bound_var, dir) = if e.to == pv {
            (e.from, e.direction)
        } else {
            let dir = match e.direction {
                Direction::Outgoing => Direction::Incoming,
                other => other,
            };
            (e.to, dir)
        };
        let bound = frame.cols[bound_var][row];

        // New dedup generation for this source row.
        self.scratch.stamp_gen = self.scratch.stamp_gen.wrapping_add(1);
        if self.scratch.stamp_gen == 0 {
            self.scratch.stamp.fill(0);
            self.scratch.stamp_gen = 1;
        }

        let (fwd_first, rev_too) = match dir {
            Direction::Outgoing => (true, false),
            Direction::Incoming => (false, true),
            Direction::Both => (true, self.plan.fz.is_directed()),
        };
        if fwd_first {
            self.expand_run(depth, pv, ei, frame, row, bound, false, sel, vals)?;
        }
        if rev_too {
            self.expand_run(depth, pv, ei, frame, row, bound, true, sel, vals)?;
        }
        Ok(())
    }

    /// One CSR run (forward or reverse) of the batched expand.
    #[allow(clippy::too_many_arguments)]
    fn expand_run(
        &mut self,
        depth: usize,
        pv: usize,
        ei: usize,
        frame: &Frame,
        row: usize,
        bound: u32,
        reverse: bool,
        sel: &mut Vec<u32>,
        vals: &mut Vec<u32>,
    ) -> Result<()> {
        let e = &self.plan.pattern.edges[ei];
        let want = self.plan.edge_want[ei];
        let csr = if reverse {
            &self.plan.fz.rev
        } else {
            &self.plan.fz.fwd
        };
        let bits = self.plan.dom_bits[pv].as_deref();
        let run = csr.run(bound);
        for pos in 0..run.targets.len() {
            if !want.accepts(run.labels[pos]) {
                continue;
            }
            if !e.ranges.is_empty() && !self.edge_props_in_ranges(run.edge_ids[pos].raw(), ei) {
                continue;
            }
            let target = run.targets[pos];
            if self.scratch.stamp[target as usize] == self.scratch.stamp_gen {
                continue; // parallel-edge duplicate within this row
            }
            self.scratch.stamp[target as usize] = self.scratch.stamp_gen;
            if let Some(bits) = bits {
                if bits[target as usize / 64] & (1 << (target % 64)) == 0 {
                    continue; // outside the variable's domain
                }
            }
            sel.push(row as u32);
            vals.push(target);
            if vals.len() == BATCH {
                self.flush(depth, pv, frame, sel, vals)?;
            }
        }
        Ok(())
    }

    /// Residual filter + recurse: charges the guard for the candidate
    /// batch, filters it in place against the node constraints,
    /// injectivity, and the depth's residual edge checks, gathers the
    /// survivors into a child frame, and runs the next operator on it.
    /// Clears `sel`/`vals` for the caller to refill.
    fn flush(
        &mut self,
        depth: usize,
        pv: usize,
        frame: &Frame,
        sel: &mut Vec<u32>,
        vals: &mut Vec<u32>,
    ) -> Result<()> {
        self.guard.nodes(vals.len() as u64)?;

        let pn = &self.plan.pattern.nodes[pv];
        let want = self.plan.node_want[pv];
        let bound_vars = &self.plan.order[..depth];
        let mut keep = 0usize;
        'cand: for i in 0..vals.len() {
            let cand = vals[i];
            let row = sel[i] as usize;
            // Label: one symbol compare against the label column.
            if !want.accepts(self.plan.fz.node_label_dense(cand)) {
                continue;
            }
            // Property equality over the snapshot's property columns.
            if !pn.props.is_empty() {
                let props = self.plan.fz.node_props_dense(cand);
                for (key, want_v) in &pn.props {
                    let ok = props
                        .iter()
                        .find(|(k, _)| k == key)
                        .is_some_and(|(_, got)| got.loose_eq(want_v));
                    if !ok {
                        continue 'cand;
                    }
                }
            }
            // Injectivity against the row's other columns.
            for &v in bound_vars {
                if frame.cols[v][row] == cand {
                    continue 'cand;
                }
            }
            // Residual (non-generator) edge checks.
            for &rei in &self.plan.residual_edges[depth] {
                let e = &self.plan.pattern.edges[rei];
                let from = if e.from == pv {
                    cand
                } else {
                    frame.cols[e.from][row]
                };
                let to = if e.to == pv {
                    cand
                } else {
                    frame.cols[e.to][row]
                };
                if !self.has_edge_dense(rei, from, to) {
                    continue 'cand;
                }
            }
            sel[keep] = sel[i];
            vals[keep] = cand;
            keep += 1;
        }
        sel.truncate(keep);
        vals.truncate(keep);

        if keep > 0 {
            // Gather the child batch: parent columns through the
            // selection vector, plus the new column.
            let mut child = Frame {
                cols: vec![Vec::new(); frame.cols.len()],
                len: keep,
            };
            for &v in bound_vars {
                let src = &frame.cols[v];
                child.cols[v] = sel.iter().map(|&r| src[r as usize]).collect();
            }
            child.cols[pv] = std::mem::take(vals);
            self.step(depth + 1, &child)?;
            *vals = std::mem::take(&mut child.cols[pv]);
        }
        sel.clear();
        vals.clear();
        Ok(())
    }

    /// Does the snapshot hold an edge satisfying pattern edge `rei`
    /// between the dense endpoints? Pure CSR scan, symbol-compare
    /// labels, exact range re-check.
    fn has_edge_dense(&self, rei: usize, from: u32, to: u32) -> bool {
        let e = &self.plan.pattern.edges[rei];
        match e.direction {
            Direction::Outgoing => self.scan_edge(rei, from, to),
            Direction::Incoming => self.scan_edge(rei, to, from),
            Direction::Both => self.scan_edge(rei, from, to) || self.scan_edge(rei, to, from),
        }
    }

    fn scan_edge(&self, rei: usize, a: u32, b: u32) -> bool {
        let want = self.plan.edge_want[rei];
        let ranges = &self.plan.pattern.edges[rei].ranges;
        let run = self.plan.fz.fwd.run(a);
        for pos in 0..run.targets.len() {
            if run.targets[pos] == b
                && want.accepts(run.labels[pos])
                && (ranges.is_empty() || self.edge_props_in_ranges(run.edge_ids[pos].raw(), rei))
            {
                return true;
            }
        }
        false
    }

    /// Exact edge-property range filter for pattern edge `rei`.
    fn edge_props_in_ranges(&self, edge_raw: u64, rei: usize) -> bool {
        let ranges = &self.plan.pattern.edges[rei].ranges;
        let props = self.plan.fz.edge_props_raw(edge_raw).unwrap_or(&[]);
        ranges.iter().all(|(key, low, high)| {
            props
                .iter()
                .find(|(k, _)| k == key)
                .is_some_and(|(_, got): &(String, Value)| {
                    value_in_range(got, low.as_ref(), high.as_ref())
                })
        })
    }

    /// Materialize operator: charges the emitted batch and appends the
    /// rows (dense ids translated back to node ids) to the flat
    /// result buffer.
    fn emit(&mut self, frame: &Frame) -> Result<()> {
        self.guard.rows(frame.len as u64)?;
        self.data.reserve(frame.len * self.plan.pattern.nodes.len());
        for row in 0..frame.len {
            for col in &frame.cols {
                self.data.push(self.plan.fz.node_at(col[row]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{canonical, match_pattern, PatternNode};
    use crate::planned::{auto_domains, match_pattern_auto};
    use gdm_core::props;
    use gdm_govern::{CancelToken, ExecutionGuard, Limits};
    use gdm_graphs::PropertyGraph;

    fn community() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let mut nodes = Vec::new();
        for i in 0..24u64 {
            let label = if i % 4 == 0 { "company" } else { "person" };
            nodes.push(g.add_node(label, props! { "i" => i as i64, "band" => i as i64 % 3 }));
        }
        for i in 0..24usize {
            let a = nodes[i];
            let b = nodes[(i * 7 + 3) % 24];
            let c = nodes[(i * 11 + 5) % 24];
            let _ = g.add_edge(a, b, "knows", props! { "w" => i as i64 });
            let _ = g.add_edge(a, c, if i % 2 == 0 { "knows" } else { "likes" }, props! {});
        }
        g
    }

    fn chain_pattern() -> Pattern {
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x"));
        let y = p.node(PatternNode::var("y").with_label("person"));
        let z = p.node(PatternNode::var("z"));
        p.edge(x, y, Some("knows")).unwrap();
        p.edge(y, z, Some("knows")).unwrap();
        p
    }

    #[test]
    fn vectorized_equals_planned_and_unplanned() {
        let g = community();
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = chain_pattern();
        let vec = match_pattern_vectorized_auto(&fz, &p);
        let planned = match_pattern_auto(&fz, &p);
        let unplanned = match_pattern(&fz, &p);
        assert_eq!(
            canonical(&vec.to_bindings()),
            canonical(&planned.to_bindings())
        );
        assert_eq!(canonical(&vec.to_bindings()), canonical(&unplanned));
        assert!(!vec.is_empty());
    }

    #[test]
    fn vectorized_respects_explicit_domains() {
        let g = community();
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = chain_pattern();
        let dom = auto_domains(&fz, &p);
        let via_domains = match_pattern_vectorized(&fz, &p, &dom);
        let planned = crate::planned::match_pattern_planned(&fz, &p, &dom);
        assert_eq!(
            canonical(&via_domains.to_bindings()),
            canonical(&planned.to_bindings())
        );
    }

    #[test]
    fn vectorized_handles_self_loops_and_undirected_edges() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("n", props! {});
        let b = g.add_node("n", props! {});
        g.add_edge(a, a, "self", props! {}).unwrap();
        g.add_edge(a, b, "link", props! {}).unwrap();
        let fz = FrozenGraph::freeze_attributed(&g);
        // Self-loop pattern.
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x"));
        p.edge(x, x, Some("self")).unwrap();
        let vec = match_pattern_vectorized_auto(&fz, &p);
        assert_eq!(
            canonical(&vec.to_bindings()),
            canonical(&match_pattern(&fz, &p))
        );
        // Undirected two-node pattern.
        let mut q = Pattern::new();
        let u = q.node(PatternNode::var("u"));
        let v = q.node(PatternNode::var("v"));
        q.edge_undirected(u, v, Some("link")).unwrap();
        let vec = match_pattern_vectorized_auto(&fz, &q);
        assert_eq!(
            canonical(&vec.to_bindings()),
            canonical(&match_pattern(&fz, &q))
        );
        assert_eq!(vec.len(), 2);
    }

    #[test]
    fn vectorized_edge_ranges_filter_matches() {
        let g = community();
        let fz = FrozenGraph::freeze_attributed(&g);
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x"));
        let y = p.node(PatternNode::var("y"));
        p.edge(x, y, Some("knows")).unwrap();
        p.edge_range("w", Some(Value::from(5)), Some(Value::from(9)))
            .unwrap();
        let vec = match_pattern_vectorized_auto(&fz, &p);
        let unplanned = match_pattern(&fz, &p);
        assert_eq!(canonical(&vec.to_bindings()), canonical(&unplanned));
        assert_eq!(vec.len(), 5, "w ∈ [5, 9] keeps five edges");
    }

    #[test]
    fn governed_vectorized_interrupts_with_partial_count() {
        let g = community();
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = chain_pattern();
        let guard = ExecutionGuard::new(Limits::none().with_node_visits(4));
        let err = match_pattern_vectorized_auto_governed(&fz, &p, &guard).unwrap_err();
        assert!(err.is_interrupted());
        // Unlimited guard reproduces the ungoverned result.
        let guard = ExecutionGuard::unlimited();
        let governed = match_pattern_vectorized_auto_governed(&fz, &p, &guard).unwrap();
        let plain = match_pattern_vectorized_auto(&fz, &p);
        assert_eq!(
            canonical(&governed.to_bindings()),
            canonical(&plain.to_bindings())
        );
    }

    #[test]
    fn governed_vectorized_cancellation_trips_per_batch() {
        let g = community();
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = chain_pattern();
        let cancel = CancelToken::new();
        cancel.cancel();
        let guard = ExecutionGuard::with_cancel(Limits::none(), cancel);
        let err = match_pattern_vectorized_auto_governed(&fz, &p, &guard).unwrap_err();
        assert!(err.is_interrupted());
    }

    #[test]
    fn impossible_label_matches_nothing() {
        let g = community();
        let fz = FrozenGraph::freeze_attributed(&g);
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_label("zzz"));
        assert!(match_pattern_vectorized_auto(&fz, &p).is_empty());
        let mut q = Pattern::new();
        let a = q.node(PatternNode::var("a"));
        let b = q.node(PatternNode::var("b"));
        q.edge(a, b, Some("zzz")).unwrap();
        assert!(match_pattern_vectorized_auto(&fz, &q).is_empty());
    }

    #[test]
    fn empty_pattern_is_empty() {
        let g = community();
        let fz = FrozenGraph::freeze_attributed(&g);
        assert!(match_pattern_vectorized_auto(&fz, &Pattern::new()).is_empty());
    }

    #[test]
    fn batches_larger_than_one_flush_cycle() {
        // > BATCH seed candidates force at least two flushes.
        let mut g = PropertyGraph::new();
        let hub = g.add_node("hub", props! {});
        for _ in 0..(BATCH as u64 + 300) {
            let n = g.add_node("leaf", props! {});
            g.add_edge(n, hub, "to", props! {}).unwrap();
        }
        let fz = FrozenGraph::freeze_attributed(&g);
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x").with_label("leaf"));
        let h = p.node(PatternNode::var("h").with_label("hub"));
        p.edge(x, h, Some("to")).unwrap();
        let vec = match_pattern_vectorized_auto(&fz, &p);
        assert_eq!(vec.len(), BATCH + 300);
        let planned = match_pattern_auto(&fz, &p);
        assert_eq!(
            canonical(&vec.to_bindings()),
            canonical(&planned.to_bindings())
        );
    }
}
