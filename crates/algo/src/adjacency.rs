//! Adjacency queries (Section IV.1).
//!
//! "Two nodes are adjacent (or neighbors) when there is an edge
//! between them. Similarly, two edges are adjacent when they share a
//! common node." The queries here are the paper's two exemplars:
//! basic node/edge adjacency tests and the k-neighborhood of a node.

use crate::traverse::Traversal;
use gdm_core::{Direction, EdgeId, GraphView, NodeId};

/// True when `a` and `b` are connected by an edge in either direction.
pub fn nodes_adjacent(g: &dyn GraphView, a: NodeId, b: NodeId) -> bool {
    let mut found = false;
    g.visit_edges_dir(a, Direction::Both, &mut |e| {
        if e.to == b {
            found = true;
        }
    });
    // Self-adjacency requires an explicit self-loop, covered above.
    found
}

/// True when edges `e1` and `e2` share an endpoint.
///
/// Runs over endpoint lookups supplied by the caller because
/// [`GraphView`] does not expose edge-id → endpoints directly; each
/// structure provides its own lookup (see the engine facades).
pub fn edges_adjacent(
    endpoints: impl Fn(EdgeId) -> Option<(NodeId, NodeId)>,
    e1: EdgeId,
    e2: EdgeId,
) -> Option<bool> {
    let (a1, b1) = endpoints(e1)?;
    let (a2, b2) = endpoints(e2)?;
    Some(a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2)
}

/// The k-neighborhood of `n`: every node reachable within `k` hops
/// (excluding `n` itself), in BFS order. `direction` selects which
/// edges count as neighborhood edges.
pub fn k_neighborhood(g: &dyn GraphView, n: NodeId, k: usize, direction: Direction) -> Vec<NodeId> {
    if k == 0 {
        return Vec::new();
    }
    Traversal::new(n)
        .direction(direction)
        .min_depth(1)
        .max_depth(k)
        .run(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_graphs::SimpleGraph;

    fn path_graph(n: usize) -> (SimpleGraph, Vec<NodeId>) {
        let mut g = SimpleGraph::directed();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        (g, nodes)
    }

    #[test]
    fn direct_neighbors_are_adjacent() {
        let (g, n) = path_graph(3);
        assert!(nodes_adjacent(&g, n[0], n[1]));
        assert!(nodes_adjacent(&g, n[1], n[0]), "either direction counts");
        assert!(!nodes_adjacent(&g, n[0], n[2]));
    }

    #[test]
    fn self_adjacency_requires_a_loop() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        assert!(!nodes_adjacent(&g, a, a));
        g.add_edge(a, a).unwrap();
        assert!(nodes_adjacent(&g, a, a));
    }

    #[test]
    fn edge_adjacency_by_shared_endpoint() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        let e1 = g.add_edge(a, b).unwrap();
        let e2 = g.add_edge(b, c).unwrap();
        let e3 = g.add_edge(c, d).unwrap();
        let lookup = |e| g.edge_endpoints(e).ok();
        assert_eq!(edges_adjacent(lookup, e1, e2), Some(true));
        assert_eq!(edges_adjacent(lookup, e1, e3), Some(false));
        assert_eq!(edges_adjacent(lookup, e1, EdgeId(99)), None);
    }

    #[test]
    fn k_neighborhood_grows_with_k() {
        let (g, n) = path_graph(5);
        assert_eq!(k_neighborhood(&g, n[0], 1, Direction::Outgoing), vec![n[1]]);
        assert_eq!(
            k_neighborhood(&g, n[0], 3, Direction::Outgoing),
            vec![n[1], n[2], n[3]]
        );
        assert!(k_neighborhood(&g, n[0], 0, Direction::Outgoing).is_empty());
    }

    #[test]
    fn k_neighborhood_excludes_center_even_with_cycles() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        let hood = k_neighborhood(&g, a, 5, Direction::Outgoing);
        assert_eq!(hood, vec![b]);
    }

    #[test]
    fn k_neighborhood_direction_matters() {
        let (g, n) = path_graph(3);
        assert!(k_neighborhood(&g, n[2], 2, Direction::Outgoing).is_empty());
        assert_eq!(
            k_neighborhood(&g, n[2], 2, Direction::Incoming),
            vec![n[1], n[0]]
        );
        assert_eq!(k_neighborhood(&g, n[1], 1, Direction::Both).len(), 2);
    }
}
