//! A compressed-sparse-row (CSR) snapshot of any [`GraphView`].
//!
//! Every essential query in this crate walks the live stores through
//! dynamic visitor callbacks, paying a hash lookup and a virtual call
//! per edge hop. [`FrozenGraph`] freezes a point-in-time copy of a
//! view into contiguous arrays — offsets, targets, edge ids, labels —
//! so traversal becomes pointer arithmetic over dense `u32` indices
//! (DESIGN.md §9).
//!
//! The snapshot is built by *recording*: the forward CSR stores, per
//! node, exactly the sequence [`GraphView::visit_out_edges`] produced,
//! and the reverse CSR the [`GraphView::visit_in_edges`] sequence.
//! Replaying a recording is trivially behaviour-equivalent to the
//! live view — whatever convention a structure uses for self-loops,
//! parallel edges, or undirected incidence is preserved verbatim, and
//! every algorithm in this crate returns identical answers on the
//! frozen graph (`tests/frozen_equiv.rs` proves this by property
//! testing). Semantics are point-in-time, not transactional: later
//! mutations of the source are invisible to the snapshot.
//!
//! **Slabbed layout.** Each CSR direction is chopped into fixed-size
//! *slabs* of [`SLAB_NODES`] consecutive dense rows, each slab an
//! independently `Arc`-shared block of offsets/targets/edge-ids/labels
//! (plus the label-sorted run permutation). Queries never notice —
//! [`Csr::run`] hands out the same contiguous per-row slices as a flat
//! layout — but the incremental re-freeze path
//! ([`crate::refreeze`]) can now share every untouched slab with the
//! previous snapshot by bumping a reference count instead of copying,
//! which is what makes re-freezing O(changes) rather than O(graph).
//!
//! Beyond the plain CSR the snapshot carries three acceleration
//! structures:
//!
//! * **cached degrees** — run lengths read off the offset arrays in
//!   O(1), overriding the counting defaults;
//! * **label-partitioned edge runs** (per-slab `run_order`) — a
//!   per-node permutation of the forward run, stably sorted by label,
//!   letting [`frozen_regular_path_exists`] step its NFA once per
//!   distinct label instead of once per edge;
//! * **a node-label index** (`nodes_with_label`) — the candidate
//!   prefilter the parallel pattern matcher starts from.
//!
//! Every snapshot is stamped with a process-unique, monotonically
//! increasing **epoch** ([`FrozenGraph::epoch`]); the serving layer
//! keys plan caches and session pinning on it.
//!
//! `FrozenGraph` owns all its data (its own [`Interner`], no borrows),
//! so it is `Send + Sync` and shareable across the scoped threads of
//! [`crate::parallel`].

use crate::regular::LabelRegex;
use gdm_core::{
    AttributedView, EdgeId, EdgeRef, FxHashMap, FxHashSet, GraphView, Interner, NodeId, Symbol,
    Value, WeightedView,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Dense rows per CSR slab. Small enough that one dirty node only
/// forces a 64-row copy; large enough that slab bookkeeping stays
/// negligible next to the edge arrays.
pub(crate) const SLAB_NODES: u32 = 64;

/// Process-global epoch source: every freeze (full or incremental)
/// draws a fresh value, so two distinct snapshots never share an epoch
/// and a delta recorded against one can never be misapplied to another.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Draws the next snapshot epoch.
pub(crate) fn next_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// The shared empty property list: prop-less nodes all point at one
/// allocation, so cloning a snapshot's property column is pure
/// refcount traffic.
pub(crate) fn empty_props() -> Arc<Vec<(String, Value)>> {
    static EMPTY: OnceLock<Arc<Vec<(String, Value)>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

/// One edge-attribute index row: `(value, from_dense, to_dense,
/// edge_raw)`.
pub(crate) type RangeRow = (Value, u32, u32, u64);

/// An `Arc`-shared, value-sorted run of index rows for one key.
pub(crate) type RangeRun = Arc<Vec<RangeRow>>;

/// The copy-on-write edge-property map: edge raw id → property list.
pub(crate) type EdgePropsMap = Arc<FxHashMap<u64, Arc<Vec<(String, Value)>>>>;

/// One slab: [`SLAB_NODES`] consecutive dense rows of a CSR direction.
/// `offsets` are slab-local (`offsets[0] == 0`, length `rows + 1`);
/// `targets` remain global dense positions. `run_order` is the
/// label-sorted permutation of slab-local positions, per row.
#[derive(Debug, Default)]
pub(crate) struct CsrSlab {
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<u32>,
    pub(crate) edge_ids: Vec<EdgeId>,
    pub(crate) labels: Vec<Option<Symbol>>,
    pub(crate) run_order: Vec<u32>,
}

impl CsrSlab {
    /// Number of dense rows this slab covers.
    pub(crate) fn rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Slab-local position range of `row`.
    #[inline]
    pub(crate) fn local_range(&self, row: usize) -> std::ops::Range<usize> {
        self.offsets[row] as usize..self.offsets[row + 1] as usize
    }

    /// (Re)builds `run_order`: per row, slab-local positions stably
    /// sorted by label so equal labels form contiguous runs.
    pub(crate) fn sort_runs(&mut self) {
        self.run_order = (0..self.targets.len() as u32).collect();
        for row in 0..self.rows() {
            let range = self.local_range(row);
            self.run_order[range].sort_by_key(|&pos| self.labels[pos as usize].map(Symbol::raw));
        }
    }
}

/// One adjacency direction as a sequence of `Arc`-shared slabs. Row
/// `i` lives in slab `i / SLAB_NODES` at local row `i % SLAB_NODES`.
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    /// Total dense rows (same for fwd and rev of one snapshot).
    pub(crate) n: usize,
    pub(crate) slabs: Vec<Arc<CsrSlab>>,
}

/// A borrowed view of one node's adjacency run: three parallel slices.
pub(crate) struct Run<'a> {
    pub(crate) targets: &'a [u32],
    pub(crate) edge_ids: &'a [EdgeId],
    pub(crate) labels: &'a [Option<Symbol>],
}

impl Csr {
    /// Chops flat recording arrays (global offsets of length `n + 1`)
    /// into slabs and builds each slab's label-run permutation.
    pub(crate) fn from_flat(
        n: usize,
        offsets: &[u32],
        targets: &[u32],
        edge_ids: &[EdgeId],
        labels: &[Option<Symbol>],
    ) -> Self {
        debug_assert_eq!(offsets.len(), n + 1);
        let mut slabs = Vec::with_capacity(n.div_ceil(SLAB_NODES as usize));
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + SLAB_NODES as usize).min(n);
            let base = offsets[lo];
            let end = offsets[hi] as usize;
            let mut slab = CsrSlab {
                offsets: offsets[lo..=hi].iter().map(|&o| o - base).collect(),
                targets: targets[base as usize..end].to_vec(),
                edge_ids: edge_ids[base as usize..end].to_vec(),
                labels: labels[base as usize..end].to_vec(),
                run_order: Vec::new(),
            };
            slab.sort_runs();
            slabs.push(Arc::new(slab));
            lo = hi;
        }
        Self { n, slabs }
    }

    /// Slab and slab-local row of dense position `dense`.
    #[inline]
    pub(crate) fn locate(&self, dense: u32) -> (&CsrSlab, usize) {
        debug_assert!((dense as usize) < self.n);
        (
            &self.slabs[(dense / SLAB_NODES) as usize],
            (dense % SLAB_NODES) as usize,
        )
    }

    /// The adjacency run of `dense` as parallel slices.
    #[inline]
    pub(crate) fn run(&self, dense: u32) -> Run<'_> {
        let (slab, row) = self.locate(dense);
        let range = slab.local_range(row);
        Run {
            targets: &slab.targets[range.clone()],
            edge_ids: &slab.edge_ids[range.clone()],
            labels: &slab.labels[range],
        }
    }

    /// Target slice of `dense`'s run.
    #[inline]
    pub(crate) fn targets(&self, dense: u32) -> &[u32] {
        let (slab, row) = self.locate(dense);
        &slab.targets[slab.local_range(row)]
    }

    /// Run length of `dense` in O(1).
    #[inline]
    pub(crate) fn degree(&self, dense: u32) -> usize {
        let (slab, row) = self.locate(dense);
        (slab.offsets[row + 1] - slab.offsets[row]) as usize
    }

    /// Total recorded edge slots across all slabs.
    pub(crate) fn edge_slots(&self) -> usize {
        self.slabs.iter().map(|s| s.targets.len()).sum()
    }
}

/// An immutable point-in-time CSR snapshot of a graph view. See the
/// module docs for layout and equivalence guarantees.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    pub(crate) directed: bool,
    pub(crate) edge_count: usize,
    /// Process-unique snapshot epoch (see [`next_epoch`]).
    pub(crate) epoch: u64,
    /// How much work producing this snapshot cost, in node+edge visit
    /// units — full freezes charge O(V+E), incremental re-freezes only
    /// what they re-read. The serving layer bills refreshes with this.
    pub(crate) freeze_work: u64,
    /// Dense position → original node id, in source visit order.
    pub(crate) nodes: Vec<NodeId>,
    /// Original node id → dense position.
    pub(crate) index: FxHashMap<u64, u32>,
    pub(crate) fwd: Csr,
    pub(crate) rev: Csr,
    pub(crate) interner: Interner,
    pub(crate) node_labels: Vec<Option<Symbol>>,
    pub(crate) node_props: Vec<Arc<Vec<(String, Value)>>>,
    /// Edge raw id → property list, for edges carrying at least one
    /// property. `Arc`-wrapped as a whole so an incremental re-freeze
    /// with no edge-property churn shares the map by reference count
    /// instead of cloning O(E) entries ([`Arc::make_mut`] restores
    /// copy-on-write semantics at the mutation sites).
    pub(crate) edge_props: EdgePropsMap,
    /// Node label → dense positions carrying it, ascending.
    pub(crate) label_index: FxHashMap<Symbol, Vec<u32>>,
    /// Edge property key → `(value, from_dense, to_dense, edge_raw)`
    /// rows sorted by [`Value::total_cmp`] — the ordered edge-attribute
    /// index behind [`AttributedView::edge_range_candidates`]. Built by
    /// [`FrozenGraph::freeze_attributed`] from the forward CSR, so
    /// undirected snapshots carry both orientations of each edge. The
    /// edge id tag lets the incremental re-freeze retire exactly the
    /// rows of re-read edges instead of rebuilding the index. Each run
    /// is `Arc`-wrapped so a re-freeze clones only the keys it patches
    /// and shares untouched runs by reference count.
    pub(crate) edge_ranges: FxHashMap<String, RangeRun>,
}

impl FrozenGraph {
    /// Freezes the structure (nodes, edges, edge labels) of `g`. Node
    /// labels and properties are not captured — use
    /// [`FrozenGraph::freeze_attributed`] when the source has them.
    pub fn freeze<G: GraphView + ?Sized>(g: &G) -> Self {
        Self::build(g)
    }

    /// Freezes structure plus node labels and node/edge properties.
    /// Property capture relies on the source implementing the
    /// [`AttributedView::visit_node_properties`] /
    /// [`AttributedView::visit_edge_properties`] enumeration hooks;
    /// sources keeping the default (non-enumerable) hooks freeze with
    /// labels but without property values.
    pub fn freeze_attributed<G: AttributedView + ?Sized>(g: &G) -> Self {
        let mut fz = Self::build(g);
        let mut cache: FxHashMap<u32, Option<Symbol>> = FxHashMap::default();
        for (dense, &n) in fz.nodes.iter().enumerate() {
            let label = g.node_label(n).and_then(|sym| {
                *cache
                    .entry(sym.raw())
                    .or_insert_with(|| g.label_text(sym).map(|t| fz.interner.intern(t)))
            });
            fz.node_labels[dense] = label;
            if let Some(sym) = label {
                fz.label_index.entry(sym).or_default().push(dense as u32);
            }
            let mut props = Vec::new();
            g.visit_node_properties(n, &mut |k, v| props.push((k.to_owned(), v.clone())));
            if !props.is_empty() {
                fz.node_props[dense] = Arc::new(props);
            }
        }
        let mut edge_props: FxHashMap<u64, Arc<Vec<(String, Value)>>> = FxHashMap::default();
        for slab in fz.fwd.slabs.iter().chain(fz.rev.slabs.iter()) {
            for &id in &slab.edge_ids {
                edge_props.entry(id.raw()).or_insert_with(|| {
                    let mut props = Vec::new();
                    g.visit_edge_properties(id, &mut |k, v| props.push((k.to_owned(), v.clone())));
                    Arc::new(props)
                });
            }
        }
        edge_props.retain(|_, v| !v.is_empty());
        // Ordered edge-attribute index: one sorted run per key over
        // the forward CSR (so endpoint pairs come out in from-dense
        // order before sorting by value).
        let mut edge_ranges: FxHashMap<String, Vec<RangeRow>> = FxHashMap::default();
        for dense in 0..fz.nodes.len() as u32 {
            let run = fz.fwd.run(dense);
            for i in 0..run.targets.len() {
                let raw = run.edge_ids[i].raw();
                let Some(props) = edge_props.get(&raw) else {
                    continue;
                };
                for (k, v) in props.iter() {
                    edge_ranges.entry(k.clone()).or_default().push((
                        v.clone(),
                        dense,
                        run.targets[i],
                        raw,
                    ));
                }
            }
        }
        for run in edge_ranges.values_mut() {
            run.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        fz.edge_props = Arc::new(edge_props);
        fz.edge_ranges = edge_ranges
            .into_iter()
            .map(|(k, v)| (k, Arc::new(v)))
            .collect();
        fz
    }

    fn build<G: GraphView + ?Sized>(g: &G) -> Self {
        let mut nodes = Vec::with_capacity(g.node_count());
        g.visit_nodes(&mut |n| nodes.push(n));
        let mut index = FxHashMap::default();
        index.reserve(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let dense = u32::try_from(i).expect("frozen graph limited to u32 nodes");
            index.insert(n.raw(), dense);
        }

        let mut interner = Interner::new();
        // Source symbol → re-interned symbol, so each label resolves once.
        let mut relabel: FxHashMap<u32, Option<Symbol>> = FxHashMap::default();
        let (mut fwd, mut rev) = (
            FlatCsr::with_nodes(nodes.len()),
            FlatCsr::with_nodes(nodes.len()),
        );
        for &n in &nodes {
            for (csr, incoming) in [(&mut fwd, false), (&mut rev, true)] {
                let mut record = |e: EdgeRef| {
                    let dense = *index
                        .get(&e.to.raw())
                        .expect("edge endpoint not yielded by visit_nodes");
                    csr.targets.push(dense);
                    csr.edge_ids.push(e.id);
                    let label = e.label.and_then(|sym| {
                        *relabel
                            .entry(sym.raw())
                            .or_insert_with(|| g.label_text(sym).map(|t| interner.intern(t)))
                    });
                    csr.labels.push(label);
                };
                if incoming {
                    g.visit_in_edges(n, &mut record);
                } else {
                    g.visit_out_edges(n, &mut record);
                }
                let len = u32::try_from(csr.targets.len()).expect("frozen graph u32 edge limit");
                csr.offsets.push(len);
            }
        }

        let n = nodes.len();
        let fwd = Csr::from_flat(n, &fwd.offsets, &fwd.targets, &fwd.edge_ids, &fwd.labels);
        let rev = Csr::from_flat(n, &rev.offsets, &rev.targets, &rev.edge_ids, &rev.labels);
        let freeze_work = (n + fwd.edge_slots() + rev.edge_slots()) as u64;
        Self {
            directed: g.is_directed(),
            edge_count: g.edge_count(),
            epoch: next_epoch(),
            freeze_work,
            nodes,
            index,
            fwd,
            rev,
            interner,
            node_labels: vec![None; n],
            node_props: vec![empty_props(); n],
            edge_props: Arc::new(FxHashMap::default()),
            label_index: FxHashMap::default(),
            edge_ranges: FxHashMap::default(),
        }
    }

    // ---- dense accessors (the parallel executor's fast path) --------

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// This snapshot's epoch: process-unique, monotonically increasing
    /// across freezes. Serving layers key caches and session pinning
    /// on it.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Node+edge visit units spent producing this snapshot: O(V+E) for
    /// a full freeze, O(changes) for an incremental re-freeze.
    #[inline]
    pub fn freeze_work(&self) -> u64 {
        self.freeze_work
    }

    /// Original id of the node at dense position `dense`.
    #[inline]
    pub fn node_at(&self, dense: u32) -> NodeId {
        self.nodes[dense as usize]
    }

    /// Dense position of original node `n`, if it was frozen.
    #[inline]
    pub fn dense_of(&self, n: NodeId) -> Option<u32> {
        self.index.get(&n.raw()).copied()
    }

    /// Forward-neighbor dense positions of `dense` (with duplicates
    /// from parallel edges, exactly as the source visited them).
    #[inline]
    pub fn out_targets(&self, dense: u32) -> &[u32] {
        self.fwd.targets(dense)
    }

    /// Reverse-neighbor dense positions of `dense`.
    #[inline]
    pub fn in_targets(&self, dense: u32) -> &[u32] {
        self.rev.targets(dense)
    }

    /// Cached out-degree (forward run length).
    #[inline]
    pub fn out_degree_dense(&self, dense: u32) -> usize {
        self.fwd.degree(dense)
    }

    /// Cached in-degree (reverse run length).
    #[inline]
    pub fn in_degree_dense(&self, dense: u32) -> usize {
        self.rev.degree(dense)
    }

    /// Cached total degree, with the same convention as
    /// [`GraphView::degree`]: in + out when directed, incident count
    /// when undirected.
    #[inline]
    pub fn degree_dense(&self, dense: u32) -> usize {
        if self.directed {
            self.fwd.degree(dense) + self.rev.degree(dense)
        } else {
            self.fwd.degree(dense)
        }
    }

    /// Unweighted BFS distance over the dense forward arrays — the
    /// sequential CSR fast path for [`crate::distance`], with which it
    /// agrees exactly (BFS follows out-edges, which for an undirected
    /// snapshot already hold both incidences).
    pub fn frozen_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let (src, dst) = (self.dense_of(a)?, self.dense_of(b)?);
        if src == dst {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let next = dist[u as usize] + 1;
            for &v in self.out_targets(u) {
                if dist[v as usize] == u32::MAX {
                    if v == dst {
                        return Some(next as usize);
                    }
                    dist[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// The snapshot's symbol for label text, if any frozen edge or
    /// node carries it.
    pub fn label_symbol(&self, text: &str) -> Option<Symbol> {
        self.interner.get(text)
    }

    /// Dense positions of the nodes labelled `sym`, ascending. Empty
    /// for labels no node carries.
    pub fn nodes_with_label(&self, sym: Symbol) -> &[u32] {
        self.label_index.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// Calls `f` once per label-partitioned forward run of `dense`:
    /// the run's label, the slab-local positions carrying it, and the
    /// slab's target array to resolve those positions through.
    pub(crate) fn for_each_label_run(
        &self,
        dense: u32,
        mut f: impl FnMut(Option<Symbol>, &[u32], &[u32]),
    ) {
        let (slab, row) = self.fwd.locate(dense);
        let order = &slab.run_order[slab.local_range(row)];
        let mut start = 0;
        while start < order.len() {
            let label = slab.labels[order[start] as usize];
            let mut end = start + 1;
            while end < order.len() && slab.labels[order[end] as usize] == label {
                end += 1;
            }
            f(label, &order[start..end], &slab.targets);
            start = end;
        }
    }

    // ---- columnar accessors (the vectorized executor's fast path) ---

    /// Interned label of the node at dense position `dense`.
    #[inline]
    pub(crate) fn node_label_dense(&self, dense: u32) -> Option<Symbol> {
        self.node_labels[dense as usize]
    }

    /// Property list of the node at dense position `dense`.
    #[inline]
    pub(crate) fn node_props_dense(&self, dense: u32) -> &[(String, Value)] {
        &self.node_props[dense as usize]
    }

    /// Property list of edge `id` (raw), if the edge carries any.
    #[inline]
    pub(crate) fn edge_props_raw(&self, id: u64) -> Option<&[(String, Value)]> {
        self.edge_props.get(&id).map(|p| p.as_slice())
    }
}

/// Flat recording buffers used while building, before chopping into
/// slabs: global offsets over three parallel arrays.
struct FlatCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    edge_ids: Vec<EdgeId>,
    labels: Vec<Option<Symbol>>,
}

impl FlatCsr {
    fn with_nodes(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        Self {
            offsets,
            targets: Vec::new(),
            edge_ids: Vec::new(),
            labels: Vec::new(),
        }
    }
}

impl GraphView for FrozenGraph {
    fn is_directed(&self) -> bool {
        self.directed
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.index.contains_key(&n.raw())
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        for &n in &self.nodes {
            f(n);
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(dense) = self.dense_of(n) else {
            return;
        };
        let run = self.fwd.run(dense);
        for i in 0..run.targets.len() {
            f(EdgeRef {
                id: run.edge_ids[i],
                from: n,
                to: self.nodes[run.targets[i] as usize],
                label: run.labels[i],
            });
        }
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(dense) = self.dense_of(n) else {
            return;
        };
        let run = self.rev.run(dense);
        for i in 0..run.targets.len() {
            f(EdgeRef {
                id: run.edge_ids[i],
                from: n,
                to: self.nodes[run.targets[i] as usize],
                label: run.labels[i],
            });
        }
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.interner.resolve(sym)
    }

    // O(1) degree overrides reading the cached offset arrays.

    fn out_degree(&self, n: NodeId) -> usize {
        self.dense_of(n).map_or(0, |d| self.fwd.degree(d))
    }

    fn in_degree(&self, n: NodeId) -> usize {
        self.dense_of(n).map_or(0, |d| self.rev.degree(d))
    }

    fn degree(&self, n: NodeId) -> usize {
        self.dense_of(n).map_or(0, |d| self.degree_dense(d))
    }
}

impl AttributedView for FrozenGraph {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        self.node_labels[self.dense_of(n)? as usize]
    }

    fn node_property(&self, n: NodeId, key: &str) -> Option<Value> {
        let dense = self.dense_of(n)?;
        self.node_props[dense as usize]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn edge_property(&self, e: EdgeId, key: &str) -> Option<Value> {
        self.edge_props
            .get(&e.raw())?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(dense) = self.dense_of(n) {
            for (k, v) in self.node_props[dense as usize].iter() {
                f(k, v);
            }
        }
    }

    fn visit_edge_properties(&self, e: EdgeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(props) = self.edge_props.get(&e.raw()) {
            for (k, v) in props.iter() {
                f(k, v);
            }
        }
    }

    /// Seeds from the frozen label index when a label constraint is
    /// present (property constraints post-filtered over that run);
    /// label-less requests scan, same as the default.
    fn candidates(&self, label: Option<&str>, props: &[(String, Value)]) -> Vec<NodeId> {
        let pool: Vec<NodeId> = match label {
            Some(want) => match self.label_symbol(want) {
                None => return Vec::new(),
                Some(sym) => self
                    .nodes_with_label(sym)
                    .iter()
                    .map(|&d| self.nodes[d as usize])
                    .collect(),
            },
            None => self.nodes.clone(),
        };
        pool.into_iter()
            .filter(|&n| {
                props.iter().all(|(key, want)| {
                    self.node_property(n, key)
                        .is_some_and(|got| got.loose_eq(want))
                })
            })
            .collect()
    }

    /// The label run length bounds the candidate count; the snapshot
    /// carries no property value index, so label-less constraints
    /// still require a scan.
    fn candidate_estimate(&self, label: Option<&str>, props: &[(String, Value)]) -> Option<usize> {
        let _ = props;
        label.map(|want| {
            self.label_symbol(want)
                .map_or(0, |sym| self.nodes_with_label(sym).len())
        })
    }

    /// Binary search over the freeze-time ordered edge-attribute runs.
    /// Bounds are [`Value::total_cmp`]-inclusive, which unifies the
    /// number family exactly like the live `BTreeIndex` encoding does.
    fn edge_range_candidates(
        &self,
        key: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<(NodeId, NodeId)>> {
        let run = self.edge_ranges.get(key)?;
        let start = match low {
            Some(lo) => run.partition_point(|(v, ..)| v.total_cmp(lo) == std::cmp::Ordering::Less),
            None => 0,
        };
        let end = match high {
            Some(hi) => {
                run.partition_point(|(v, ..)| v.total_cmp(hi) != std::cmp::Ordering::Greater)
            }
            None => run.len(),
        };
        Some(
            run[start..end.max(start)]
                .iter()
                .map(|&(_, f, t, _)| (self.nodes[f as usize], self.nodes[t as usize]))
                .collect(),
        )
    }

    /// The CSR snapshot is the columnar backend the vectorized
    /// pipeline runs on.
    fn batch_backend(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl WeightedView for FrozenGraph {
    /// Same convention as `PropertyGraph`: the `"weight"` property
    /// when numeric, else 1.0.
    fn edge_weight(&self, e: &EdgeRef) -> f64 {
        self.edge_property(e.id, "weight")
            .and_then(|v| v.as_f64())
            .unwrap_or(1.0)
    }
}

/// Walk-semantics regular path query over the frozen label runs:
/// result-equivalent to [`crate::regular_path_exists`], but steps the
/// NFA once per *distinct label* of a node (memoized per state) rather
/// than once per edge.
pub fn frozen_regular_path_exists(
    fz: &FrozenGraph,
    a: NodeId,
    b: NodeId,
    regex: &LabelRegex,
) -> bool {
    let (Some(da), Some(db)) = (fz.dense_of(a), fz.dense_of(b)) else {
        return false;
    };
    let start = regex.start_set();
    if da == db && regex.accepts_set(&start) {
        return true;
    }
    let mut seen: FxHashSet<(u32, usize)> = FxHashSet::default();
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    for &s in &start {
        if seen.insert((da, s)) {
            queue.push_back((da, s));
        }
    }
    // (state, label) → closed successor set; shared across every node
    // because stepping depends only on the pair.
    let mut memo: FxHashMap<(usize, Option<Symbol>), FxHashSet<usize>> = FxHashMap::default();
    while let Some((node, state)) = queue.pop_front() {
        fz.for_each_label_run(node, |label, positions, slab_targets| {
            let next = memo.entry((state, label)).or_insert_with(|| {
                let mut from = FxHashSet::default();
                from.insert(state);
                regex.eps_closure(&mut from);
                regex.step(&from, label.and_then(|sym| fz.label_text(sym)))
            });
            if next.is_empty() {
                return;
            }
            let accepts = regex.accepts_set(next);
            for &pos in positions {
                let to = slab_targets[pos as usize];
                if to == db && accepts {
                    // Can't early-return out of the closure; flag via
                    // sentinel pair that short-circuits below.
                    seen.insert((u32::MAX, usize::MAX));
                    return;
                }
                for &ns in next.iter() {
                    if seen.insert((to, ns)) {
                        queue.push_back((to, ns));
                    }
                }
            }
        });
        if seen.contains(&(u32::MAX, usize::MAX)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular_path_exists;
    use gdm_core::props;
    use gdm_graphs::{PropertyGraph, SimpleGraph};

    fn labeled_chain() -> (SimpleGraph, Vec<NodeId>) {
        // 0 -a-> 1 -a-> 2 -b-> 3, shortcut 0 -b-> 3, cycle 1 -a-> 0.
        let mut g = SimpleGraph::directed();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_labeled_edge(n[0], n[1], "a").unwrap();
        g.add_labeled_edge(n[1], n[2], "a").unwrap();
        g.add_labeled_edge(n[2], n[3], "b").unwrap();
        g.add_labeled_edge(n[0], n[3], "b").unwrap();
        g.add_labeled_edge(n[1], n[0], "a").unwrap();
        (g, n)
    }

    #[test]
    fn freeze_preserves_counts_and_degrees() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        assert_eq!(fz.node_count(), g.node_count());
        assert_eq!(fz.edge_count(), g.edge_count());
        for &node in &n {
            assert_eq!(fz.out_degree(node), g.out_degree(node));
            assert_eq!(fz.in_degree(node), g.in_degree(node));
            assert_eq!(fz.degree(node), g.degree(node));
        }
    }

    #[test]
    fn freeze_replays_visit_order_and_labels() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        for &node in &n {
            let live: Vec<(u64, u64, Option<String>)> = g
                .out_edges(node)
                .into_iter()
                .map(|e| {
                    (
                        e.id.raw(),
                        e.to.raw(),
                        e.label.and_then(|s| g.label_text(s)).map(str::to_owned),
                    )
                })
                .collect();
            let frozen: Vec<(u64, u64, Option<String>)> = fz
                .out_edges(node)
                .into_iter()
                .map(|e| {
                    (
                        e.id.raw(),
                        e.to.raw(),
                        e.label.and_then(|s| fz.label_text(s)).map(str::to_owned),
                    )
                })
                .collect();
            assert_eq!(live, frozen);
        }
    }

    #[test]
    fn label_runs_partition_the_forward_run() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        let d0 = fz.dense_of(n[0]).unwrap();
        let mut runs = Vec::new();
        fz.for_each_label_run(d0, |label, positions, _| {
            let text = label.and_then(|s| fz.label_text(s)).map(str::to_owned);
            runs.push((text, positions.len()));
        });
        // Node 0 has one "a" edge and one "b" edge: two runs of one.
        assert_eq!(runs.len(), 2);
        assert_eq!(fz.out_degree_dense(d0), 2);
    }

    #[test]
    fn frozen_regular_paths_agree_with_live() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        for expr in ["a a b", "a b", "a* b", "a a a a b", "b", "(a|b)+", "a*"] {
            let r = LabelRegex::compile(expr).unwrap();
            for &from in &n {
                for &to in &n {
                    assert_eq!(
                        regular_path_exists(&g, from, to, &r),
                        frozen_regular_path_exists(&fz, from, to, &r),
                        "expr {expr:?} {from} -> {to}"
                    );
                }
            }
        }
    }

    #[test]
    fn freeze_attributed_captures_labels_and_props() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("person", props! { "age" => 30 });
        let b = g.add_node("person", props! { "age" => 40 });
        let e = g
            .add_edge(a, b, "knows", props! { "since" => 1999 })
            .unwrap();
        let fz = FrozenGraph::freeze_attributed(&g);
        assert_eq!(
            fz.node_label(a).and_then(|s| fz.label_text(s)),
            Some("person")
        );
        assert_eq!(fz.node_property(b, "age"), Some(Value::from(40)));
        assert_eq!(fz.edge_property(e, "since"), Some(Value::from(1999)));
        let sym = fz.label_symbol("person").unwrap();
        assert_eq!(fz.nodes_with_label(sym).len(), 2);
    }

    #[test]
    fn unknown_nodes_are_absent() {
        let (g, _) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        let ghost = NodeId(99);
        assert!(!fz.contains_node(ghost));
        assert_eq!(fz.degree(ghost), 0);
        assert!(fz.out_edges(ghost).is_empty());
    }

    #[test]
    fn undirected_snapshot_keeps_incidence() {
        let mut g = SimpleGraph::undirected();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, a).unwrap(); // self-loop, stored once
        let fz = FrozenGraph::freeze(&g);
        assert!(!fz.is_directed());
        assert_eq!(fz.degree(a), g.degree(a));
        assert_eq!(fz.degree(b), g.degree(b));
    }

    #[test]
    fn epochs_are_unique_and_increasing() {
        let (g, _) = labeled_chain();
        let a = FrozenGraph::freeze(&g);
        let b = FrozenGraph::freeze(&g);
        assert!(b.epoch() > a.epoch());
        assert!(a.freeze_work() >= (a.node_count() + a.edge_count()) as u64);
    }

    #[test]
    fn slabbed_layout_spans_slab_boundaries() {
        // More nodes than one slab, star-shaped so one run crosses
        // into targets stored in other slabs.
        let mut g = SimpleGraph::directed();
        let hub = g.add_node();
        let spokes: Vec<NodeId> = (0..(SLAB_NODES as usize * 2 + 7))
            .map(|_| g.add_node())
            .collect();
        for &s in &spokes {
            g.add_labeled_edge(hub, s, "spoke").unwrap();
        }
        let fz = FrozenGraph::freeze(&g);
        assert!(fz.fwd.slabs.len() > 2);
        assert_eq!(fz.out_degree(hub), spokes.len());
        let hub_dense = fz.dense_of(hub).unwrap();
        assert_eq!(fz.out_targets(hub_dense).len(), spokes.len());
        for &s in &spokes {
            assert_eq!(fz.in_degree(s), 1);
            assert_eq!(fz.frozen_distance(hub, s), Some(1));
        }
    }
}
