//! A compressed-sparse-row (CSR) snapshot of any [`GraphView`].
//!
//! Every essential query in this crate walks the live stores through
//! dynamic visitor callbacks, paying a hash lookup and a virtual call
//! per edge hop. [`FrozenGraph`] freezes a point-in-time copy of a
//! view into four contiguous arrays per direction — offsets, targets,
//! edge ids, labels — so traversal becomes pointer arithmetic over
//! dense `u32` indices (DESIGN.md §9).
//!
//! The snapshot is built by *recording*: the forward CSR stores, per
//! node, exactly the sequence [`GraphView::visit_out_edges`] produced,
//! and the reverse CSR the [`GraphView::visit_in_edges`] sequence.
//! Replaying a recording is trivially behaviour-equivalent to the
//! live view — whatever convention a structure uses for self-loops,
//! parallel edges, or undirected incidence is preserved verbatim, and
//! every algorithm in this crate returns identical answers on the
//! frozen graph (`tests/frozen_equiv.rs` proves this by property
//! testing). Semantics are point-in-time, not transactional: later
//! mutations of the source are invisible to the snapshot.
//!
//! Beyond the plain CSR the snapshot carries three acceleration
//! structures:
//!
//! * **cached degrees** — run lengths read off the offset array in
//!   O(1), overriding the counting defaults;
//! * **label-partitioned edge runs** (`run_order`) — a per-node
//!   permutation of the forward run, stably sorted by label, letting
//!   [`frozen_regular_path_exists`] step its NFA once per distinct
//!   label instead of once per edge;
//! * **a node-label index** (`nodes_with_label`) — the candidate
//!   prefilter the parallel pattern matcher starts from.
//!
//! `FrozenGraph` owns all its data (its own [`Interner`], no borrows),
//! so it is `Send + Sync` and shareable across the scoped threads of
//! [`crate::parallel`].

use crate::regular::LabelRegex;
use gdm_core::{
    AttributedView, EdgeId, EdgeRef, FxHashMap, FxHashSet, GraphView, Interner, NodeId, Symbol,
    Value, WeightedView,
};
use std::collections::VecDeque;

/// One adjacency direction in compressed-sparse-row form. Node `i`'s
/// run is positions `offsets[i] .. offsets[i + 1]` of the three
/// parallel arrays.
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<u32>,
    pub(crate) edge_ids: Vec<EdgeId>,
    pub(crate) labels: Vec<Option<Symbol>>,
}

impl Csr {
    fn with_nodes(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        Self {
            offsets,
            targets: Vec::new(),
            edge_ids: Vec::new(),
            labels: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn range(&self, dense: u32) -> std::ops::Range<usize> {
        self.offsets[dense as usize] as usize..self.offsets[dense as usize + 1] as usize
    }

    #[inline]
    pub(crate) fn degree(&self, dense: u32) -> usize {
        (self.offsets[dense as usize + 1] - self.offsets[dense as usize]) as usize
    }
}

/// An immutable point-in-time CSR snapshot of a graph view. See the
/// module docs for layout and equivalence guarantees.
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    directed: bool,
    edge_count: usize,
    /// Dense position → original node id, in source visit order.
    nodes: Vec<NodeId>,
    /// Original node id → dense position.
    index: FxHashMap<u64, u32>,
    pub(crate) fwd: Csr,
    pub(crate) rev: Csr,
    /// Global permutation of forward-run positions: node `i`'s slice
    /// `run_order[fwd.range(i)]` lists its forward positions stably
    /// sorted by label, forming one contiguous run per distinct label.
    run_order: Vec<u32>,
    interner: Interner,
    node_labels: Vec<Option<Symbol>>,
    node_props: Vec<Vec<(String, Value)>>,
    edge_props: FxHashMap<u64, Vec<(String, Value)>>,
    /// Node label → dense positions carrying it, ascending.
    label_index: FxHashMap<Symbol, Vec<u32>>,
    /// Edge property key → `(value, from_dense, to_dense)` triples
    /// sorted by [`Value::total_cmp`] — the ordered edge-attribute
    /// index behind [`AttributedView::edge_range_candidates`]. Built
    /// by [`FrozenGraph::freeze_attributed`] from the forward CSR, so
    /// undirected snapshots carry both orientations of each edge.
    edge_ranges: FxHashMap<String, Vec<(Value, u32, u32)>>,
}

impl FrozenGraph {
    /// Freezes the structure (nodes, edges, edge labels) of `g`. Node
    /// labels and properties are not captured — use
    /// [`FrozenGraph::freeze_attributed`] when the source has them.
    pub fn freeze<G: GraphView + ?Sized>(g: &G) -> Self {
        Self::build(g)
    }

    /// Freezes structure plus node labels and node/edge properties.
    /// Property capture relies on the source implementing the
    /// [`AttributedView::visit_node_properties`] /
    /// [`AttributedView::visit_edge_properties`] enumeration hooks;
    /// sources keeping the default (non-enumerable) hooks freeze with
    /// labels but without property values.
    pub fn freeze_attributed<G: AttributedView + ?Sized>(g: &G) -> Self {
        let mut fz = Self::build(g);
        let mut cache: FxHashMap<u32, Option<Symbol>> = FxHashMap::default();
        for (dense, &n) in fz.nodes.iter().enumerate() {
            let label = g.node_label(n).and_then(|sym| {
                *cache
                    .entry(sym.raw())
                    .or_insert_with(|| g.label_text(sym).map(|t| fz.interner.intern(t)))
            });
            fz.node_labels[dense] = label;
            if let Some(sym) = label {
                fz.label_index.entry(sym).or_default().push(dense as u32);
            }
            let props = &mut fz.node_props[dense];
            g.visit_node_properties(n, &mut |k, v| props.push((k.to_owned(), v.clone())));
        }
        for &id in fz.fwd.edge_ids.iter().chain(fz.rev.edge_ids.iter()) {
            fz.edge_props.entry(id.raw()).or_insert_with(|| {
                let mut props = Vec::new();
                g.visit_edge_properties(id, &mut |k, v| props.push((k.to_owned(), v.clone())));
                props
            });
        }
        fz.edge_props.retain(|_, v| !v.is_empty());
        // Ordered edge-attribute index: one sorted run per key over
        // the forward CSR (so endpoint pairs come out in from-dense
        // order before sorting by value).
        for dense in 0..fz.nodes.len() as u32 {
            for i in fz.fwd.range(dense) {
                let Some(props) = fz.edge_props.get(&fz.fwd.edge_ids[i].raw()) else {
                    continue;
                };
                for (k, v) in props {
                    fz.edge_ranges.entry(k.clone()).or_default().push((
                        v.clone(),
                        dense,
                        fz.fwd.targets[i],
                    ));
                }
            }
        }
        for run in fz.edge_ranges.values_mut() {
            run.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        fz
    }

    fn build<G: GraphView + ?Sized>(g: &G) -> Self {
        let mut nodes = Vec::with_capacity(g.node_count());
        g.visit_nodes(&mut |n| nodes.push(n));
        let mut index = FxHashMap::default();
        index.reserve(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let dense = u32::try_from(i).expect("frozen graph limited to u32 nodes");
            index.insert(n.raw(), dense);
        }

        let mut interner = Interner::new();
        // Source symbol → re-interned symbol, so each label resolves once.
        let mut relabel: FxHashMap<u32, Option<Symbol>> = FxHashMap::default();
        let mut fwd = Csr::with_nodes(nodes.len());
        let mut rev = Csr::with_nodes(nodes.len());
        for &n in &nodes {
            for (csr, incoming) in [(&mut fwd, false), (&mut rev, true)] {
                let mut record = |e: EdgeRef| {
                    let dense = *index
                        .get(&e.to.raw())
                        .expect("edge endpoint not yielded by visit_nodes");
                    csr.targets.push(dense);
                    csr.edge_ids.push(e.id);
                    let label = e.label.and_then(|sym| {
                        *relabel
                            .entry(sym.raw())
                            .or_insert_with(|| g.label_text(sym).map(|t| interner.intern(t)))
                    });
                    csr.labels.push(label);
                };
                if incoming {
                    g.visit_in_edges(n, &mut record);
                } else {
                    g.visit_out_edges(n, &mut record);
                }
                let len = u32::try_from(csr.targets.len()).expect("frozen graph u32 edge limit");
                csr.offsets.push(len);
            }
        }

        // Label-partitioned forward runs: per node, positions stably
        // sorted by label so equal labels are contiguous.
        let mut run_order: Vec<u32> = (0..fwd.targets.len() as u32).collect();
        for i in 0..nodes.len() {
            let range = fwd.range(i as u32);
            run_order[range].sort_by_key(|&pos| fwd.labels[pos as usize].map(Symbol::raw));
        }

        let n = nodes.len();
        Self {
            directed: g.is_directed(),
            edge_count: g.edge_count(),
            nodes,
            index,
            fwd,
            rev,
            run_order,
            interner,
            node_labels: vec![None; n],
            node_props: vec![Vec::new(); n],
            edge_props: FxHashMap::default(),
            label_index: FxHashMap::default(),
            edge_ranges: FxHashMap::default(),
        }
    }

    // ---- dense accessors (the parallel executor's fast path) --------

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Original id of the node at dense position `dense`.
    #[inline]
    pub fn node_at(&self, dense: u32) -> NodeId {
        self.nodes[dense as usize]
    }

    /// Dense position of original node `n`, if it was frozen.
    #[inline]
    pub fn dense_of(&self, n: NodeId) -> Option<u32> {
        self.index.get(&n.raw()).copied()
    }

    /// Forward-neighbor dense positions of `dense` (with duplicates
    /// from parallel edges, exactly as the source visited them).
    #[inline]
    pub fn out_targets(&self, dense: u32) -> &[u32] {
        &self.fwd.targets[self.fwd.range(dense)]
    }

    /// Reverse-neighbor dense positions of `dense`.
    #[inline]
    pub fn in_targets(&self, dense: u32) -> &[u32] {
        &self.rev.targets[self.rev.range(dense)]
    }

    /// Cached out-degree (forward run length).
    #[inline]
    pub fn out_degree_dense(&self, dense: u32) -> usize {
        self.fwd.degree(dense)
    }

    /// Cached in-degree (reverse run length).
    #[inline]
    pub fn in_degree_dense(&self, dense: u32) -> usize {
        self.rev.degree(dense)
    }

    /// Cached total degree, with the same convention as
    /// [`GraphView::degree`]: in + out when directed, incident count
    /// when undirected.
    #[inline]
    pub fn degree_dense(&self, dense: u32) -> usize {
        if self.directed {
            self.fwd.degree(dense) + self.rev.degree(dense)
        } else {
            self.fwd.degree(dense)
        }
    }

    /// Unweighted BFS distance over the dense forward arrays — the
    /// sequential CSR fast path for [`crate::distance`], with which it
    /// agrees exactly (BFS follows out-edges, which for an undirected
    /// snapshot already hold both incidences).
    pub fn frozen_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let (src, dst) = (self.dense_of(a)?, self.dense_of(b)?);
        if src == dst {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let next = dist[u as usize] + 1;
            for &v in self.out_targets(u) {
                if dist[v as usize] == u32::MAX {
                    if v == dst {
                        return Some(next as usize);
                    }
                    dist[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// The snapshot's symbol for label text, if any frozen edge or
    /// node carries it.
    pub fn label_symbol(&self, text: &str) -> Option<Symbol> {
        self.interner.get(text)
    }

    /// Dense positions of the nodes labelled `sym`, ascending. Empty
    /// for labels no node carries.
    pub fn nodes_with_label(&self, sym: Symbol) -> &[u32] {
        self.label_index.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// Calls `f` once per label-partitioned forward run of `dense`:
    /// the run's label and the forward-array positions carrying it.
    pub(crate) fn for_each_label_run(&self, dense: u32, mut f: impl FnMut(Option<Symbol>, &[u32])) {
        let slice = &self.run_order[self.fwd.range(dense)];
        let mut start = 0;
        while start < slice.len() {
            let label = self.fwd.labels[slice[start] as usize];
            let mut end = start + 1;
            while end < slice.len() && self.fwd.labels[slice[end] as usize] == label {
                end += 1;
            }
            f(label, &slice[start..end]);
            start = end;
        }
    }

    #[inline]
    pub(crate) fn target_of_pos(&self, pos: u32) -> u32 {
        self.fwd.targets[pos as usize]
    }

    // ---- columnar accessors (the vectorized executor's fast path) ---

    /// Interned label of the node at dense position `dense`.
    #[inline]
    pub(crate) fn node_label_dense(&self, dense: u32) -> Option<Symbol> {
        self.node_labels[dense as usize]
    }

    /// Property list of the node at dense position `dense`.
    #[inline]
    pub(crate) fn node_props_dense(&self, dense: u32) -> &[(String, Value)] {
        &self.node_props[dense as usize]
    }

    /// Property list of edge `id` (raw), if the edge carries any.
    #[inline]
    pub(crate) fn edge_props_raw(&self, id: u64) -> Option<&[(String, Value)]> {
        self.edge_props.get(&id).map(Vec::as_slice)
    }
}

impl GraphView for FrozenGraph {
    fn is_directed(&self) -> bool {
        self.directed
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.index.contains_key(&n.raw())
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        for &n in &self.nodes {
            f(n);
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(dense) = self.dense_of(n) else {
            return;
        };
        for i in self.fwd.range(dense) {
            f(EdgeRef {
                id: self.fwd.edge_ids[i],
                from: n,
                to: self.nodes[self.fwd.targets[i] as usize],
                label: self.fwd.labels[i],
            });
        }
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(dense) = self.dense_of(n) else {
            return;
        };
        for i in self.rev.range(dense) {
            f(EdgeRef {
                id: self.rev.edge_ids[i],
                from: n,
                to: self.nodes[self.rev.targets[i] as usize],
                label: self.rev.labels[i],
            });
        }
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.interner.resolve(sym)
    }

    // O(1) degree overrides reading the cached offset arrays.

    fn out_degree(&self, n: NodeId) -> usize {
        self.dense_of(n).map_or(0, |d| self.fwd.degree(d))
    }

    fn in_degree(&self, n: NodeId) -> usize {
        self.dense_of(n).map_or(0, |d| self.rev.degree(d))
    }

    fn degree(&self, n: NodeId) -> usize {
        self.dense_of(n).map_or(0, |d| self.degree_dense(d))
    }
}

impl AttributedView for FrozenGraph {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        self.node_labels[self.dense_of(n)? as usize]
    }

    fn node_property(&self, n: NodeId, key: &str) -> Option<Value> {
        let dense = self.dense_of(n)?;
        self.node_props[dense as usize]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn edge_property(&self, e: EdgeId, key: &str) -> Option<Value> {
        self.edge_props
            .get(&e.raw())?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(dense) = self.dense_of(n) {
            for (k, v) in &self.node_props[dense as usize] {
                f(k, v);
            }
        }
    }

    fn visit_edge_properties(&self, e: EdgeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(props) = self.edge_props.get(&e.raw()) {
            for (k, v) in props {
                f(k, v);
            }
        }
    }

    /// Seeds from the frozen label index when a label constraint is
    /// present (property constraints post-filtered over that run);
    /// label-less requests scan, same as the default.
    fn candidates(&self, label: Option<&str>, props: &[(String, Value)]) -> Vec<NodeId> {
        let pool: Vec<NodeId> = match label {
            Some(want) => match self.label_symbol(want) {
                None => return Vec::new(),
                Some(sym) => self
                    .nodes_with_label(sym)
                    .iter()
                    .map(|&d| self.nodes[d as usize])
                    .collect(),
            },
            None => self.nodes.clone(),
        };
        pool.into_iter()
            .filter(|&n| {
                props.iter().all(|(key, want)| {
                    self.node_property(n, key)
                        .is_some_and(|got| got.loose_eq(want))
                })
            })
            .collect()
    }

    /// The label run length bounds the candidate count; the snapshot
    /// carries no property value index, so label-less constraints
    /// still require a scan.
    fn candidate_estimate(&self, label: Option<&str>, props: &[(String, Value)]) -> Option<usize> {
        let _ = props;
        label.map(|want| {
            self.label_symbol(want)
                .map_or(0, |sym| self.nodes_with_label(sym).len())
        })
    }

    /// Binary search over the freeze-time ordered edge-attribute runs.
    /// Bounds are [`Value::total_cmp`]-inclusive, which unifies the
    /// number family exactly like the live `BTreeIndex` encoding does.
    fn edge_range_candidates(
        &self,
        key: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<(NodeId, NodeId)>> {
        let run = self.edge_ranges.get(key)?;
        let start = match low {
            Some(lo) => {
                run.partition_point(|(v, _, _)| v.total_cmp(lo) == std::cmp::Ordering::Less)
            }
            None => 0,
        };
        let end = match high {
            Some(hi) => {
                run.partition_point(|(v, _, _)| v.total_cmp(hi) != std::cmp::Ordering::Greater)
            }
            None => run.len(),
        };
        Some(
            run[start..end.max(start)]
                .iter()
                .map(|&(_, f, t)| (self.nodes[f as usize], self.nodes[t as usize]))
                .collect(),
        )
    }

    /// The CSR snapshot is the columnar backend the vectorized
    /// pipeline runs on.
    fn batch_backend(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl WeightedView for FrozenGraph {
    /// Same convention as `PropertyGraph`: the `"weight"` property
    /// when numeric, else 1.0.
    fn edge_weight(&self, e: &EdgeRef) -> f64 {
        self.edge_property(e.id, "weight")
            .and_then(|v| v.as_f64())
            .unwrap_or(1.0)
    }
}

/// Walk-semantics regular path query over the frozen label runs:
/// result-equivalent to [`crate::regular_path_exists`], but steps the
/// NFA once per *distinct label* of a node (memoized per state) rather
/// than once per edge.
pub fn frozen_regular_path_exists(
    fz: &FrozenGraph,
    a: NodeId,
    b: NodeId,
    regex: &LabelRegex,
) -> bool {
    let (Some(da), Some(db)) = (fz.dense_of(a), fz.dense_of(b)) else {
        return false;
    };
    let start = regex.start_set();
    if da == db && regex.accepts_set(&start) {
        return true;
    }
    let mut seen: FxHashSet<(u32, usize)> = FxHashSet::default();
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    for &s in &start {
        if seen.insert((da, s)) {
            queue.push_back((da, s));
        }
    }
    // (state, label) → closed successor set; shared across every node
    // because stepping depends only on the pair.
    let mut memo: FxHashMap<(usize, Option<Symbol>), FxHashSet<usize>> = FxHashMap::default();
    while let Some((node, state)) = queue.pop_front() {
        fz.for_each_label_run(node, |label, positions| {
            let next = memo.entry((state, label)).or_insert_with(|| {
                let mut from = FxHashSet::default();
                from.insert(state);
                regex.eps_closure(&mut from);
                regex.step(&from, label.and_then(|sym| fz.label_text(sym)))
            });
            if next.is_empty() {
                return;
            }
            let accepts = regex.accepts_set(next);
            for &pos in positions {
                let to = fz.target_of_pos(pos);
                if to == db && accepts {
                    // Can't early-return out of the closure; flag via
                    // sentinel pair that short-circuits below.
                    seen.insert((u32::MAX, usize::MAX));
                    return;
                }
                for &ns in next.iter() {
                    if seen.insert((to, ns)) {
                        queue.push_back((to, ns));
                    }
                }
            }
        });
        if seen.contains(&(u32::MAX, usize::MAX)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular_path_exists;
    use gdm_core::props;
    use gdm_graphs::{PropertyGraph, SimpleGraph};

    fn labeled_chain() -> (SimpleGraph, Vec<NodeId>) {
        // 0 -a-> 1 -a-> 2 -b-> 3, shortcut 0 -b-> 3, cycle 1 -a-> 0.
        let mut g = SimpleGraph::directed();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        g.add_labeled_edge(n[0], n[1], "a").unwrap();
        g.add_labeled_edge(n[1], n[2], "a").unwrap();
        g.add_labeled_edge(n[2], n[3], "b").unwrap();
        g.add_labeled_edge(n[0], n[3], "b").unwrap();
        g.add_labeled_edge(n[1], n[0], "a").unwrap();
        (g, n)
    }

    #[test]
    fn freeze_preserves_counts_and_degrees() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        assert_eq!(fz.node_count(), g.node_count());
        assert_eq!(fz.edge_count(), g.edge_count());
        for &node in &n {
            assert_eq!(fz.out_degree(node), g.out_degree(node));
            assert_eq!(fz.in_degree(node), g.in_degree(node));
            assert_eq!(fz.degree(node), g.degree(node));
        }
    }

    #[test]
    fn freeze_replays_visit_order_and_labels() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        for &node in &n {
            let live: Vec<(u64, u64, Option<String>)> = g
                .out_edges(node)
                .into_iter()
                .map(|e| {
                    (
                        e.id.raw(),
                        e.to.raw(),
                        e.label.and_then(|s| g.label_text(s)).map(str::to_owned),
                    )
                })
                .collect();
            let frozen: Vec<(u64, u64, Option<String>)> = fz
                .out_edges(node)
                .into_iter()
                .map(|e| {
                    (
                        e.id.raw(),
                        e.to.raw(),
                        e.label.and_then(|s| fz.label_text(s)).map(str::to_owned),
                    )
                })
                .collect();
            assert_eq!(live, frozen);
        }
    }

    #[test]
    fn label_runs_partition_the_forward_run() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        let d0 = fz.dense_of(n[0]).unwrap();
        let mut runs = Vec::new();
        fz.for_each_label_run(d0, |label, positions| {
            let text = label.and_then(|s| fz.label_text(s)).map(str::to_owned);
            runs.push((text, positions.len()));
        });
        // Node 0 has one "a" edge and one "b" edge: two runs of one.
        assert_eq!(runs.len(), 2);
        assert_eq!(fz.out_degree_dense(d0), 2);
    }

    #[test]
    fn frozen_regular_paths_agree_with_live() {
        let (g, n) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        for expr in ["a a b", "a b", "a* b", "a a a a b", "b", "(a|b)+", "a*"] {
            let r = LabelRegex::compile(expr).unwrap();
            for &from in &n {
                for &to in &n {
                    assert_eq!(
                        regular_path_exists(&g, from, to, &r),
                        frozen_regular_path_exists(&fz, from, to, &r),
                        "expr {expr:?} {from} -> {to}"
                    );
                }
            }
        }
    }

    #[test]
    fn freeze_attributed_captures_labels_and_props() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("person", props! { "age" => 30 });
        let b = g.add_node("person", props! { "age" => 40 });
        let e = g
            .add_edge(a, b, "knows", props! { "since" => 1999 })
            .unwrap();
        let fz = FrozenGraph::freeze_attributed(&g);
        assert_eq!(
            fz.node_label(a).and_then(|s| fz.label_text(s)),
            Some("person")
        );
        assert_eq!(fz.node_property(b, "age"), Some(Value::from(40)));
        assert_eq!(fz.edge_property(e, "since"), Some(Value::from(1999)));
        let sym = fz.label_symbol("person").unwrap();
        assert_eq!(fz.nodes_with_label(sym).len(), 2);
    }

    #[test]
    fn unknown_nodes_are_absent() {
        let (g, _) = labeled_chain();
        let fz = FrozenGraph::freeze(&g);
        let ghost = NodeId(99);
        assert!(!fz.contains_node(ghost));
        assert_eq!(fz.degree(ghost), 0);
        assert!(fz.out_edges(ghost).is_empty());
    }

    #[test]
    fn undirected_snapshot_keeps_incidence() {
        let mut g = SimpleGraph::undirected();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, a).unwrap(); // self-loop, stored once
        let fz = FrozenGraph::freeze(&g);
        assert!(!fz.is_directed());
        assert_eq!(fz.degree(a), g.degree(a));
        assert_eq!(fz.degree(b), g.degree(b));
    }
}
