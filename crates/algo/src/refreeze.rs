//! Incremental re-freezing: patch a [`FrozenGraph`] in O(changes).
//!
//! A full [`FrozenGraph::freeze`] re-reads every node and edge of the
//! source — string property capture, label re-interning, index sorts,
//! the lot. When an engine has tracked *which* ids changed since the
//! previous snapshot (a [`FreezeDelta`] from
//! [`gdm_core::DeltaTracker`]), [`incremental_refreeze`] produces an
//! equivalent new snapshot while touching only the changed
//! neighbourhood:
//!
//! * **Dirty rows are re-read** from the source view (new/modified
//!   nodes, both endpoints of created edges, neighbours of removed
//!   nodes, rows containing deleted or re-propertied edges).
//! * **Clean slabs are shared**: a CSR slab none of whose rows moved,
//!   re-read, or reference a relocated dense id is carried over by
//!   `Arc` clone — no copy, no re-sort.
//! * **Heavy payloads are shared**: per-node and per-edge property
//!   lists are `Arc`-cloned from the previous snapshot; only re-read
//!   rows pay property capture again, and an unchanged edge riding in
//!   a re-read row keeps its shared property list (engines report edge
//!   deletion and re-propertying explicitly, so ride-alongs are known
//!   clean). The ordered edge-attribute index is patched — retire the
//!   rows of deleted/re-propertied edges, sort just the freshly
//!   captured rows, and merge them in place from the tail — rather
//!   than rebuilt or re-sorted.
//! * **Integer metadata is rebuilt** (`nodes`, id index, label index):
//!   these are O(V) `memcpy`-class passes with no string or hash work
//!   per element, which keeps the implementation honest without
//!   threatening the O(changes) bound on the expensive parts.
//!
//! Deletions use *swap-remove* on the dense node order: the last node
//! takes the freed position, and every run mentioning a relocated
//! dense id is either copied-with-remap or re-read. The result is
//! therefore **content-equivalent** to a full freeze — same nodes,
//! edges, labels, properties, and query answers — but generally with a
//! different dense ordering, which nothing outside the snapshot
//! observes (`tests/refreeze_equiv.rs` proves the equivalence by
//! property testing over random mutation batches).
//!
//! The function falls back to a full freeze whenever the delta is
//! unusable: `delta.full` (untracked mutation), a base-epoch mismatch
//! (the delta describes a different baseline), or an inconsistency
//! discovered mid-patch (an edge endpoint the delta never mentioned).
//! Falling back is always correct; the delta only ever buys speed.

use crate::frozen::{empty_props, next_epoch, Csr, CsrSlab, FrozenGraph, RangeRow, SLAB_NODES};
use gdm_core::{
    AttributedView, FreezeDelta, FxHashMap, FxHashSet, GraphView, Interner, NodeId, Symbol, Value,
};
use std::sync::Arc;

/// Sentinel in the `orig` relocation vector: this dense row is new in
/// this snapshot (no previous row to copy from).
const NEW_ROW: u32 = u32::MAX;

/// The settled node relocation and row classification an incremental
/// re-freeze works from.
struct RebuildPlan {
    /// New dense position → node id.
    nodes: Vec<NodeId>,
    /// Node raw id → new dense position.
    index: FxHashMap<u64, u32>,
    /// New dense position → previous dense position ([`NEW_ROW`] for
    /// nodes created since the base snapshot).
    orig: Vec<u32>,
    /// Previous dense position → new dense position, for relocated
    /// survivors only (identity entries are omitted).
    moves: FxHashMap<u32, u32>,
    /// New dense rows whose adjacency must be re-read from the source.
    reread: Vec<bool>,
    /// New dense rows whose *forward* run references a relocated dense
    /// id (copy-with-remap; the slab cannot be shared).
    retarget_fwd: Vec<bool>,
    /// Same for the reverse run.
    retarget_rev: Vec<bool>,
    /// Raw edge ids whose previous index/property entries are stale:
    /// deleted edges, re-propertied edges, and the edges of removed
    /// rows. Edges riding along in a re-read row are *not* stale —
    /// their content is unchanged (engines report edge mutations
    /// explicitly), so their property Arcs and index rows survive.
    stale_edges: FxHashSet<u64>,
    /// Node+edge visit units spent planning and patching.
    work: u64,
}

/// Translates a previous dense id to its current position, if the node
/// survived at that identity.
fn relocated(plan_orig: &[u32], moves: &FxHashMap<u32, u32>, prev_dense: u32) -> Option<u32> {
    let cur = moves.get(&prev_dense).copied().unwrap_or(prev_dense);
    ((cur as usize) < plan_orig.len() && plan_orig[cur as usize] == prev_dense).then_some(cur)
}

/// Builds the relocation plan, or `None` when the delta turns out to
/// be inconsistent with the source (fall back to a full freeze).
fn plan_rebuild<G: GraphView + ?Sized>(
    g: &G,
    prev: &FrozenGraph,
    delta: &FreezeDelta,
) -> Option<RebuildPlan> {
    let mut nodes = prev.nodes.clone();
    let mut index = prev.index.clone();
    let mut orig: Vec<u32> = (0..nodes.len() as u32).collect();
    let mut stale_edges: FxHashSet<u64> = FxHashSet::default();
    // Previous dense ids whose rows must be re-read because a removed
    // node's edges ran through them; translated to new positions once
    // the node set settles.
    let mut reread_prev: FxHashSet<u32> = FxHashSet::default();
    let mut work = delta.change_count() as u64;

    for &raw in &delta.removed_nodes {
        let Some(d) = index.remove(&raw) else {
            continue; // created and deleted within the batch
        };
        let prev_d = orig[d as usize];
        // Every neighbour's run mentions the removed node: re-read.
        for &t in prev.fwd.targets(prev_d) {
            reread_prev.insert(t);
        }
        for &t in prev.rev.targets(prev_d) {
            reread_prev.insert(t);
        }
        for id in prev
            .fwd
            .run(prev_d)
            .edge_ids
            .iter()
            .chain(prev.rev.run(prev_d).edge_ids.iter())
        {
            stale_edges.insert(id.raw());
        }
        work += 1 + (prev.fwd.degree(prev_d) + prev.rev.degree(prev_d)) as u64;
        nodes.swap_remove(d as usize);
        orig.swap_remove(d as usize);
        if (d as usize) < nodes.len() {
            index.insert(nodes[d as usize].raw(), d);
        }
    }

    for &raw in &delta.dirty_nodes {
        if index.contains_key(&raw) {
            if !g.contains_node(NodeId(raw)) {
                // A deletion the tracker never saw: the delta is not
                // trustworthy.
                return None;
            }
            continue;
        }
        if !g.contains_node(NodeId(raw)) {
            continue; // created and deleted, deletion folded away
        }
        let d = u32::try_from(nodes.len()).ok()?;
        if d == NEW_ROW {
            return None; // u32::MAX rows: out of dense-id space
        }
        nodes.push(NodeId(raw));
        orig.push(NEW_ROW);
        index.insert(raw, d);
    }

    let n_new = nodes.len();
    let mut moves: FxHashMap<u32, u32> = FxHashMap::default();
    for (i, &o) in orig.iter().enumerate() {
        if o != NEW_ROW && o != i as u32 {
            moves.insert(o, i as u32);
        }
    }

    let mut reread = vec![false; n_new];
    for (i, &o) in orig.iter().enumerate() {
        if o == NEW_ROW {
            reread[i] = true;
        }
    }
    for &raw in &delta.dirty_nodes {
        if let Some(&d) = index.get(&raw) {
            reread[d as usize] = true;
        }
    }
    for &p in &reread_prev {
        if let Some(cur) = relocated(&orig, &moves, p) {
            reread[cur as usize] = true;
        }
    }

    // Rows containing structurally deleted or re-propertied edges:
    // one integer scan over the previous slabs, only when needed.
    if !delta.dirty_edges.is_empty() || !delta.dirty_edge_props.is_empty() {
        let hot = |id: u64| delta.dirty_edges.contains(&id) || delta.dirty_edge_props.contains(&id);
        for dir in [&prev.fwd, &prev.rev] {
            for (si, slab) in dir.slabs.iter().enumerate() {
                for row in 0..slab.rows() {
                    let range = slab.local_range(row);
                    if slab.edge_ids[range].iter().any(|id| hot(id.raw())) {
                        let p = (si * SLAB_NODES as usize + row) as u32;
                        if let Some(cur) = relocated(&orig, &moves, p) {
                            reread[cur as usize] = true;
                        }
                    }
                }
            }
        }
        stale_edges.extend(delta.dirty_edges.iter().copied());
        stale_edges.extend(delta.dirty_edge_props.iter().copied());
        work += ((prev.fwd.edge_slots() + prev.rev.edge_slots()) / 64) as u64;
    }

    // Neighbours of relocated survivors: their runs need target remaps
    // (per direction), so their slabs cannot be shared.
    let mut retarget_fwd = vec![false; n_new];
    let mut retarget_rev = vec![false; n_new];
    for &p in moves.keys() {
        for &q in prev.rev.targets(p) {
            if let Some(cur) = relocated(&orig, &moves, q) {
                retarget_fwd[cur as usize] = true;
            }
        }
        for &q in prev.fwd.targets(p) {
            if let Some(cur) = relocated(&orig, &moves, q) {
                retarget_rev[cur as usize] = true;
            }
        }
    }

    Some(RebuildPlan {
        nodes,
        index,
        orig,
        moves,
        reread,
        retarget_fwd,
        retarget_rev,
        stale_edges,
        work,
    })
}

/// Rebuilds one CSR direction against the plan: shared slabs are `Arc`
/// clones of the previous snapshot's, dirty rows are re-dispatched to
/// the source, everything else is copied with dense-id remapping.
/// Returns `None` when the source yields an edge endpoint the plan
/// does not know (inconsistent delta → full freeze).
#[allow(clippy::too_many_arguments)]
fn build_dir<G: GraphView + ?Sized>(
    g: &G,
    prev_dir: &Csr,
    plan: &RebuildPlan,
    retarget: &[bool],
    incoming: bool,
    interner: &mut Interner,
    relabel: &mut FxHashMap<u32, Option<Symbol>>,
    work: &mut u64,
) -> Option<Csr> {
    let n_new = plan.nodes.len();
    let prev_n = prev_dir.n;
    let mut slabs = Vec::with_capacity(n_new.div_ceil(SLAB_NODES as usize));
    let mut lo = 0usize;
    while lo < n_new {
        let hi = (lo + SLAB_NODES as usize).min(n_new);
        let slab_idx = lo / SLAB_NODES as usize;
        let prev_hi = (lo + SLAB_NODES as usize).min(prev_n);
        let shareable = slab_idx < prev_dir.slabs.len()
            && prev_hi == hi
            && (lo..hi).all(|r| plan.orig[r] == r as u32 && !plan.reread[r] && !retarget[r]);
        if shareable {
            slabs.push(Arc::clone(&prev_dir.slabs[slab_idx]));
            lo = hi;
            continue;
        }
        let mut slab = CsrSlab {
            offsets: vec![0],
            ..CsrSlab::default()
        };
        let mut bad = false;
        for r in lo..hi {
            let row_start = slab.targets.len();
            if plan.reread[r] {
                let mut record = |e: gdm_core::EdgeRef| {
                    let Some(&dense) = plan.index.get(&e.to.raw()) else {
                        bad = true;
                        return;
                    };
                    slab.targets.push(dense);
                    slab.edge_ids.push(e.id);
                    let label = e.label.and_then(|sym| {
                        *relabel
                            .entry(sym.raw())
                            .or_insert_with(|| g.label_text(sym).map(|t| interner.intern(t)))
                    });
                    slab.labels.push(label);
                };
                if incoming {
                    g.visit_in_edges(plan.nodes[r], &mut record);
                } else {
                    g.visit_out_edges(plan.nodes[r], &mut record);
                }
                if bad {
                    return None;
                }
                *work += 1 + (slab.targets.len() - row_start) as u64;
            } else {
                let run = prev_dir.run(plan.orig[r]);
                for i in 0..run.targets.len() {
                    let t = run.targets[i];
                    slab.targets.push(plan.moves.get(&t).copied().unwrap_or(t));
                    slab.edge_ids.push(run.edge_ids[i]);
                    slab.labels.push(run.labels[i]);
                }
            }
            let len = u32::try_from(slab.targets.len()).expect("frozen graph u32 edge limit");
            slab.offsets.push(len);
        }
        slab.sort_runs();
        slabs.push(Arc::new(slab));
        lo = hi;
    }
    Some(Csr { n: n_new, slabs })
}

/// The structural core shared by both re-freeze entry points: node
/// relocation, both CSR directions, and the epoch stamp. Attribute
/// columns start empty (structural-freeze shape) for the caller to
/// fill in.
fn refreeze_structural_core<G: GraphView + ?Sized>(
    g: &G,
    prev: &FrozenGraph,
    delta: &FreezeDelta,
) -> Option<(FrozenGraph, RebuildPlan)> {
    if delta.full || delta.base_epoch != prev.epoch {
        return None;
    }
    let mut plan = plan_rebuild(g, prev, delta)?;
    let mut interner = prev.interner.clone();
    let mut relabel: FxHashMap<u32, Option<Symbol>> = FxHashMap::default();
    let mut work = plan.work;
    let fwd = build_dir(
        g,
        &prev.fwd,
        &plan,
        &plan.retarget_fwd,
        false,
        &mut interner,
        &mut relabel,
        &mut work,
    )?;
    let rev = build_dir(
        g,
        &prev.rev,
        &plan,
        &plan.retarget_rev,
        true,
        &mut interner,
        &mut relabel,
        &mut work,
    )?;
    plan.work = work;
    let n_new = plan.nodes.len();
    let fz = FrozenGraph {
        directed: g.is_directed(),
        edge_count: g.edge_count(),
        epoch: next_epoch(),
        freeze_work: work.max(1),
        nodes: plan.nodes.clone(),
        index: plan.index.clone(),
        fwd,
        rev,
        interner,
        node_labels: vec![None; n_new],
        node_props: vec![empty_props(); n_new],
        edge_props: Arc::new(FxHashMap::default()),
        label_index: FxHashMap::default(),
        edge_ranges: FxHashMap::default(),
    };
    Some((fz, plan))
}

/// Incremental counterpart of [`FrozenGraph::freeze`]: produces a
/// snapshot content-equivalent to `FrozenGraph::freeze(g)` by patching
/// `prev` with the changes `delta` records. Falls back to a full
/// freeze whenever the delta cannot be applied (see module docs).
pub fn incremental_refreeze_structural<G: GraphView + ?Sized>(
    g: &G,
    prev: &FrozenGraph,
    delta: &FreezeDelta,
) -> FrozenGraph {
    if delta.is_empty() && delta.base_epoch == prev.epoch {
        let mut fz = prev.clone();
        fz.freeze_work = 1;
        return fz;
    }
    match refreeze_structural_core(g, prev, delta) {
        Some((fz, _)) => fz,
        None => FrozenGraph::freeze(g),
    }
}

/// Incremental counterpart of [`FrozenGraph::freeze_attributed`]:
/// structural patch plus node label/property columns, the node label
/// index, `Arc`-shared edge properties, and a patched (not rebuilt)
/// ordered edge-attribute index. Content-equivalent to
/// `FrozenGraph::freeze_attributed(g)`; falls back to a full freeze
/// whenever the delta cannot be applied.
pub fn incremental_refreeze<G: AttributedView + ?Sized>(
    g: &G,
    prev: &FrozenGraph,
    delta: &FreezeDelta,
) -> FrozenGraph {
    if delta.is_empty() && delta.base_epoch == prev.epoch {
        let mut fz = prev.clone();
        fz.freeze_work = 1;
        return fz;
    }
    let Some((mut fz, plan)) = refreeze_structural_core(g, prev, delta) else {
        return FrozenGraph::freeze_attributed(g);
    };
    let mut work = fz.freeze_work;

    // Node labels and properties: copy (Arc clone) clean rows from the
    // previous snapshot, re-capture re-read rows from the source.
    let mut label_cache: FxHashMap<u32, Option<Symbol>> = FxHashMap::default();
    for i in 0..fz.nodes.len() {
        if plan.reread[i] {
            let n = fz.nodes[i];
            fz.node_labels[i] = g.node_label(n).and_then(|sym| {
                *label_cache
                    .entry(sym.raw())
                    .or_insert_with(|| g.label_text(sym).map(|t| fz.interner.intern(t)))
            });
            let mut props = Vec::new();
            g.visit_node_properties(n, &mut |k, v| props.push((k.to_owned(), v.clone())));
            work += 1 + props.len() as u64;
            if !props.is_empty() {
                fz.node_props[i] = Arc::new(props);
            }
        } else {
            let p = plan.orig[i] as usize;
            fz.node_labels[i] = prev.node_labels[p];
            fz.node_props[i] = Arc::clone(&prev.node_props[p]);
        }
    }
    for (i, label) in fz.node_labels.iter().enumerate() {
        if let Some(sym) = label {
            fz.label_index.entry(*sym).or_default().push(i as u32);
        }
    }

    // Edge properties: share the previous Arc per edge, retire stale
    // ids, re-capture the ids surfacing in re-read rows that the
    // previous snapshot does not cover (new edges, retired edges). An
    // unchanged edge riding along in a re-read row keeps its shared
    // Arc — its skip costs one hash probe, not a property visit.
    fz.edge_props = prev.edge_props.clone();
    if !plan.stale_edges.is_empty() {
        let ep = Arc::make_mut(&mut fz.edge_props);
        for raw in &plan.stale_edges {
            ep.remove(raw);
        }
    }
    let mut revisited: FxHashSet<u64> = FxHashSet::default();
    for (i, _) in plan.reread.iter().enumerate().filter(|(_, &r)| r) {
        for dir in [&fz.fwd, &fz.rev] {
            for &id in dir.run(i as u32).edge_ids {
                let raw = id.raw();
                if fz.edge_props.contains_key(&raw) || !revisited.insert(raw) {
                    continue;
                }
                let mut props = Vec::new();
                g.visit_edge_properties(id, &mut |k, v| props.push((k.to_owned(), v.clone())));
                work += 1 + props.len() as u64;
                if !props.is_empty() {
                    Arc::make_mut(&mut fz.edge_props).insert(raw, Arc::new(props));
                }
            }
        }
    }

    // Ordered edge-attribute index: clone, retire stale rows, remap
    // relocated endpoints, then collect the *freshly captured* edges'
    // occurrences per key (`revisited` — new edges plus retired ones
    // whose rows were just re-read; unchanged edges already have their
    // rows in the clone), sort only that appendix, and merge it into
    // the still-sorted survivors — a full re-sort of a touched key
    // would be O(E log E) for a single changed edge on a
    // fully-attributed graph, which is exactly the O(graph) cost this
    // path exists to avoid.
    fz.edge_ranges = prev.edge_ranges.clone();
    if !plan.stale_edges.is_empty() {
        for run in fz.edge_ranges.values_mut() {
            // Probe before make_mut: a run with no stale row keeps
            // sharing the previous snapshot's allocation.
            if run
                .iter()
                .any(|&(_, _, _, raw)| plan.stale_edges.contains(&raw))
            {
                Arc::make_mut(run).retain(|&(_, _, _, raw)| !plan.stale_edges.contains(&raw));
            }
        }
    }
    if !plan.moves.is_empty() {
        for run in fz.edge_ranges.values_mut() {
            if run
                .iter()
                .any(|row| plan.moves.contains_key(&row.1) || plan.moves.contains_key(&row.2))
            {
                for row in Arc::make_mut(run).iter_mut() {
                    row.1 = plan.moves.get(&row.1).copied().unwrap_or(row.1);
                    row.2 = plan.moves.get(&row.2).copied().unwrap_or(row.2);
                }
            }
        }
    }
    let mut appendix: FxHashMap<String, Vec<RangeRow>> = FxHashMap::default();
    let push_row = |appendix: &mut FxHashMap<String, Vec<RangeRow>>,
                    props: &[(String, Value)],
                    from: u32,
                    to: u32,
                    raw: u64| {
        for (k, v) in props {
            appendix
                .entry(k.clone())
                .or_default()
                .push((v.clone(), from, to, raw));
        }
    };
    for (i, _) in plan.reread.iter().enumerate().filter(|(_, &r)| r) {
        let i = i as u32;
        // This row's own forward occurrences of captured edges.
        let run = fz.fwd.run(i);
        for pos in 0..run.targets.len() {
            let raw = run.edge_ids[pos].raw();
            if !revisited.contains(&raw) {
                continue; // unchanged edge: its row survived the clone
            }
            if let Some(props) = fz.edge_props.get(&raw).cloned() {
                push_row(&mut appendix, &props, i, run.targets[pos], raw);
            }
        }
        // Forward occurrences of captured edges whose *source* row is
        // clean, reconstructed from this row's reverse run (a new or
        // re-propertied edge may surface only on its target's side).
        // Re-read counterparts add their own forward occurrences
        // themselves — skip them to avoid double rows.
        let rrun = fz.rev.run(i);
        for pos in 0..rrun.targets.len() {
            let c = rrun.targets[pos];
            if plan.reread[c as usize] {
                continue;
            }
            let raw = rrun.edge_ids[pos].raw();
            if !revisited.contains(&raw) {
                continue;
            }
            if let Some(props) = fz.edge_props.get(&raw).cloned() {
                push_row(&mut appendix, &props, c, i, raw);
            }
        }
    }
    for (key, mut add) in appendix {
        add.sort_by(|a, b| a.0.total_cmp(&b.0));
        let slot = fz.edge_ranges.entry(key).or_default();
        if slot.is_empty() {
            *slot = Arc::new(add);
            continue;
        }
        let run = Arc::make_mut(slot);
        // Survivors kept their order through retain/remap, so a merge
        // restores the key's sorted run. Merge *backwards in place*:
        // append the sorted addendum, then sift from the tail. The
        // loop stops the moment every appendix row is placed — the
        // untouched survivor prefix is already in position — so the
        // cost is O(changes + displaced survivors), not O(run).
        let old_len = run.len();
        run.append(&mut add);
        let mut i = old_len; // one past the last unplaced survivor
        let mut j = run.len(); // one past the last unplaced addendum row
        let mut k = run.len(); // one past the next write slot
        while i > 0 && j > old_len {
            if run[i - 1].0.total_cmp(&run[j - 1].0).is_gt() {
                run.swap(k - 1, i - 1);
                i -= 1;
            } else {
                run.swap(k - 1, j - 1);
                j -= 1;
            }
            k -= 1;
        }
        while j > old_len {
            run.swap(k - 1, j - 1);
            j -= 1;
            k -= 1;
        }
    }
    fz.edge_ranges.retain(|_, run| !run.is_empty());

    fz.freeze_work = work.max(1);
    fz
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::{props, DeltaTracker, GraphView};
    use gdm_graphs::PropertyGraph;

    /// Content-canonical form of a snapshot: node rows, edge rows, and
    /// the ordered edge index, all independent of dense ordering.
    type Canon = (
        Vec<(u64, Option<String>, Vec<(String, Value)>)>,
        Vec<(u64, u64, u64, Option<String>, Vec<(String, Value)>)>,
        Vec<(String, u64, u64, u64, String)>,
    );

    fn canon(fz: &FrozenGraph) -> Canon {
        let mut nodes = Vec::new();
        fz.visit_nodes(&mut |n| {
            let label = fz
                .node_label(n)
                .and_then(|s| fz.label_text(s))
                .map(str::to_owned);
            let mut props = Vec::new();
            fz.visit_node_properties(n, &mut |k, v| props.push((k.to_owned(), v.clone())));
            props.sort_by(|a, b| a.0.cmp(&b.0));
            nodes.push((n.raw(), label, props));
        });
        nodes.sort_by_key(|r| r.0);
        let mut edges = Vec::new();
        fz.visit_nodes(&mut |n| {
            fz.visit_out_edges(n, &mut |e| {
                let label = e.label.and_then(|s| fz.label_text(s)).map(str::to_owned);
                let mut props = Vec::new();
                fz.visit_edge_properties(e.id, &mut |k, v| props.push((k.to_owned(), v.clone())));
                props.sort_by(|a, b| a.0.cmp(&b.0));
                edges.push((e.id.raw(), e.from.raw(), e.to.raw(), label, props));
            });
        });
        edges.sort_by_key(|r| (r.0, r.1, r.2));
        let mut ranges = Vec::new();
        for (key, run) in &fz.edge_ranges {
            for &(ref v, f, t, raw) in run.iter() {
                ranges.push((
                    key.clone(),
                    raw,
                    fz.nodes[f as usize].raw(),
                    fz.nodes[t as usize].raw(),
                    format!("{v:?}"),
                ));
            }
        }
        ranges.sort();
        (nodes, edges, ranges)
    }

    fn base_graph() -> (PropertyGraph, Vec<NodeId>) {
        let mut g = PropertyGraph::new();
        let n: Vec<NodeId> = (0..200)
            .map(|i| g.add_node("person", props! { "age" => i }))
            .collect();
        for i in 0..n.len() {
            g.add_edge(
                n[i],
                n[(i + 1) % n.len()],
                "knows",
                props! { "w" => i as i64 },
            )
            .unwrap();
        }
        (g, n)
    }

    #[test]
    fn incremental_matches_full_after_mixed_batch() {
        let (mut g, n) = base_graph();
        let prev = FrozenGraph::freeze_attributed(&g);
        let mut t = DeltaTracker::new();
        t.reset(prev.epoch());

        // Add two nodes and edges touching them.
        let a = g.add_node("robot", props! { "age" => 999 });
        t.touch_node(a.raw());
        let b = g.add_node("person", props! {});
        t.touch_node(b.raw());
        let e1 = g.add_edge(a, n[3], "knows", props! { "w" => -1 }).unwrap();
        t.touch_node(a.raw());
        t.touch_node(n[3].raw());
        let _ = e1;
        g.add_edge(n[5], b, "likes", props! {}).unwrap();
        t.touch_node(n[5].raw());
        t.touch_node(b.raw());
        // Property updates.
        g.set_node_property(n[10], "age", Value::from(1000))
            .unwrap();
        t.touch_node(n[10].raw());
        let eids = g.edge_ids();
        g.set_edge_property(eids[7], "w", Value::from(7000))
            .unwrap();
        t.touch_edge_props(eids[7].raw());
        // Structural edge delete.
        g.remove_edge(eids[20]).unwrap();
        t.remove_edge(eids[20].raw());
        // Node delete (removes incident edges too).
        g.remove_node(n[50]).unwrap();
        t.remove_node(n[50].raw());

        let inc = incremental_refreeze(&g, &prev, t.peek());
        let full = FrozenGraph::freeze_attributed(&g);
        assert_eq!(canon(&inc), canon(&full));
        assert!(inc.epoch() > prev.epoch());
        assert!(
            inc.freeze_work() * 4 < full.freeze_work(),
            "incremental work {} should be far below full {}",
            inc.freeze_work(),
            full.freeze_work()
        );
        // Untouched slabs are shared, not copied.
        let shared = inc
            .fwd
            .slabs
            .iter()
            .zip(prev.fwd.slabs.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count();
        assert!(shared > 0, "expected at least one Arc-shared slab");
    }

    #[test]
    fn empty_delta_is_a_cheap_clone() {
        let (g, _) = base_graph();
        let prev = FrozenGraph::freeze_attributed(&g);
        let inc = incremental_refreeze(&g, &prev, &FreezeDelta::empty(prev.epoch()));
        assert_eq!(inc.epoch(), prev.epoch());
        assert_eq!(inc.freeze_work(), 1);
        assert_eq!(canon(&inc), canon(&prev));
    }

    #[test]
    fn full_or_mismatched_delta_falls_back() {
        let (mut g, n) = base_graph();
        let prev = FrozenGraph::freeze_attributed(&g);
        g.remove_node(n[0]).unwrap();
        // Full flag: rebuilds and still matches.
        let inc = incremental_refreeze(&g, &prev, &FreezeDelta::full(prev.epoch()));
        assert_eq!(canon(&inc), canon(&FrozenGraph::freeze_attributed(&g)));
        // Wrong base epoch: also rebuilds rather than mispatching.
        let mut stale = FreezeDelta::empty(prev.epoch() + 100);
        stale.dirty_nodes.insert(n[1].raw());
        let inc2 = incremental_refreeze(&g, &prev, &stale);
        assert_eq!(canon(&inc2), canon(&FrozenGraph::freeze_attributed(&g)));
    }

    #[test]
    fn structural_refreeze_matches_structural_freeze() {
        let (mut g, n) = base_graph();
        let prev = FrozenGraph::freeze(&g);
        let mut t = DeltaTracker::new();
        t.reset(prev.epoch());
        let a = g.add_node("x", props! {});
        t.touch_node(a.raw());
        g.add_edge(a, n[0], "z", props! {}).unwrap();
        t.touch_node(a.raw());
        t.touch_node(n[0].raw());
        g.remove_node(n[100]).unwrap();
        t.remove_node(n[100].raw());
        let inc = incremental_refreeze_structural(&g, &prev, t.peek());
        let full = FrozenGraph::freeze(&g);
        assert_eq!(canon(&inc), canon(&full));
        assert_eq!(inc.node_count(), full.node_count());
        assert_eq!(inc.edge_count(), full.edge_count());
    }

    #[test]
    fn unrecorded_deletion_is_detected() {
        let (mut g, n) = base_graph();
        let prev = FrozenGraph::freeze_attributed(&g);
        let mut t = DeltaTracker::new();
        t.reset(prev.epoch());
        // Delete a node but only record a property touch on it — the
        // planner must notice the id is gone and fall back.
        g.remove_node(n[7]).unwrap();
        t.touch_node(n[7].raw());
        let inc = incremental_refreeze(&g, &prev, t.peek());
        assert_eq!(canon(&inc), canon(&FrozenGraph::freeze_attributed(&g)));
    }
}
