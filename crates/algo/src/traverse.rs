//! Traversal machinery: plain BFS/DFS plus a Neo4j-style fluent
//! traversal description.
//!
//! The paper describes Neo4j as providing "a framework for graph
//! traversals" instead of a query language; [`Traversal`] reproduces
//! that API shape — choose order, direction, relationship types, depth
//! bounds, and a node filter, then iterate.

use gdm_core::{Direction, EdgeRef, FxHashSet, GraphView, NodeId};
use std::collections::VecDeque;

/// Visit order of a [`Traversal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Breadth-first (level by level).
    BreadthFirst,
    /// Depth-first (stack discipline).
    DepthFirst,
}

/// Nodes in BFS order from `start`, following `direction`.
pub fn bfs_order(g: &dyn GraphView, start: NodeId, direction: Direction) -> Vec<NodeId> {
    Traversal::new(start).direction(direction).run(g)
}

/// Nodes in DFS (preorder) order from `start`, following `direction`.
pub fn dfs_order(g: &dyn GraphView, start: NodeId, direction: Direction) -> Vec<NodeId> {
    Traversal::new(start)
        .order(Order::DepthFirst)
        .direction(direction)
        .run(g)
}

/// A visited node together with its depth and the edge that reached it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visit {
    /// The node reached.
    pub node: NodeId,
    /// Hops from the start node (0 for the start itself).
    pub depth: usize,
    /// The edge traversed to reach it (`None` for the start).
    pub via: Option<EdgeRef>,
}

/// A fluent traversal description (Neo4j `TraversalDescription` shape).
///
/// ```
/// # use gdm_graphs::SimpleGraph;
/// # use gdm_algo::traverse::{Traversal, Order};
/// # use gdm_core::{Direction, GraphView};
/// let mut g = SimpleGraph::directed();
/// let a = g.add_node();
/// let b = g.add_node();
/// g.add_labeled_edge(a, b, "knows").unwrap();
/// let nodes = Traversal::new(a)
///     .order(Order::BreadthFirst)
///     .direction(Direction::Outgoing)
///     .relationships(&["knows"])
///     .max_depth(3)
///     .run(&g);
/// assert_eq!(nodes, vec![a, b]);
/// ```
#[derive(Debug, Clone)]
pub struct Traversal {
    start: NodeId,
    order: Order,
    direction: Direction,
    rel_types: Option<Vec<String>>,
    min_depth: usize,
    max_depth: Option<usize>,
}

impl Traversal {
    /// Starts describing a traversal from `start`.
    pub fn new(start: NodeId) -> Self {
        Self {
            start,
            order: Order::BreadthFirst,
            direction: Direction::Outgoing,
            rel_types: None,
            min_depth: 0,
            max_depth: None,
        }
    }

    /// Sets the visit order.
    #[must_use]
    pub fn order(mut self, order: Order) -> Self {
        self.order = order;
        self
    }

    /// Sets the traversal direction.
    #[must_use]
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Restricts traversed edges to the given relationship types.
    #[must_use]
    pub fn relationships(mut self, types: &[&str]) -> Self {
        self.rel_types = Some(types.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Only report nodes at depth ≥ `d` (they are still traversed).
    #[must_use]
    pub fn min_depth(mut self, d: usize) -> Self {
        self.min_depth = d;
        self
    }

    /// Do not traverse beyond depth `d`.
    #[must_use]
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = Some(d);
        self
    }

    /// Runs the traversal, returning reported nodes in visit order.
    pub fn run(&self, g: &dyn GraphView) -> Vec<NodeId> {
        self.visits(g).into_iter().map(|v| v.node).collect()
    }

    /// Runs the traversal, returning full visit records.
    pub fn visits(&self, g: &dyn GraphView) -> Vec<Visit> {
        if !g.contains_node(self.start) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        seen.insert(self.start.raw());
        match self.order {
            Order::BreadthFirst => {
                let mut queue = VecDeque::new();
                queue.push_back(Visit {
                    node: self.start,
                    depth: 0,
                    via: None,
                });
                while let Some(visit) = queue.pop_front() {
                    if visit.depth >= self.min_depth {
                        out.push(visit);
                    }
                    if self.max_depth.is_some_and(|m| visit.depth >= m) {
                        continue;
                    }
                    self.expand(g, visit.node, &mut |e| {
                        if seen.insert(e.to.raw()) {
                            queue.push_back(Visit {
                                node: e.to,
                                depth: visit.depth + 1,
                                via: Some(e),
                            });
                        }
                    });
                }
            }
            Order::DepthFirst => {
                let mut stack = vec![Visit {
                    node: self.start,
                    depth: 0,
                    via: None,
                }];
                while let Some(visit) = stack.pop() {
                    if visit.depth >= self.min_depth {
                        out.push(visit);
                    }
                    if self.max_depth.is_some_and(|m| visit.depth >= m) {
                        continue;
                    }
                    // Collect then reverse so children visit in edge order.
                    let mut children = Vec::new();
                    self.expand(g, visit.node, &mut |e| {
                        if seen.insert(e.to.raw()) {
                            children.push(Visit {
                                node: e.to,
                                depth: visit.depth + 1,
                                via: Some(e),
                            });
                        }
                    });
                    children.reverse();
                    stack.extend(children);
                }
            }
        }
        out
    }

    fn expand(&self, g: &dyn GraphView, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        g.visit_edges_dir(n, self.direction, &mut |e| {
            if let Some(types) = &self.rel_types {
                let matches = e
                    .label
                    .and_then(|sym| g.label_text(sym))
                    .is_some_and(|t| types.iter().any(|want| want == t));
                if !matches {
                    return;
                }
            }
            f(e);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_graphs::SimpleGraph;

    /// 0→1, 0→2, 1→3, 2→3, 3→4 with labels.
    fn diamond() -> (SimpleGraph, Vec<NodeId>) {
        let mut g = SimpleGraph::directed();
        let n: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        g.add_labeled_edge(n[0], n[1], "a").unwrap();
        g.add_labeled_edge(n[0], n[2], "b").unwrap();
        g.add_labeled_edge(n[1], n[3], "a").unwrap();
        g.add_labeled_edge(n[2], n[3], "b").unwrap();
        g.add_labeled_edge(n[3], n[4], "a").unwrap();
        (g, n)
    }

    #[test]
    fn bfs_visits_level_by_level() {
        let (g, n) = diamond();
        let order = bfs_order(&g, n[0], Direction::Outgoing);
        assert_eq!(order, vec![n[0], n[1], n[2], n[3], n[4]]);
    }

    #[test]
    fn dfs_goes_deep_first() {
        let (g, n) = diamond();
        let order = dfs_order(&g, n[0], Direction::Outgoing);
        assert_eq!(order[0], n[0]);
        assert_eq!(order[1], n[1]);
        assert_eq!(order[2], n[3]); // deep before n2
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn max_depth_bounds_traversal() {
        let (g, n) = diamond();
        let order = Traversal::new(n[0]).max_depth(1).run(&g);
        assert_eq!(order, vec![n[0], n[1], n[2]]);
    }

    #[test]
    fn min_depth_skips_early_levels() {
        let (g, n) = diamond();
        let order = Traversal::new(n[0]).min_depth(2).run(&g);
        assert_eq!(order, vec![n[3], n[4]]);
    }

    #[test]
    fn relationship_filter() {
        let (g, n) = diamond();
        let order = Traversal::new(n[0]).relationships(&["a"]).run(&g);
        // Only a-labeled edges: 0→1→3→4.
        assert_eq!(order, vec![n[0], n[1], n[3], n[4]]);
    }

    #[test]
    fn incoming_direction() {
        let (g, n) = diamond();
        let order = bfs_order(&g, n[4], Direction::Incoming);
        assert_eq!(order[0], n[4]);
        assert!(order.contains(&n[0]));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn both_directions_reach_everything() {
        let (g, n) = diamond();
        let order = bfs_order(&g, n[2], Direction::Both);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn missing_start_yields_nothing() {
        let (g, _) = diamond();
        assert!(bfs_order(&g, NodeId(99), Direction::Outgoing).is_empty());
    }

    #[test]
    fn visits_record_depth_and_edge() {
        let (g, n) = diamond();
        let visits = Traversal::new(n[0]).visits(&g);
        assert_eq!(visits[0].depth, 0);
        assert!(visits[0].via.is_none());
        let v3 = visits.iter().find(|v| v.node == n[3]).unwrap();
        assert_eq!(v3.depth, 2);
        assert!(v3.via.is_some());
    }
}
