//! Morsel-driven parallel execution of the vectorized pipeline.
//!
//! The vectorized executor ([`crate::vectorized`]) runs the whole
//! query on one core. This module fans it out in the morsel-driven
//! style of HyPer: the root seed list of the compiled [`BatchPlan`] is
//! split into fixed-size **morsels** (contiguous sub-ranges of the
//! root domain), a shared atomic cursor hands morsels to scoped worker
//! threads as they free up (self-balancing — a worker stuck on a dense
//! morsel simply claims fewer), and each worker runs the *full*
//! operator chain — seed → batched expand → residual filter →
//! materialize — morsel by morsel into a thread-local result buffer.
//!
//! **Determinism.** Every worker executes the *same* compiled plan
//! (the `BatchPlan` is compiled once and shared by reference, so the
//! elimination order, domain bitsets, and resolved label symbols
//! cannot diverge), and the pipeline's emission order is a function of
//! root seed order alone — batch boundaries split but never reorder
//! the candidate stream, and the depth-first recursion drains a prefix
//! of seeds completely before touching its suffix. Workers therefore
//! tag each result buffer with its morsel index, and the reducer
//! concatenates buffers in morsel order: the output is **byte
//! identical** to the sequential vectorized executor's, not merely
//! set-equal (the `planned_equiv` suite asserts exactly this).
//!
//! **Governance.** One [`ExecutionGuard`] would serialize N workers on
//! its budget atomics, so each worker charges a [`WorkerGuard`] — a
//! thread-local batching view that accumulates visit/row counts in
//! plain cells, drains them in bulk at morsel boundaries (and at a
//! pending-units threshold), and runs the shared guard's *read-only*
//! deadline/cancel check on every charge. Cancellation and deadlines
//! stay as responsive as in the sequential path; budget trips are
//! observed at drain points, overrunning by at most a few batches per
//! worker. A trip aborts the morsel queue, every worker settles its
//! counts, and the caller receives the same structured
//! `Interrupted { reason, partial }` the sequential executor returns —
//! with `partial` covering rows from *all* workers.
//!
//! **Panic isolation.** Each worker body runs inside the same
//! `catch_unwind` shield as [`crate::parallel`]'s analysis loops; a
//! poisoned morsel discards the parallel attempt and the query is
//! recomputed by the sequential vectorized pipeline on the calling
//! thread — the first rung of the governor's degradation ladder
//! (DESIGN.md §11), now applied batch-wise (§15).

use crate::frozen::FrozenGraph;
use crate::parallel::{clamp_threads, default_threads, isolate};
use crate::pattern::Pattern;
use crate::planned::MatchTable;
use crate::vectorized::{var_names, BatchPlan, BatchScratch};
use gdm_core::{GdmError, NodeId, Result};
use gdm_govern::{ExecutionGuard, WorkerGuard};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Minimum number of root seeds before fanning a pattern search out
/// across threads. Below this, spawn + join costs more than the rooted
/// searches themselves, so the executor runs the sequential pipeline
/// inline. (Inherited from the retired chunk-partitioned executor.)
pub(crate) const PAR_PATTERN_MIN_ROOTS: usize = 64;

/// Upper bound on seeds per morsel: small enough that a skewed root
/// (one hub owning most of the matches) cannot leave N-1 workers idle,
/// large enough that cursor traffic stays negligible.
const MAX_MORSEL: usize = 256;

/// Process-wide worker-pool override: 0 means "auto" (use
/// [`default_threads`]). Set once at startup by `--workers N` flags
/// and the server config; read by every auto-routed parallel match.
static EXECUTOR_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the executor worker-pool size for this process. `0`
/// restores auto-detection. This is how single-core CI forces the
/// parallel path (`--workers 2`) and how benchmarks pin a reproducible
/// pool size.
pub fn set_executor_workers(n: usize) {
    EXECUTOR_WORKERS.store(n, Ordering::Relaxed);
}

/// The executor worker-pool size in effect: the
/// [`set_executor_workers`] override when one is set, else the
/// machine's available parallelism.
pub fn executor_workers() -> usize {
    match EXECUTOR_WORKERS.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Morsel-driven parallel subgraph matching, auto-seeded: the
/// snapshot's indexes seed per-variable domains exactly like
/// [`crate::match_pattern_vectorized_auto`], then the root domain is
/// executed in parallel morsels. Output is byte-identical to the
/// sequential vectorized executor. Inconsistent auto-domains degrade
/// to the row-at-a-time reference matcher, exactly like the sequential
/// auto path.
pub fn match_pattern_par_vectorized(
    fz: &FrozenGraph,
    pattern: &Pattern,
    workers: usize,
) -> MatchTable {
    match_pattern_par_vectorized_auto_guarded(fz, pattern, workers, None)
        .expect("ungoverned search cannot be interrupted")
}

/// [`match_pattern_par_vectorized`] under an [`ExecutionGuard`]; see
/// the module docs for how guard semantics survive parallelism.
pub fn match_pattern_par_vectorized_governed(
    fz: &FrozenGraph,
    pattern: &Pattern,
    workers: usize,
    guard: &ExecutionGuard,
) -> Result<MatchTable> {
    match_pattern_par_vectorized_auto_guarded(fz, pattern, workers, Some(guard))
}

fn match_pattern_par_vectorized_auto_guarded(
    fz: &FrozenGraph,
    pattern: &Pattern,
    workers: usize,
    guard: Option<&ExecutionGuard>,
) -> Result<MatchTable> {
    let domains = crate::planned::auto_domains(fz, pattern);
    if !crate::planned::domains_consistent(fz, &domains) {
        let bindings = crate::pattern::match_pattern_guarded(fz, pattern, guard)?;
        return Ok(MatchTable::from_bindings(pattern, &bindings));
    }
    par_vectorized_guarded(fz, pattern, &domains, workers, false, guard)
}

/// Morsel-driven parallel matching with caller-supplied domains — the
/// entry point the query planner routes to when `parallel_workers > 1`
/// was recorded in the plan.
pub fn match_pattern_par_vectorized_domains(
    fz: &FrozenGraph,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    workers: usize,
) -> MatchTable {
    par_vectorized_guarded(fz, pattern, domains, workers, false, None)
        .expect("ungoverned search cannot be interrupted")
}

/// [`match_pattern_par_vectorized_domains`] under an
/// [`ExecutionGuard`].
pub fn match_pattern_par_vectorized_domains_governed(
    fz: &FrozenGraph,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    workers: usize,
    guard: &ExecutionGuard,
) -> Result<MatchTable> {
    par_vectorized_guarded(fz, pattern, domains, workers, false, Some(guard))
}

/// Test hook: skips the [`PAR_PATTERN_MIN_ROOTS`] inline threshold so
/// tiny property-test graphs still exercise the real morsel machinery
/// (cursor, worker guards, merge). Not part of the public API surface.
#[doc(hidden)]
pub fn match_pattern_par_vectorized_forced(
    fz: &FrozenGraph,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    workers: usize,
    guard: Option<&ExecutionGuard>,
) -> Result<MatchTable> {
    par_vectorized_guarded(fz, pattern, domains, workers, true, guard)
}

/// The morsel driver. `force` bypasses the inline threshold (tests).
fn par_vectorized_guarded(
    fz: &FrozenGraph,
    pattern: &Pattern,
    domains: &[Option<Vec<NodeId>>],
    workers: usize,
    force: bool,
    guard: Option<&ExecutionGuard>,
) -> Result<MatchTable> {
    let vars = var_names(pattern);
    if pattern.nodes.is_empty() {
        return Ok(MatchTable::from_parts(vars, Vec::new()));
    }
    // Compiled once, shared read-only by every worker: all morsels see
    // the same elimination order, domain bitsets, and label symbols.
    let plan = BatchPlan::compile(fz, pattern, domains);
    let seeds = plan.root_seed_list();

    let workers = clamp_threads(workers, seeds.len());
    if workers == 1 || (!force && seeds.len() < PAR_PATTERN_MIN_ROOTS) {
        let mut scratch = BatchScratch::new(fz);
        let data = plan.run(None, &mut scratch, guard)?;
        return Ok(MatchTable::from_parts(vars, data));
    }

    // ~4 morsels per worker smooths skew without flooding the cursor;
    // MAX_MORSEL caps the tail latency of an unlucky claim.
    let morsel = seeds.len().div_ceil(workers * 4).clamp(1, MAX_MORSEL);
    let morsels: Vec<&[u32]> = seeds.chunks(morsel).collect();
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let plan = &plan;
    let morsels = &morsels;
    let cursor = &cursor;
    let abort = &abort;

    // Per-worker harvest: (morsel index, flat rows) pairs plus the
    // first trip the worker observed; `false` marks a poisoned worker.
    type Harvest = (Vec<(usize, Vec<NodeId>)>, Option<GdmError>, bool);
    let run_worker = move || -> Harvest {
        let mut out: Vec<(usize, Vec<NodeId>)> = Vec::new();
        let mut first_err: Option<GdmError> = None;
        let ok = isolate(|| {
            let mut scratch = BatchScratch::new(fz);
            let worker_guard: Option<WorkerGuard<'_>> = guard.map(ExecutionGuard::worker);
            loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let m = cursor.fetch_add(1, Ordering::Relaxed);
                if m >= morsels.len() {
                    break;
                }
                // Drain the worker's pending counts at every morsel
                // boundary so budget trips surface promptly even when
                // morsels are smaller than the flush threshold.
                let res = match &worker_guard {
                    Some(w) => plan
                        .run(Some(morsels[m]), &mut scratch, w)
                        .and_then(|data| w.flush().map(|()| data)),
                    None => {
                        plan.run::<Option<&ExecutionGuard>>(Some(morsels[m]), &mut scratch, None)
                    }
                };
                match res {
                    Ok(data) => out.push((m, data)),
                    Err(e) => {
                        abort.store(true, Ordering::Relaxed);
                        first_err = Some(e);
                        break;
                    }
                }
            }
            // `worker_guard` drops here, settling any remaining counts
            // into the shared guard so partials merge across workers.
        });
        (out, first_err, ok)
    };

    let mut merged: Vec<(usize, Vec<NodeId>)> = Vec::new();
    let mut trip: Option<GdmError> = None;
    let mut poisoned = false;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers).map(|_| s.spawn(run_worker)).collect();
        for h in handles {
            // A panic inside `isolate` cannot unwind out of the worker;
            // an outer join error still just marks the worker lost.
            let (out, err, ok) = h.join().unwrap_or((Vec::new(), None, false));
            if !ok {
                poisoned = true;
            }
            if trip.is_none() {
                trip = err;
            }
            merged.extend(out);
        }
    });

    if let Some(e) = trip {
        // Re-wrap after every worker settled: the partial row count
        // then covers rows emitted by all workers, not just the one
        // that tripped first.
        if let (Some(reason), Some(g)) = (e.interrupt_reason(), guard) {
            return Err(GdmError::interrupted(reason, g.budget().rows_emitted()));
        }
        return Err(e);
    }
    if poisoned {
        // A lost worker means lost morsels; discard the parallel
        // attempt and recompute sequentially on the calling thread.
        // Under a guard the rerun re-charges work the lost attempt
        // already drew — degradation trades budget precision for a
        // correct answer, never the reverse.
        let mut scratch = BatchScratch::new(fz);
        let data = plan.run(None, &mut scratch, guard)?;
        return Ok(MatchTable::from_parts(vars, data));
    }

    // Deterministic reduce: morsel order is seed order, and per-morsel
    // output equals the sequential executor's output for that seed
    // range, so this concatenation is byte-identical to a sequential
    // run over the full seed list.
    merged.sort_unstable_by_key(|&(m, _)| m);
    let mut data = Vec::with_capacity(merged.iter().map(|(_, d)| d.len()).sum());
    for (_, part) in merged {
        data.extend(part);
    }
    Ok(MatchTable::from_parts(vars, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::inject_worker_panic_once;
    use crate::pattern::{canonical, match_pattern, PatternNode};
    use crate::planned::auto_domains;
    use crate::vectorized::match_pattern_vectorized_auto;
    use gdm_core::{props, InterruptReason};
    use gdm_govern::{CancelToken, Limits};
    use gdm_graphs::PropertyGraph;
    use std::time::Duration;

    /// Serializes tests that touch process-global state (the panic
    /// injection hook and the worker-pool override).
    static GLOBAL_HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn social(n: u64) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| {
                g.add_node(
                    if i % 5 == 0 { "company" } else { "person" },
                    props! { "i" => i as i64 },
                )
            })
            .collect();
        for i in 0..n as usize {
            let a = nodes[i];
            g.add_edge(a, nodes[(i * 7 + 1) % n as usize], "knows", props! {})
                .unwrap();
            g.add_edge(a, nodes[(i * 13 + 3) % n as usize], "knows", props! {})
                .unwrap();
        }
        g
    }

    fn two_hop() -> Pattern {
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x").with_label("person"));
        let y = p.node(PatternNode::var("y").with_label("person"));
        let z = p.node(PatternNode::var("z"));
        p.edge(x, y, Some("knows")).unwrap();
        p.edge(y, z, Some("knows")).unwrap();
        p
    }

    #[test]
    fn par_vectorized_is_byte_identical_to_sequential() {
        let g = social(200);
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = two_hop();
        let seq = match_pattern_vectorized_auto(&fz, &p);
        assert!(!seq.is_empty());
        for workers in [2, 3, 4, 7] {
            let par = match_pattern_par_vectorized(&fz, &p, workers);
            assert_eq!(par, seq, "workers={workers}: rows must match byte for byte");
        }
    }

    #[test]
    fn forced_morsels_on_tiny_graphs_stay_identical() {
        let g = social(20);
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = two_hop();
        let dom = auto_domains(&fz, &p);
        let seq = match_pattern_vectorized_auto(&fz, &p);
        let par = match_pattern_par_vectorized_forced(&fz, &p, &dom, 3, None).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_vectorized_matches_reference_set() {
        let g = social(150);
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = two_hop();
        let par = match_pattern_par_vectorized(&fz, &p, 4);
        assert_eq!(
            canonical(&par.to_bindings()),
            canonical(&match_pattern(&fz, &p))
        );
    }

    #[test]
    fn empty_and_impossible_patterns() {
        let g = social(80);
        let fz = FrozenGraph::freeze_attributed(&g);
        assert!(match_pattern_par_vectorized(&fz, &Pattern::new(), 4).is_empty());
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_label("unicorn"));
        assert!(match_pattern_par_vectorized(&fz, &p, 4).is_empty());
    }

    #[test]
    fn governed_unlimited_equals_ungoverned() {
        let g = social(150);
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = two_hop();
        let guard = ExecutionGuard::unlimited();
        let governed = match_pattern_par_vectorized_governed(&fz, &p, 4, &guard).unwrap();
        let plain = match_pattern_par_vectorized(&fz, &p, 4);
        assert_eq!(governed, plain);
        assert!(guard.budget().node_visits() > 0, "workers settled charges");
    }

    #[test]
    fn governed_budget_trips_with_merged_partial() {
        let g = social(400);
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = two_hop();
        let guard = ExecutionGuard::new(Limits::none().with_node_visits(50));
        let err = match_pattern_par_vectorized_governed(&fz, &p, 4, &guard).unwrap_err();
        assert_eq!(err.interrupt_reason(), Some(InterruptReason::Budget));
    }

    #[test]
    fn governed_deadline_and_cancel_trip() {
        let g = social(200);
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = two_hop();
        let guard = ExecutionGuard::new(Limits::none().with_deadline(Duration::ZERO));
        let err = match_pattern_par_vectorized_governed(&fz, &p, 4, &guard).unwrap_err();
        assert_eq!(err.interrupt_reason(), Some(InterruptReason::Deadline));
        let cancel = CancelToken::new();
        cancel.cancel();
        let guard = ExecutionGuard::with_cancel(Limits::none(), cancel);
        let err = match_pattern_par_vectorized_governed(&fz, &p, 4, &guard).unwrap_err();
        assert_eq!(err.interrupt_reason(), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn poisoned_morsel_falls_back_to_sequential() {
        let _lock = GLOBAL_HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = social(200);
        let fz = FrozenGraph::freeze_attributed(&g);
        let p = two_hop();
        let seq = match_pattern_vectorized_auto(&fz, &p);
        inject_worker_panic_once();
        let par = match_pattern_par_vectorized(&fz, &p, 4);
        assert_eq!(par, seq, "panicking worker must not change the answer");
    }

    #[test]
    fn workers_override_round_trips() {
        let _lock = GLOBAL_HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_executor_workers(3);
        assert_eq!(executor_workers(), 3);
        set_executor_workers(0);
        assert_eq!(executor_workers(), default_threads());
    }
}
