//! # gdm-algo
//!
//! The essential graph queries of the paper's Section IV, implemented
//! once, generically over [`gdm_core::GraphView`], so that every data
//! model in `gdm-graphs` — and therefore every engine emulation —
//! answers the same queries through the same code:
//!
//! 1. **Adjacency queries** ([`adjacency`]): node/edge adjacency tests
//!    and k-neighborhood listing.
//! 2. **Reachability queries** ([`paths`], [`regular`]): reachability,
//!    fixed-length paths, regular (simple) paths over edge-label
//!    regular expressions, shortest paths (unweighted and weighted).
//! 3. **Pattern matching queries** ([`pattern`]): subgraph isomorphism
//!    (VF2-style backtracking) with a brute-force oracle for testing.
//! 4. **Summarization queries** ([`summary`]): aggregation functions
//!    plus the structural functions the paper lists — order, degree,
//!    minimum/maximum/average degree, path length, distance between
//!    nodes, diameter.
//!
//! [`traverse`] provides the BFS/DFS machinery and a Neo4j-style
//! fluent traversal description (the "framework for graph traversals"
//! of the paper's Neo4j description); [`analysis`] adds the analysis
//! functions Table V probes (connected components, triangle counting,
//! clustering coefficients).
//!
//! For read-heavy workloads, [`frozen`] compiles any view into a
//! point-in-time CSR snapshot ([`FrozenGraph`]) that answers the same
//! queries identically but at array speed, and [`parallel`] fans the
//! expensive ones (diameter, components, triangles, clustering,
//! pattern matching) out across scoped threads; [`par_vectorized`]
//! drives the vectorized pattern pipeline morsel-by-morsel across the
//! same scoped threads with byte-identical output.

pub mod adjacency;
pub mod analysis;
pub mod frozen;
pub mod par_vectorized;
pub mod parallel;
pub mod paths;
pub mod pattern;
pub mod planned;
pub mod refreeze;
pub mod regular;
pub mod summary;
pub mod traverse;
pub mod vectorized;

pub use adjacency::{edges_adjacent, k_neighborhood, nodes_adjacent};
pub use frozen::{frozen_regular_path_exists, FrozenGraph};
pub use par_vectorized::{
    executor_workers, match_pattern_par_vectorized, match_pattern_par_vectorized_domains,
    match_pattern_par_vectorized_domains_governed, match_pattern_par_vectorized_governed,
    set_executor_workers,
};
pub use parallel::{
    default_threads, par_average_clustering, par_connected_components, par_degree_stats,
    par_diameter, par_eccentricities, par_match_pattern, par_triangle_count,
};
pub use paths::{
    bidirectional_shortest_path, dijkstra, distance, fixed_length_path_exists, fixed_length_paths,
    is_reachable, shortest_path, shortest_path_governed, Path,
};
pub use pattern::{match_pattern, match_pattern_governed, Pattern, PatternEdge, PatternNode};
pub use planned::{
    auto_domains, domain_estimates, domains_consistent, match_pattern_auto,
    match_pattern_auto_governed, match_pattern_planned, match_pattern_planned_governed,
    planned_order, Domains, MatchTable,
};
pub use refreeze::{incremental_refreeze, incremental_refreeze_structural};
pub use regular::{
    regular_path_exists, regular_path_exists_governed, regular_simple_paths, LabelRegex,
};
pub use summary::{
    aggregate, degree_stats, diameter, diameter_governed, graph_order, graph_size, Aggregate,
};
pub use traverse::{bfs_order, dfs_order, Traversal};
pub use vectorized::{
    match_pattern_vectorized, match_pattern_vectorized_auto,
    match_pattern_vectorized_auto_governed, match_pattern_vectorized_governed,
};
