//! Graph pattern matching queries (Section IV.3).
//!
//! "Graph pattern matching consists in to find all sub-graphs of a
//! data graph that are isomorphic to a pattern graph." The matcher is
//! a VF2-style backtracking search for subgraph *monomorphisms*
//! (injective on nodes, non-induced on edges) with optional label and
//! property constraints; [`match_pattern_brute`] is the brute-force
//! oracle the property tests compare against.

use gdm_core::{AttributedView, Direction, FxHashMap, GdmError, NodeId, Result, Symbol, Value};
use gdm_govern::{ExecutionGuard, GuardExt};
use std::cmp::Ordering;

/// A pattern node: a variable plus optional constraints.
#[derive(Debug, Clone, Default)]
pub struct PatternNode {
    /// Variable name reported in matches.
    pub var: String,
    /// Required node label, if constrained.
    pub label: Option<String>,
    /// Required property values (loose equality).
    pub props: Vec<(String, Value)>,
}

impl PatternNode {
    /// An unconstrained variable.
    pub fn var(name: impl Into<String>) -> Self {
        Self {
            var: name.into(),
            ..Self::default()
        }
    }

    /// Adds a label constraint.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Adds a property constraint.
    #[must_use]
    pub fn with_prop(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.props.push((key.into(), value.into()));
        self
    }
}

/// A pattern edge between pattern-node indices.
#[derive(Debug, Clone)]
pub struct PatternEdge {
    /// Index of the source pattern node.
    pub from: usize,
    /// Index of the target pattern node.
    pub to: usize,
    /// Required edge label, if constrained.
    pub label: Option<String>,
    /// Direction semantics: `Outgoing` means `from → to` in the data
    /// graph, `Both` accepts either orientation.
    pub direction: Direction,
    /// Inclusive range constraints on edge properties: `(key, low,
    /// high)` with either bound optional. Comparison is loose the way
    /// [`Value::compare`] is (number-family unified); an edge missing
    /// the property never matches.
    pub ranges: Vec<(String, Option<Value>, Option<Value>)>,
}

/// True when `got` lies in the inclusive, number-family-loose range
/// `[low, high]` — the exact-match side of the over-approximating
/// ordered-index seeds ([`AttributedView::range_candidates`] /
/// [`AttributedView::edge_range_candidates`]): every value this
/// accepts, those indexes return.
pub(crate) fn value_in_range(got: &Value, low: Option<&Value>, high: Option<&Value>) -> bool {
    let lo_ok =
        low.is_none_or(|l| matches!(got.compare(l), Some(Ordering::Greater | Ordering::Equal)));
    lo_ok && high.is_none_or(|h| matches!(got.compare(h), Some(Ordering::Less | Ordering::Equal)))
}

/// A pattern graph.
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    /// Pattern nodes (variables).
    pub nodes: Vec<PatternNode>,
    /// Pattern edges.
    pub edges: Vec<PatternEdge>,
}

impl Pattern {
    /// Starts an empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its index.
    pub fn node(&mut self, node: PatternNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a directed edge constraint.
    pub fn edge(&mut self, from: usize, to: usize, label: Option<&str>) -> Result<()> {
        self.add_edge(from, to, label, Direction::Outgoing)
    }

    /// Adds an undirected (either-orientation) edge constraint.
    pub fn edge_undirected(&mut self, from: usize, to: usize, label: Option<&str>) -> Result<()> {
        self.add_edge(from, to, label, Direction::Both)
    }

    fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        label: Option<&str>,
        direction: Direction,
    ) -> Result<()> {
        if from >= self.nodes.len() || to >= self.nodes.len() {
            return Err(GdmError::InvalidArgument(
                "pattern edge references missing node".into(),
            ));
        }
        self.edges.push(PatternEdge {
            from,
            to,
            label: label.map(str::to_owned),
            direction,
            ranges: Vec::new(),
        });
        Ok(())
    }

    /// Adds an inclusive range constraint on property `key` of the
    /// most recently added edge (either bound optional, loose
    /// number-family comparison; an edge without the property never
    /// matches). Errors when no edge has been added yet.
    pub fn edge_range(
        &mut self,
        key: impl Into<String>,
        low: Option<Value>,
        high: Option<Value>,
    ) -> Result<()> {
        let Some(e) = self.edges.last_mut() else {
            return Err(GdmError::InvalidArgument(
                "edge_range requires a preceding edge".into(),
            ));
        };
        e.ranges.push((key.into(), low, high));
        Ok(())
    }
}

/// One match: pattern variable → data node.
pub type Binding = FxHashMap<String, NodeId>;

/// Finds all subgraph matches of `pattern` in `g` (VF2-style search).
/// Matches are injective on nodes. Returns bindings in a stable order.
pub fn match_pattern<G: AttributedView + ?Sized>(g: &G, pattern: &Pattern) -> Vec<Binding> {
    match_pattern_guarded(g, pattern, None).expect("ungoverned search cannot be interrupted")
}

/// [`match_pattern`] under an [`ExecutionGuard`]: the search charges
/// one node visit per candidate considered and one row per binding
/// emitted, and returns [`GdmError::Interrupted`] when the guard
/// trips. With an unlimited guard the result equals [`match_pattern`].
pub fn match_pattern_governed<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    guard: &ExecutionGuard,
) -> Result<Vec<Binding>> {
    match_pattern_guarded(g, pattern, Some(guard))
}

/// Per-search memo of label-symbol checks: one `symbol → matches?` map
/// per pattern node and per pattern edge, so each distinct symbol's
/// text is resolved (and compared) once per search instead of once per
/// candidate — the same trick `planned.rs` uses, which is what keeps
/// the frozen snapshot's interned-symbol lookups off the hot path.
#[derive(Debug, Default)]
pub(crate) struct MatchCaches {
    node_labels: Vec<FxHashMap<u32, bool>>,
    edge_labels: Vec<FxHashMap<u32, bool>>,
}

impl MatchCaches {
    pub(crate) fn for_pattern(pattern: &Pattern) -> Self {
        Self {
            node_labels: vec![FxHashMap::default(); pattern.nodes.len()],
            edge_labels: vec![FxHashMap::default(); pattern.edges.len()],
        }
    }
}

/// Memoized check of an optional label constraint against an optional
/// interned symbol.
#[inline]
pub(crate) fn label_ok<G: AttributedView + ?Sized>(
    g: &G,
    cache: &mut FxHashMap<u32, bool>,
    want: Option<&str>,
    sym: Option<Symbol>,
) -> bool {
    let Some(want) = want else {
        return true;
    };
    let Some(sym) = sym else {
        return false;
    };
    *cache
        .entry(sym.raw())
        .or_insert_with(|| g.label_text(sym).is_some_and(|t| t == want))
}

pub(crate) fn match_pattern_guarded<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    guard: Option<&ExecutionGuard>,
) -> Result<Vec<Binding>> {
    if pattern.nodes.is_empty() {
        return Ok(Vec::new());
    }
    // Order pattern nodes: most-constrained first, then by
    // connectivity to already-placed nodes (classic VF2 ordering).
    let order = matching_order(pattern);
    let mut assignment: Vec<Option<NodeId>> = vec![None; pattern.nodes.len()];
    let mut caches = MatchCaches::for_pattern(pattern);
    let mut out = Vec::new();
    extend(
        g,
        pattern,
        &order,
        0,
        &mut assignment,
        &mut caches,
        &mut out,
        guard,
    )?;
    Ok(out)
}

pub(crate) fn matching_order(pattern: &Pattern) -> Vec<usize> {
    let n = pattern.nodes.len();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let constraint_score = |i: usize| {
        let pn = &pattern.nodes[i];
        pn.props.len() * 2 + usize::from(pn.label.is_some())
    };
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !placed[i])
            .max_by_key(|&i| {
                let connected = pattern
                    .edges
                    .iter()
                    .filter(|e| (placed[e.from] && e.to == i) || (placed[e.to] && e.from == i))
                    .count();
                (connected, constraint_score(i))
            })
            .expect("unplaced node exists");
        placed[next] = true;
        order.push(next);
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn extend<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<Option<NodeId>>,
    caches: &mut MatchCaches,
    out: &mut Vec<Binding>,
    guard: Option<&ExecutionGuard>,
) -> Result<()> {
    if depth == order.len() {
        guard.row()?;
        let binding = pattern
            .nodes
            .iter()
            .enumerate()
            .map(|(i, pn)| (pn.var.clone(), assignment[i].expect("complete")))
            .collect();
        out.push(binding);
        return Ok(());
    }
    let pv = order[depth];
    for candidate in candidates(g, pattern, pv, assignment) {
        guard.node()?;
        if assignment.iter().flatten().any(|&n| n == candidate) {
            continue; // injectivity
        }
        if !node_compatible(
            g,
            &pattern.nodes[pv],
            candidate,
            &mut caches.node_labels[pv],
        ) {
            continue;
        }
        assignment[pv] = Some(candidate);
        if edges_consistent(g, pattern, pv, assignment, &mut caches.edge_labels) {
            extend(g, pattern, order, depth + 1, assignment, caches, out, guard)?;
        }
        assignment[pv] = None;
    }
    Ok(())
}

/// Candidate data nodes for pattern node `pv`: neighbors of an
/// already-bound pattern neighbor when possible, otherwise all nodes.
fn candidates<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    pv: usize,
    assignment: &[Option<NodeId>],
) -> Vec<NodeId> {
    for e in &pattern.edges {
        if e.to == pv {
            if let Some(bound) = assignment[e.from] {
                let mut c = Vec::new();
                g.visit_edges_dir(bound, e.direction, &mut |er| {
                    if !c.contains(&er.to) {
                        c.push(er.to);
                    }
                });
                return c;
            }
        }
        if e.from == pv {
            if let Some(bound) = assignment[e.to] {
                let dir = match e.direction {
                    Direction::Outgoing => Direction::Incoming,
                    other => other,
                };
                let mut c = Vec::new();
                g.visit_edges_dir(bound, dir, &mut |er| {
                    if !c.contains(&er.to) {
                        c.push(er.to);
                    }
                });
                return c;
            }
        }
    }
    g.node_ids()
}

fn node_compatible<G: AttributedView + ?Sized>(
    g: &G,
    pn: &PatternNode,
    n: NodeId,
    cache: &mut FxHashMap<u32, bool>,
) -> bool {
    if !g.contains_node(n) {
        return false;
    }
    if !label_ok(g, cache, pn.label.as_deref(), g.node_label(n)) {
        return false;
    }
    pn.props.iter().all(|(key, want)| {
        g.node_property(n, key)
            .is_some_and(|got| got.loose_eq(want))
    })
}

/// Checks every pattern edge whose endpoints are both bound.
fn edges_consistent<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    just_placed: usize,
    assignment: &[Option<NodeId>],
    edge_caches: &mut [FxHashMap<u32, bool>],
) -> bool {
    for (i, e) in pattern.edges.iter().enumerate() {
        if e.from != just_placed && e.to != just_placed {
            continue;
        }
        let (Some(from), Some(to)) = (assignment[e.from], assignment[e.to]) else {
            continue;
        };
        if !has_edge(g, from, to, e, &mut edge_caches[i]) {
            return false;
        }
    }
    true
}

fn has_edge<G: AttributedView + ?Sized>(
    g: &G,
    from: NodeId,
    to: NodeId,
    e: &PatternEdge,
    cache: &mut FxHashMap<u32, bool>,
) -> bool {
    let check = |a: NodeId, b: NodeId, cache: &mut FxHashMap<u32, bool>| {
        let mut found = false;
        g.visit_out_edges(a, &mut |er| {
            if er.to == b
                && label_ok(g, cache, e.label.as_deref(), er.label)
                && edge_ranges_ok(g, er.id, &e.ranges)
            {
                found = true;
            }
        });
        found
    };
    match e.direction {
        Direction::Outgoing => check(from, to, cache),
        Direction::Incoming => check(to, from, cache),
        Direction::Both => check(from, to, cache) || check(to, from, cache),
    }
}

/// Exact edge-property range check: every constrained key must be
/// present and inside its inclusive bounds.
pub(crate) fn edge_ranges_ok<G: AttributedView + ?Sized>(
    g: &G,
    id: gdm_core::EdgeId,
    ranges: &[(String, Option<Value>, Option<Value>)],
) -> bool {
    ranges.iter().all(|(key, low, high)| {
        g.edge_property(id, key)
            .is_some_and(|got| value_in_range(&got, low.as_ref(), high.as_ref()))
    })
}

/// Brute-force oracle: tries every injective assignment. Exponential —
/// for tests only.
pub fn match_pattern_brute<G: AttributedView + ?Sized>(g: &G, pattern: &Pattern) -> Vec<Binding> {
    if pattern.nodes.is_empty() {
        return Vec::new();
    }
    let nodes = g.node_ids();
    let mut assignment: Vec<Option<NodeId>> = vec![None; pattern.nodes.len()];
    let mut caches = MatchCaches::for_pattern(pattern);
    let mut out = Vec::new();
    brute(
        g,
        pattern,
        &nodes,
        0,
        &mut assignment,
        &mut caches,
        &mut out,
    );
    out
}

fn brute<G: AttributedView + ?Sized>(
    g: &G,
    pattern: &Pattern,
    nodes: &[NodeId],
    depth: usize,
    assignment: &mut Vec<Option<NodeId>>,
    caches: &mut MatchCaches,
    out: &mut Vec<Binding>,
) {
    if depth == pattern.nodes.len() {
        let ok = pattern.edges.iter().enumerate().all(|(i, e)| {
            has_edge(
                g,
                assignment[e.from].expect("complete"),
                assignment[e.to].expect("complete"),
                e,
                &mut caches.edge_labels[i],
            )
        });
        if ok {
            out.push(
                pattern
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(i, pn)| (pn.var.clone(), assignment[i].expect("complete")))
                    .collect(),
            );
        }
        return;
    }
    for &n in nodes {
        if assignment.iter().flatten().any(|&m| m == n) {
            continue;
        }
        if !node_compatible(g, &pattern.nodes[depth], n, &mut caches.node_labels[depth]) {
            continue;
        }
        assignment[depth] = Some(n);
        brute(g, pattern, nodes, depth + 1, assignment, caches, out);
        assignment[depth] = None;
    }
}

/// Canonical form of a result set for comparing matcher outputs.
pub fn canonical(bindings: &[Binding]) -> Vec<Vec<(String, u64)>> {
    let mut rows: Vec<Vec<(String, u64)>> = bindings
        .iter()
        .map(|b| {
            let mut row: Vec<(String, u64)> = b.iter().map(|(k, v)| (k.clone(), v.raw())).collect();
            row.sort();
            row
        })
        .collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;
    use gdm_graphs::PropertyGraph;

    fn triangle_with_tail() -> (PropertyGraph, Vec<NodeId>) {
        let mut g = PropertyGraph::new();
        let n: Vec<NodeId> = (0..4)
            .map(|i| {
                g.add_node(
                    if i < 3 { "person" } else { "company" },
                    props! { "i" => i },
                )
            })
            .collect();
        g.add_edge(n[0], n[1], "knows", props! {}).unwrap();
        g.add_edge(n[1], n[2], "knows", props! {}).unwrap();
        g.add_edge(n[2], n[0], "knows", props! {}).unwrap();
        g.add_edge(n[0], n[3], "works_at", props! {}).unwrap();
        (g, n)
    }

    #[test]
    fn single_node_label_match() {
        let (g, _) = triangle_with_tail();
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_label("person"));
        assert_eq!(match_pattern(&g, &p).len(), 3);
        let mut q = Pattern::new();
        q.node(PatternNode::var("x").with_label("company"));
        assert_eq!(match_pattern(&g, &q).len(), 1);
    }

    #[test]
    fn property_constraints() {
        let (g, n) = triangle_with_tail();
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_prop("i", 2));
        let m = match_pattern(&g, &p);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0]["x"], n[2]);
    }

    #[test]
    fn directed_edge_pattern() {
        let (g, _) = triangle_with_tail();
        let mut p = Pattern::new();
        let a = p.node(PatternNode::var("a").with_label("person"));
        let b = p.node(PatternNode::var("b").with_label("company"));
        p.edge(a, b, Some("works_at")).unwrap();
        let m = match_pattern(&g, &p);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn triangle_pattern_finds_rotations() {
        let (g, _) = triangle_with_tail();
        let mut p = Pattern::new();
        let a = p.node(PatternNode::var("a"));
        let b = p.node(PatternNode::var("b"));
        let c = p.node(PatternNode::var("c"));
        p.edge(a, b, Some("knows")).unwrap();
        p.edge(b, c, Some("knows")).unwrap();
        p.edge(c, a, Some("knows")).unwrap();
        let m = match_pattern(&g, &p);
        assert_eq!(m.len(), 3, "three rotations of the triangle");
    }

    #[test]
    fn injectivity_prevents_node_reuse() {
        let (g, _) = triangle_with_tail();
        let mut p = Pattern::new();
        let a = p.node(PatternNode::var("a"));
        let b = p.node(PatternNode::var("b"));
        // a knows b and b knows a simultaneously — triangle has no
        // 2-cycles, so no match.
        p.edge(a, b, Some("knows")).unwrap();
        p.edge(b, a, Some("knows")).unwrap();
        assert!(match_pattern(&g, &p).is_empty());
    }

    #[test]
    fn undirected_pattern_edges() {
        let (g, _) = triangle_with_tail();
        let mut p = Pattern::new();
        let a = p.node(PatternNode::var("a").with_label("company"));
        let b = p.node(PatternNode::var("b").with_label("person"));
        p.edge_undirected(a, b, Some("works_at")).unwrap();
        assert_eq!(match_pattern(&g, &p).len(), 1);
    }

    #[test]
    fn vf2_agrees_with_brute_force() {
        let (g, _) = triangle_with_tail();
        for edges in [
            vec![(0usize, 1usize, Some("knows"))],
            vec![(0, 1, Some("knows")), (1, 2, Some("knows"))],
            vec![(0, 1, None), (1, 2, None), (2, 0, None)],
        ] {
            let mut p = Pattern::new();
            let vars: Vec<usize> = (0..3)
                .map(|i| p.node(PatternNode::var(format!("v{i}"))))
                .collect();
            for (f, t, l) in &edges {
                p.edge(vars[*f], vars[*t], *l).unwrap();
            }
            let fast = canonical(&match_pattern(&g, &p));
            let slow = canonical(&match_pattern_brute(&g, &p));
            assert_eq!(fast, slow, "edges {edges:?}");
        }
    }

    #[test]
    fn empty_pattern_matches_nothing() {
        let (g, _) = triangle_with_tail();
        assert!(match_pattern(&g, &Pattern::new()).is_empty());
    }

    #[test]
    fn pattern_edge_validation() {
        let mut p = Pattern::new();
        let a = p.node(PatternNode::var("a"));
        assert!(p.edge(a, 7, None).is_err());
    }

    #[test]
    fn disconnected_pattern_components() {
        let (g, _) = triangle_with_tail();
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_label("company"));
        p.node(PatternNode::var("y").with_label("person"));
        // No edges: all injective (company, person) pairs.
        assert_eq!(match_pattern(&g, &p).len(), 3);
    }
}
