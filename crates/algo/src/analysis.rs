//! Analysis functions (the paper's Table V "Analysis" column).
//!
//! "Data analysis is supported in terms of special functions (e.g.,
//! shortest path) for querying graph properties." Shortest paths live
//! in [`crate::paths`]; this module adds the social-network-analysis
//! staples the surveyed systems advertised (AllegroGraph's "Social
//! Network Analysis" feature set, DEX's "information retrieval"
//! exploration): connected components, triangle counting, clustering
//! coefficients, and degree centrality.

use gdm_core::{Direction, FxHashMap, FxHashSet, GraphView, NodeId};
use std::collections::VecDeque;

/// Weakly connected components (direction ignored). Returns one sorted
/// node list per component, largest first.
pub fn connected_components(g: &dyn GraphView) -> Vec<Vec<NodeId>> {
    let mut assigned: FxHashSet<u64> = FxHashSet::default();
    let mut components = Vec::new();
    let mut roots = Vec::new();
    g.visit_nodes(&mut |n| roots.push(n));
    for root in roots {
        if assigned.contains(&root.raw()) {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::from([root]);
        assigned.insert(root.raw());
        while let Some(n) = queue.pop_front() {
            comp.push(n);
            g.visit_edges_dir(n, Direction::Both, &mut |e| {
                if assigned.insert(e.to.raw()) {
                    queue.push_back(e.to);
                }
            });
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Undirected neighbor sets (self-loops dropped), the building block
/// for triangles and clustering.
fn neighbor_sets(g: &dyn GraphView) -> FxHashMap<u64, FxHashSet<u64>> {
    let mut sets: FxHashMap<u64, FxHashSet<u64>> = FxHashMap::default();
    let mut nodes = Vec::new();
    g.visit_nodes(&mut |n| nodes.push(n));
    for n in nodes {
        let entry = sets.entry(n.raw()).or_default();
        let mut local = std::mem::take(entry);
        g.visit_edges_dir(n, Direction::Both, &mut |e| {
            if e.to != n {
                local.insert(e.to.raw());
            }
        });
        sets.insert(n.raw(), local);
    }
    sets
}

/// Number of triangles (3-cycles in the underlying undirected graph).
pub fn triangle_count(g: &dyn GraphView) -> usize {
    let sets = neighbor_sets(g);
    let mut count = 0usize;
    for (&n, neigh) in &sets {
        for &m in neigh {
            if m <= n {
                continue;
            }
            let Some(mset) = sets.get(&m) else { continue };
            for &k in neigh {
                if k > m && mset.contains(&k) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Local clustering coefficient of `n`: fraction of neighbor pairs
/// that are themselves connected. `None` for degree < 2.
pub fn clustering_coefficient(g: &dyn GraphView, n: NodeId) -> Option<f64> {
    let sets = neighbor_sets(g);
    let neigh = sets.get(&n.raw())?;
    let k = neigh.len();
    if k < 2 {
        return None;
    }
    let mut closed = 0usize;
    let neigh_vec: Vec<u64> = neigh.iter().copied().collect();
    for (i, &a) in neigh_vec.iter().enumerate() {
        for &b in &neigh_vec[i + 1..] {
            if sets.get(&a).is_some_and(|s| s.contains(&b)) {
                closed += 1;
            }
        }
    }
    Some(closed as f64 / (k * (k - 1) / 2) as f64)
}

/// Average clustering coefficient over nodes with degree ≥ 2.
pub fn average_clustering(g: &dyn GraphView) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut nodes = Vec::new();
    g.visit_nodes(&mut |n| nodes.push(n));
    for n in nodes {
        if let Some(c) = clustering_coefficient(g, n) {
            sum += c;
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// Degree centrality ranking: `(node, degree)` sorted descending, ties
/// by node id.
pub fn degree_centrality(g: &dyn GraphView, top: usize) -> Vec<(NodeId, usize)> {
    let mut scored = Vec::new();
    g.visit_nodes(&mut |n| scored.push((n, g.degree(n))));
    scored.sort_by_key(|&(n, d)| (std::cmp::Reverse(d), n));
    scored.truncate(top);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_graphs::SimpleGraph;

    fn two_triangles_and_isolate() -> (SimpleGraph, Vec<NodeId>) {
        let mut g = SimpleGraph::directed();
        let n: Vec<NodeId> = (0..7).map(|_| g.add_node()).collect();
        // Triangle 0-1-2, triangle 3-4-5 connected by 2→3; node 6 isolated.
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_edge(n[a], n[b]).unwrap();
        }
        (g, n)
    }

    #[test]
    fn components() {
        let (g, n) = two_triangles_and_isolate();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 6);
        assert_eq!(comps[1], vec![n[6]]);
    }

    #[test]
    fn triangles() {
        let (g, _) = two_triangles_and_isolate();
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn triangles_ignore_direction_and_loops() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(c, b).unwrap(); // mixed directions
        g.add_edge(a, c).unwrap();
        g.add_edge(a, a).unwrap(); // self-loop must not crash or count
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn clustering() {
        let (g, n) = two_triangles_and_isolate();
        // Node 0's neighbors {1, 2} are connected: coefficient 1.
        assert_eq!(clustering_coefficient(&g, n[0]), Some(1.0));
        // Node 2's neighbors {0, 1, 3}: only (0,1) connected → 1/3.
        let c2 = clustering_coefficient(&g, n[2]).unwrap();
        assert!((c2 - 1.0 / 3.0).abs() < 1e-9);
        // Isolated node has no coefficient.
        assert_eq!(clustering_coefficient(&g, n[6]), None);
        let avg = average_clustering(&g).unwrap();
        assert!(avg > 0.5 && avg <= 1.0);
    }

    #[test]
    fn centrality_ranking() {
        let (g, n) = two_triangles_and_isolate();
        let top = degree_centrality(&g, 2);
        assert_eq!(top.len(), 2);
        // Nodes 2 and 3 have degree 3 (triangle + bridge).
        assert_eq!(top[0].0, n[2]);
        assert_eq!(top[1].0, n[3]);
        assert_eq!(top[0].1, 3);
    }

    #[test]
    fn empty_graph() {
        let g = SimpleGraph::directed();
        assert!(connected_components(&g).is_empty());
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering(&g), None);
        assert!(degree_centrality(&g, 5).is_empty());
    }
}
