//! A work-stealing-free parallel executor over [`FrozenGraph`].
//!
//! No thread pool, no channels, no new dependencies: every function
//! partitions its node range into contiguous chunks and runs one
//! [`std::thread::scope`] thread per chunk (the snapshot is immutable
//! and `Sync`, so threads share it by reference). Results are reduced
//! on the calling thread in chunk order, which keeps outputs
//! *deterministic* and equal to the sequential algorithms:
//!
//! * [`par_diameter`] / [`par_eccentricities`] — multi-source BFS,
//!   sources split across threads; a max is order-independent.
//! * [`par_connected_components`] — lock-free union-by-min over the
//!   edge array, then a sequential gather that reproduces
//!   [`crate::analysis::connected_components`]'s exact output order.
//! * [`par_triangle_count`] / [`par_average_clustering`] /
//!   [`par_degree_stats`] — per-node loops over cached adjacency;
//!   float sums are reduced in node order so even the average comes
//!   out identical to the sequential fold.
//! * [`par_match_pattern`] — a forwarding shim over the morsel-driven
//!   vectorized executor in [`crate::par_vectorized`], which replaced
//!   the old chunk-per-thread pattern partitioning here (see the shim's
//!   doc for the deprecation note).
//!
//! **Panic isolation.** Every worker body runs inside `catch_unwind`;
//! a panicking worker never unwinds into [`std::thread::scope`] (which
//! would re-panic on the caller and poison the whole call). Instead
//! the reducer notices the lost chunk and degrades: the query is
//! recomputed by the sequential algorithm on the calling thread, so
//! the caller still receives the correct answer — just without the
//! speedup. This is the first rung of the governor's degradation
//! ladder (see DESIGN.md §11).

use crate::frozen::FrozenGraph;
use crate::pattern::Pattern;
use crate::planned::MatchTable;
use gdm_core::{Direction, FxHashMap, GraphView, NodeId};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Fault-injection hook for the degradation tests: when armed, the
/// next worker thread that starts panics once. Not part of the public
/// API surface.
#[doc(hidden)]
pub static INJECT_WORKER_PANIC: AtomicBool = AtomicBool::new(false);

/// Arms [`INJECT_WORKER_PANIC`] so exactly one subsequent worker
/// panics (test hook).
#[doc(hidden)]
pub fn inject_worker_panic_once() {
    INJECT_WORKER_PANIC.store(true, Ordering::SeqCst);
}

#[inline]
pub(crate) fn maybe_inject_panic() {
    if INJECT_WORKER_PANIC.swap(false, Ordering::SeqCst) {
        panic!("injected worker panic (test hook)");
    }
}

/// Runs `body` inside `catch_unwind` on a worker thread, reporting
/// success. Workers never unwind into [`std::thread::scope`] (which
/// would re-panic on the caller); a `false` return tells the reducer
/// to discard the parallel attempt and degrade to the sequential
/// algorithm. The panic payload is intentionally swallowed — the
/// sequential rerun recomputes everything the lost worker owned.
#[inline]
pub(crate) fn isolate<F: FnOnce()>(body: F) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        maybe_inject_panic();
        body();
    }))
    .is_ok()
}

#[inline]
pub(crate) fn clamp_threads(threads: usize, work_items: usize) -> usize {
    threads.max(1).min(work_items.max(1))
}

/// Single-source BFS over the dense arrays. `dist` must be `len()`
/// entries of `u32::MAX` on entry and is restored before returning
/// (only touched entries are reset). Returns the maximum depth
/// reached — the eccentricity of `src` under `direction`.
fn bfs_depth(
    fz: &FrozenGraph,
    src: u32,
    direction: Direction,
    dist: &mut [u32],
    queue: &mut VecDeque<u32>,
    touched: &mut Vec<u32>,
) -> usize {
    dist[src as usize] = 0;
    touched.push(src);
    queue.push_back(src);
    let mut max = 0u32;
    while let Some(u) = queue.pop_front() {
        let next = dist[u as usize] + 1;
        let mut relax = |v: u32| {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = next;
                max = max.max(next);
                touched.push(v);
                queue.push_back(v);
            }
        };
        match direction {
            Direction::Outgoing => fz.out_targets(u).iter().copied().for_each(&mut relax),
            Direction::Incoming => fz.in_targets(u).iter().copied().for_each(&mut relax),
            Direction::Both => {
                fz.out_targets(u).iter().copied().for_each(&mut relax);
                if fz.is_directed() {
                    fz.in_targets(u).iter().copied().for_each(&mut relax);
                }
            }
        }
    }
    for &t in touched.iter() {
        dist[t as usize] = u32::MAX;
    }
    touched.clear();
    max as usize
}

/// Eccentricity of every node (indexed by dense position), computed
/// by parallel multi-source BFS. Agrees with
/// [`crate::summary::eccentricity`] per node.
///
/// Degradation: a panicking worker is contained by `catch_unwind` and
/// the whole result is recomputed sequentially on the calling thread —
/// slower, same answer.
pub fn par_eccentricities(fz: &FrozenGraph, direction: Direction, threads: usize) -> Vec<usize> {
    let n = fz.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = clamp_threads(threads, n);
    let chunk = n.div_ceil(threads);
    let mut ecc = vec![0usize; n];
    let ok = std::thread::scope(|s| {
        let handles: Vec<_> = ecc
            .chunks_mut(chunk)
            .enumerate()
            .map(|(t, slice)| {
                let start = t * chunk;
                s.spawn(move || {
                    isolate(|| {
                        let mut dist = vec![u32::MAX; n];
                        let mut queue = VecDeque::new();
                        let mut touched = Vec::new();
                        for (i, e) in slice.iter_mut().enumerate() {
                            *e = bfs_depth(
                                fz,
                                (start + i) as u32,
                                direction,
                                &mut dist,
                                &mut queue,
                                &mut touched,
                            );
                        }
                    })
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap_or(false))
    });
    if ok {
        return ecc;
    }
    seq_eccentricities(fz, direction)
}

/// Sequential fallback for [`par_eccentricities`]: the same BFS, one
/// source at a time on the calling thread.
fn seq_eccentricities(fz: &FrozenGraph, direction: Direction) -> Vec<usize> {
    let n = fz.len();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    let mut touched = Vec::new();
    (0..n as u32)
        .map(|src| bfs_depth(fz, src, direction, &mut dist, &mut queue, &mut touched))
        .collect()
}

/// Diameter by parallel all-pairs BFS; agrees with
/// [`crate::summary::diameter`].
pub fn par_diameter(fz: &FrozenGraph, direction: Direction, threads: usize) -> Option<usize> {
    let ecc = par_eccentricities(fz, direction, threads);
    ecc.into_iter().max()
}

// ---------------------------------------------------------------------
// Connected components: lock-free union-by-min
// ---------------------------------------------------------------------

/// Finds the root of `x`, halving the path with opportunistic CASes.
fn uf_find(parents: &[AtomicU32], mut x: u32) -> u32 {
    loop {
        let p = parents[x as usize].load(Ordering::Acquire);
        if p == x {
            return x;
        }
        let gp = parents[p as usize].load(Ordering::Acquire);
        if gp != p {
            // Path halving; losing the race just skips one shortcut.
            let _ = parents[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        x = gp;
    }
}

/// Unions the sets of `a` and `b`. Roots only ever point at strictly
/// smaller indices, so the structure stays acyclic under concurrency
/// and the final root of each set is its minimum dense position.
fn uf_union(parents: &[AtomicU32], mut a: u32, mut b: u32) {
    loop {
        a = uf_find(parents, a);
        b = uf_find(parents, b);
        if a == b {
            return;
        }
        let (hi, lo) = if a > b { (a, b) } else { (b, a) };
        if parents[hi as usize]
            .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return;
        }
        a = hi;
        b = lo;
    }
}

/// Weakly connected components. Output is exactly
/// [`crate::analysis::connected_components`]'s: each component sorted
/// ascending, components ordered largest-first with ties in discovery
/// (minimum-dense-member) order.
pub fn par_connected_components(fz: &FrozenGraph, threads: usize) -> Vec<Vec<NodeId>> {
    let n = fz.len();
    if n == 0 {
        return Vec::new();
    }
    let parents: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let threads = clamp_threads(threads, n);
    let chunk = n.div_ceil(threads);
    let ok = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let parents = &parents;
                s.spawn(move || {
                    isolate(|| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        for u in lo..hi {
                            let u = u as u32;
                            for &v in fz.out_targets(u) {
                                uf_union(parents, u, v);
                            }
                            // Reverse runs normally mirror the forward
                            // ones, but a view is free to record
                            // asymmetrically; union over both so the
                            // snapshot's full incidence counts.
                            for &v in fz.in_targets(u) {
                                uf_union(parents, u, v);
                            }
                        }
                    })
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap_or(false))
    });
    if !ok {
        // A lost worker means some unions never happened; the partial
        // union-find cannot be trusted. Degrade to the sequential
        // algorithm (same output contract).
        return crate::analysis::connected_components(fz);
    }
    // Sequential gather: scanning dense positions ascending creates
    // each component at its minimum member, i.e. in the same order the
    // sequential algorithm discovers roots.
    let mut comp_of_root: FxHashMap<u32, usize> = FxHashMap::default();
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for u in 0..n as u32 {
        let root = uf_find(&parents, u);
        let idx = *comp_of_root.entry(root).or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[idx].push(fz.node_at(u));
    }
    for comp in &mut components {
        comp.sort_unstable();
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

// ---------------------------------------------------------------------
// Per-node analysis loops
// ---------------------------------------------------------------------

/// Undirected dense neighbor lists (self-loops dropped, deduplicated,
/// sorted) — the snapshot counterpart of `analysis::neighbor_sets`,
/// built in parallel.
fn dense_neighbor_lists(fz: &FrozenGraph, threads: usize) -> Vec<Vec<u32>> {
    let n = fz.len();
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
    if n == 0 {
        return lists;
    }
    let build = |u: u32, list: &mut Vec<u32>| {
        list.extend(fz.out_targets(u).iter().copied().filter(|&v| v != u));
        if fz.is_directed() {
            list.extend(fz.in_targets(u).iter().copied().filter(|&v| v != u));
        }
        list.sort_unstable();
        list.dedup();
    };
    let threads = clamp_threads(threads, n);
    let chunk = n.div_ceil(threads);
    let ok = std::thread::scope(|s| {
        let handles: Vec<_> = lists
            .chunks_mut(chunk)
            .enumerate()
            .map(|(t, slice)| {
                let start = t * chunk;
                s.spawn(move || {
                    isolate(|| {
                        for (i, list) in slice.iter_mut().enumerate() {
                            build((start + i) as u32, list);
                        }
                    })
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap_or(false))
    });
    if !ok {
        // Rebuild everything sequentially; a panicked worker may have
        // left its chunk half-filled.
        for list in &mut lists {
            list.clear();
        }
        for (u, list) in lists.iter_mut().enumerate() {
            build(u as u32, list);
        }
    }
    lists
}

/// Triangle count; agrees with [`crate::analysis::triangle_count`].
pub fn par_triangle_count(fz: &FrozenGraph, threads: usize) -> usize {
    let n = fz.len();
    if n == 0 {
        return 0;
    }
    let lists = dense_neighbor_lists(fz, threads);
    let lists = &lists;
    let threads = clamp_threads(threads, n);
    let chunk = n.div_ceil(threads);
    let mut partial = vec![0usize; threads];
    let ok = std::thread::scope(|s| {
        let handles: Vec<_> = partial
            .iter_mut()
            .enumerate()
            .map(|(t, out)| {
                s.spawn(move || {
                    isolate(|| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        let mut count = 0usize;
                        for u in lo..hi {
                            let neigh = &lists[u];
                            for (i, &m) in neigh.iter().enumerate() {
                                if m as usize <= u {
                                    continue;
                                }
                                let mset = &lists[m as usize];
                                for &k in &neigh[i + 1..] {
                                    if k > m && mset.binary_search(&k).is_ok() {
                                        count += 1;
                                    }
                                }
                            }
                        }
                        *out = count;
                    })
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap_or(false))
    });
    if !ok {
        return crate::analysis::triangle_count(fz);
    }
    partial.into_iter().sum()
}

/// Average clustering coefficient over nodes with degree ≥ 2; agrees
/// with [`crate::analysis::average_clustering`] (per-node coefficients
/// are computed in parallel, then folded in node order, so even the
/// floating-point sum matches the sequential one).
pub fn par_average_clustering(fz: &FrozenGraph, threads: usize) -> Option<f64> {
    let n = fz.len();
    if n == 0 {
        return None;
    }
    let lists = dense_neighbor_lists(fz, threads);
    let lists = &lists;
    let threads = clamp_threads(threads, n);
    let chunk = n.div_ceil(threads);
    let mut coeffs: Vec<Option<f64>> = vec![None; n];
    let ok = std::thread::scope(|s| {
        let handles: Vec<_> = coeffs
            .chunks_mut(chunk)
            .enumerate()
            .map(|(t, slice)| {
                let start = t * chunk;
                s.spawn(move || {
                    isolate(|| {
                        for (i, out) in slice.iter_mut().enumerate() {
                            let neigh = &lists[start + i];
                            let k = neigh.len();
                            if k < 2 {
                                continue;
                            }
                            let mut closed = 0usize;
                            for (j, &a) in neigh.iter().enumerate() {
                                let aset = &lists[a as usize];
                                for &b in &neigh[j + 1..] {
                                    if aset.binary_search(&b).is_ok() {
                                        closed += 1;
                                    }
                                }
                            }
                            *out = Some(closed as f64 / (k * (k - 1) / 2) as f64);
                        }
                    })
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap_or(false))
    });
    if !ok {
        return crate::analysis::average_clustering(fz);
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for c in coeffs.into_iter().flatten() {
        sum += c;
        count += 1;
    }
    (count > 0).then(|| sum / count as f64)
}

/// Degree statistics `(min, max, average)`; agrees with
/// [`crate::summary::degree_stats`] (the sum is integral, so the
/// average is exact).
pub fn par_degree_stats(fz: &FrozenGraph, threads: usize) -> Option<(usize, usize, f64)> {
    let n = fz.len();
    if n == 0 {
        return None;
    }
    let threads = clamp_threads(threads, n);
    let chunk = n.div_ceil(threads);
    let mut partial = vec![(usize::MAX, 0usize, 0usize); threads];
    let ok = std::thread::scope(|s| {
        let handles: Vec<_> = partial
            .iter_mut()
            .enumerate()
            .map(|(t, out)| {
                s.spawn(move || {
                    isolate(|| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(n);
                        let (mut min, mut max, mut sum) = (usize::MAX, 0usize, 0usize);
                        for u in lo..hi {
                            let d = fz.degree_dense(u as u32);
                            min = min.min(d);
                            max = max.max(d);
                            sum += d;
                        }
                        *out = (min, max, sum);
                    })
                })
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap_or(false))
    });
    if !ok {
        return crate::summary::degree_stats(fz);
    }
    let (mut min, mut max, mut sum) = (usize::MAX, 0usize, 0usize);
    for (lo, hi, s) in partial {
        min = min.min(lo);
        max = max.max(hi);
        sum += s;
    }
    Some((min, max, sum as f64 / n as f64))
}

// ---------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------

/// Parallel subgraph matching.
///
/// **Deprecated in favor of the morsel-driven executor** — this symbol
/// is now a thin forwarding shim over
/// [`crate::match_pattern_par_vectorized`], kept so existing callers
/// and tests compile unchanged. The old chunk-per-thread partitioning
/// (one vectorized pipeline per contiguous root chunk, plan recompiled
/// per chunk) is gone; the morsel driver shares one compiled
/// [`crate::vectorized::BatchPlan`] across all workers, steals
/// fixed-size root morsels from an atomic cursor, and merges
/// thread-local results deterministically — byte-identical to the
/// sequential vectorized executor, not merely set-equal. New code
/// should call [`crate::match_pattern_par_vectorized`] (or its
/// governed twin) directly.
pub fn par_match_pattern(fz: &FrozenGraph, pattern: &Pattern, threads: usize) -> MatchTable {
    crate::par_vectorized::match_pattern_par_vectorized(fz, pattern, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{average_clustering, connected_components, triangle_count};
    use crate::pattern::{canonical, match_pattern, PatternNode};
    use crate::summary::{degree_stats, diameter, eccentricity};
    use gdm_core::props;
    use gdm_graphs::{PropertyGraph, SimpleGraph};

    /// Deterministic scale-free-ish graph: node i links to i/2 and to
    /// a pseudo-random earlier node, plus a few self-loops.
    fn fixture(directed: bool, n: u64) -> SimpleGraph {
        let mut g = if directed {
            SimpleGraph::directed()
        } else {
            SimpleGraph::undirected()
        };
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
        let mut state = 0x9e37u64;
        for i in 1..n as usize {
            g.add_labeled_edge(nodes[i], nodes[i / 2], if i % 3 == 0 { "a" } else { "b" })
                .unwrap();
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % i;
            g.add_edge(nodes[i], nodes[j]).unwrap();
            if i % 17 == 0 {
                g.add_edge(nodes[i], nodes[i]).unwrap();
            }
        }
        g
    }

    #[test]
    fn parallel_diameter_matches_sequential() {
        for directed in [true, false] {
            let g = fixture(directed, 80);
            let fz = FrozenGraph::freeze(&g);
            for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
                assert_eq!(par_diameter(&fz, dir, 4), diameter(&fz, dir), "{dir:?}");
            }
        }
    }

    #[test]
    fn parallel_eccentricities_match_sequential() {
        let g = fixture(true, 60);
        let fz = FrozenGraph::freeze(&g);
        let ecc = par_eccentricities(&fz, Direction::Both, 3);
        for (dense, &e) in ecc.iter().enumerate() {
            let n = fz.node_at(dense as u32);
            assert_eq!(Some(e), eccentricity(&fz, n, Direction::Both));
        }
    }

    #[test]
    fn parallel_components_match_sequential_exactly() {
        for directed in [true, false] {
            let mut g = fixture(directed, 50);
            // A couple of extra isolated nodes and a detached pair.
            let a = g.add_node();
            let b = g.add_node();
            g.add_node();
            g.add_edge(a, b).unwrap();
            let fz = FrozenGraph::freeze(&g);
            assert_eq!(par_connected_components(&fz, 4), connected_components(&fz));
        }
    }

    #[test]
    fn parallel_triangles_and_clustering_match() {
        let g = fixture(false, 70);
        let fz = FrozenGraph::freeze(&g);
        assert_eq!(par_triangle_count(&fz, 4), triangle_count(&fz));
        let par = par_average_clustering(&fz, 4);
        let seq = average_clustering(&fz);
        match (par, seq) {
            (Some(p), Some(s)) => assert!((p - s).abs() < 1e-12, "{p} vs {s}"),
            (p, s) => assert_eq!(p, s),
        }
    }

    #[test]
    fn parallel_degree_stats_match() {
        let g = fixture(true, 90);
        let fz = FrozenGraph::freeze(&g);
        assert_eq!(par_degree_stats(&fz, 4), degree_stats(&fz));
    }

    #[test]
    fn parallel_pattern_reproduces_sequential_bindings() {
        let mut g = PropertyGraph::new();
        let people: Vec<NodeId> = (0..12)
            .map(|i| g.add_node("person", props! { "i" => i }))
            .collect();
        let hub = g.add_node("company", props! {});
        for w in people.windows(2) {
            g.add_edge(w[0], w[1], "knows", props! {}).unwrap();
        }
        for &p in people.iter().step_by(3) {
            g.add_edge(p, hub, "works_at", props! {}).unwrap();
        }
        let fz = FrozenGraph::freeze_attributed(&g);

        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x").with_label("person"));
        let y = p.node(PatternNode::var("y").with_label("person"));
        let c = p.node(PatternNode::var("c").with_label("company"));
        p.edge(x, y, Some("knows")).unwrap();
        p.edge(x, c, Some("works_at")).unwrap();

        let seq = match_pattern(&fz, &p);
        for threads in [1, 2, 4, 7] {
            let par = par_match_pattern(&fz, &p, threads);
            assert_eq!(canonical(&par.to_bindings()), canonical(&seq));
            assert_eq!(par.len(), seq.len());
        }
    }

    #[test]
    fn parallel_pattern_spawn_path_matches_sequential() {
        // 80 unlabeled roots clears PAR_PATTERN_MIN_ROOTS, so this
        // exercises the actual scoped-thread fan-out.
        let g = fixture(true, 80);
        let fz = FrozenGraph::freeze(&g);
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x"));
        let y = p.node(PatternNode::var("y"));
        p.edge(x, y, Some("a")).unwrap();
        let seq = match_pattern(&fz, &p);
        assert!(!seq.is_empty());
        for threads in [2, 4] {
            let par = par_match_pattern(&fz, &p, threads);
            assert_eq!(par.len(), seq.len());
            assert_eq!(canonical(&par.to_bindings()), canonical(&seq));
        }
    }

    #[test]
    fn pattern_with_unknown_label_matches_nothing() {
        let g = fixture(true, 10);
        let fz = FrozenGraph::freeze(&g);
        let mut p = Pattern::new();
        p.node(PatternNode::var("x").with_label("nope"));
        assert!(par_match_pattern(&fz, &p, 4).is_empty());
        assert!(match_pattern(&fz, &p).is_empty());
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = SimpleGraph::directed();
        let fz = FrozenGraph::freeze(&g);
        assert_eq!(par_diameter(&fz, Direction::Both, 4), None);
        assert!(par_connected_components(&fz, 4).is_empty());
        assert_eq!(par_triangle_count(&fz, 4), 0);
        assert_eq!(par_average_clustering(&fz, 4), None);
        assert_eq!(par_degree_stats(&fz, 4), None);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    /// The injection hook is process-global; these tests take this
    /// lock so concurrent test threads do not steal each other's
    /// armed panic. (A stolen panic is still *safe* — any `par_*`
    /// call degrades to the sequential answer — it just stops the
    /// assertion below from being meaningful.)
    static PANIC_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn injected_worker_panic_degrades_diameter_to_sequential() {
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = fixture(true, 80);
        let fz = FrozenGraph::freeze(&g);
        let want = diameter(&fz, Direction::Both);
        inject_worker_panic_once();
        let got = par_diameter(&fz, Direction::Both, 4);
        assert_eq!(got, want, "panicking worker must not change the answer");
        assert!(
            !INJECT_WORKER_PANIC.load(Ordering::SeqCst),
            "the injected panic fired"
        );
    }

    #[test]
    fn injected_worker_panic_degrades_pattern_match_to_sequential() {
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = fixture(true, 80);
        let fz = FrozenGraph::freeze(&g);
        let mut p = Pattern::new();
        let x = p.node(PatternNode::var("x"));
        let y = p.node(PatternNode::var("y"));
        p.edge(x, y, Some("a")).unwrap();
        let seq = match_pattern(&fz, &p);
        assert!(!seq.is_empty());
        inject_worker_panic_once();
        let par = par_match_pattern(&fz, &p, 4);
        assert_eq!(canonical(&par.to_bindings()), canonical(&seq));
        assert_eq!(par.len(), seq.len());
    }

    #[test]
    fn injected_worker_panic_degrades_components_and_counts() {
        let _guard = PANIC_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = fixture(false, 70);
        let fz = FrozenGraph::freeze(&g);
        inject_worker_panic_once();
        assert_eq!(par_connected_components(&fz, 4), connected_components(&fz));
        inject_worker_panic_once();
        assert_eq!(par_triangle_count(&fz, 4), triangle_count(&fz));
        inject_worker_panic_once();
        assert_eq!(par_degree_stats(&fz, 4), degree_stats(&fz));
        inject_worker_panic_once();
        let par = par_average_clustering(&fz, 4);
        let seq = average_clustering(&fz);
        match (par, seq) {
            (Some(p), Some(s)) => assert!((p - s).abs() < 1e-12),
            (p, s) => assert_eq!(p, s),
        }
    }
}
