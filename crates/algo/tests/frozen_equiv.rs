//! Property-based equivalence: a [`FrozenGraph`] must answer every
//! essential query exactly as the live view it was frozen from, and
//! the parallel executors must agree with their sequential
//! counterparts — on arbitrary graphs, including self-loops, parallel
//! edges, disconnected pieces, and both orientations.
//!
//! The CSR snapshot is built by *recording* what the live view's
//! visitors yield, so these tests pin the whole contract: adjacency,
//! reachability, shortest paths (unidirectional and bidirectional),
//! regular paths (visitor path and the label-run fast path), pattern
//! matching, summarization, and the analysis functions.

use gdm_algo::analysis::{average_clustering, connected_components, triangle_count};
use gdm_algo::pattern::{canonical, match_pattern, Pattern, PatternNode};
use gdm_algo::summary::eccentricity;
use gdm_algo::{
    bfs_order, bidirectional_shortest_path, degree_stats, diameter, distance,
    fixed_length_path_exists, frozen_regular_path_exists, graph_order, graph_size, is_reachable,
    k_neighborhood, nodes_adjacent, par_average_clustering, par_connected_components,
    par_degree_stats, par_diameter, par_eccentricities, par_match_pattern, par_triangle_count,
    regular_path_exists, shortest_path, FrozenGraph, LabelRegex,
};
use gdm_core::{Direction, GraphView, NodeId, PropertyMap, Value};
use gdm_graphs::{PropertyGraph, SimpleGraph};
use proptest::prelude::*;

const EDGE_LABELS: [&str; 3] = ["a", "b", "c"];
const NODE_LABELS: [&str; 3] = ["person", "place", "thing"];

/// Builds a `SimpleGraph` from drawn data: endpoints are reduced
/// modulo `n`, so self-loops and parallel edges occur naturally.
fn build_simple(directed: bool, n: usize, raw_edges: &[(u64, u64, usize)]) -> SimpleGraph {
    let mut g = if directed {
        SimpleGraph::directed()
    } else {
        SimpleGraph::undirected()
    };
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    for &(a, b, lab) in raw_edges {
        let (from, to) = (nodes[a as usize % n], nodes[b as usize % n]);
        if lab < EDGE_LABELS.len() {
            g.add_labeled_edge(from, to, EDGE_LABELS[lab]).unwrap();
        } else {
            g.add_edge(from, to).unwrap();
        }
    }
    g
}

/// Builds an attributed graph with labeled nodes for the pattern
/// matching and attribute-preservation properties.
fn build_property(n: usize, raw_edges: &[(u64, u64, usize)]) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            g.add_node(
                NODE_LABELS[i % NODE_LABELS.len()],
                PropertyMap::new().with("idx", Value::Int(i as i64)),
            )
        })
        .collect();
    for &(a, b, lab) in raw_edges {
        let (from, to) = (nodes[a as usize % n], nodes[b as usize % n]);
        g.add_edge(
            from,
            to,
            EDGE_LABELS[lab % EDGE_LABELS.len()],
            PropertyMap::new(),
        )
        .unwrap();
    }
    g
}

fn all_directions() -> [Direction; 3] {
    [Direction::Outgoing, Direction::Incoming, Direction::Both]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every structural query agrees between a live `SimpleGraph` and
    /// its frozen snapshot — including exact visit/BFS orders, not
    /// just set equality.
    #[test]
    fn frozen_matches_live_on_random_graphs(
        directed in prop::bool::ANY,
        n in 1usize..12,
        raw_edges in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000, 0usize..4), 0..40),
    ) {
        let g = build_simple(directed, n, &raw_edges);
        let fz = FrozenGraph::freeze(&g);

        prop_assert_eq!(graph_order(&g), graph_order(&fz));
        prop_assert_eq!(graph_size(&g), graph_size(&fz));
        prop_assert_eq!(degree_stats(&g), degree_stats(&fz));
        prop_assert_eq!(connected_components(&g), connected_components(&fz));
        prop_assert_eq!(triangle_count(&g), triangle_count(&fz));
        prop_assert_eq!(average_clustering(&g), average_clustering(&fz));

        let nodes: Vec<NodeId> = g.node_ids();
        for &a in &nodes {
            for dir in all_directions() {
                prop_assert_eq!(eccentricity(&g, a, dir), eccentricity(&fz, a, dir));
                prop_assert_eq!(
                    k_neighborhood(&g, a, 2, dir),
                    k_neighborhood(&fz, a, 2, dir)
                );
            }
            prop_assert_eq!(g.out_degree(a), fz.out_degree(a));
            prop_assert_eq!(g.in_degree(a), fz.in_degree(a));
            prop_assert_eq!(g.degree(a), fz.degree(a));
            for dir in all_directions() {
                prop_assert_eq!(bfs_order(&g, a, dir), bfs_order(&fz, a, dir));
            }
            for &b in &nodes {
                prop_assert_eq!(nodes_adjacent(&g, a, b), nodes_adjacent(&fz, a, b));
                prop_assert_eq!(is_reachable(&g, a, b), is_reachable(&fz, a, b));
                prop_assert_eq!(distance(&g, a, b), distance(&fz, a, b));
                prop_assert_eq!(fz.frozen_distance(a, b), distance(&g, a, b));
                prop_assert_eq!(
                    shortest_path(&g, a, b).map(|p| p.len()),
                    shortest_path(&fz, a, b).map(|p| p.len())
                );
                // The bidirectional variant must agree with plain BFS
                // on both representations (the undirected self-loop
                // regression lives here).
                prop_assert_eq!(
                    bidirectional_shortest_path(&g, a, b).map(|p| p.len()),
                    distance(&g, a, b)
                );
                prop_assert_eq!(
                    bidirectional_shortest_path(&fz, a, b).map(|p| p.len()),
                    distance(&fz, a, b)
                );
                prop_assert_eq!(
                    fixed_length_path_exists(&g, a, b, 3),
                    fixed_length_path_exists(&fz, a, b, 3)
                );
            }
        }
        for dir in all_directions() {
            prop_assert_eq!(diameter(&g, dir), diameter(&fz, dir));
        }
    }

    /// Regular path queries agree three ways: live visitor, frozen
    /// visitor, and the frozen label-run fast path.
    #[test]
    fn frozen_regular_paths_match_live(
        directed in prop::bool::ANY,
        n in 1usize..10,
        raw_edges in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000, 0usize..4), 0..30),
    ) {
        let g = build_simple(directed, n, &raw_edges);
        let fz = FrozenGraph::freeze(&g);
        let exprs = ["a", "a*", "a b", "(a|b)*", "a (a|b)* c", "b+"];
        for expr in exprs {
            let re = LabelRegex::compile(expr).unwrap();
            for &a in &g.node_ids() {
                for &b in &g.node_ids() {
                    let live = regular_path_exists(&g, a, b, &re);
                    prop_assert_eq!(live, regular_path_exists(&fz, a, b, &re));
                    prop_assert_eq!(live, frozen_regular_path_exists(&fz, a, b, &re));
                }
            }
        }
    }

    /// The parallel executors return exactly what the sequential
    /// algorithms return on the same snapshot, at 1 and 4 threads.
    #[test]
    fn parallel_agrees_with_sequential(
        directed in prop::bool::ANY,
        n in 1usize..14,
        raw_edges in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000, 0usize..4), 0..50),
    ) {
        let g = build_simple(directed, n, &raw_edges);
        let fz = FrozenGraph::freeze(&g);
        for threads in [1usize, 4] {
            for dir in all_directions() {
                prop_assert_eq!(par_diameter(&fz, dir, threads), diameter(&fz, dir));
                let ecc = par_eccentricities(&fz, dir, threads);
                for (dense, &e) in ecc.iter().enumerate() {
                    prop_assert_eq!(
                        Some(e),
                        eccentricity(&fz, fz.node_at(dense as u32), dir)
                    );
                }
            }
            prop_assert_eq!(
                par_connected_components(&fz, threads),
                connected_components(&fz)
            );
            prop_assert_eq!(par_triangle_count(&fz, threads), triangle_count(&fz));
            prop_assert_eq!(par_average_clustering(&fz, threads), average_clustering(&fz));
            prop_assert_eq!(par_degree_stats(&fz, threads), degree_stats(&fz));
        }
    }

    /// Pattern matching agrees between live attributed graphs, frozen
    /// snapshots, and the prefiltered parallel matcher — with binding
    /// lists compared verbatim (same order), not just canonically.
    #[test]
    fn pattern_matching_agrees_on_property_graphs(
        n in 1usize..9,
        raw_edges in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000, 0usize..3), 0..25),
        shape in 0usize..4,
    ) {
        let g = build_property(n, &raw_edges);
        let fz = FrozenGraph::freeze_attributed(&g);

        let mut pat = Pattern::new();
        match shape {
            0 => {
                // x:person -a-> y (any label)
                let x = pat.node(PatternNode::var("x").with_label("person"));
                let y = pat.node(PatternNode::var("y"));
                pat.edge(x, y, Some("a")).unwrap();
            }
            1 => {
                // unlabeled two-hop chain
                let x = pat.node(PatternNode::var("x"));
                let y = pat.node(PatternNode::var("y"));
                let z = pat.node(PatternNode::var("z"));
                pat.edge(x, y, None).unwrap();
                pat.edge(y, z, Some("b")).unwrap();
            }
            2 => {
                // undirected pair with node labels on both ends
                let x = pat.node(PatternNode::var("x").with_label("place"));
                let y = pat.node(PatternNode::var("y").with_label("thing"));
                pat.edge_undirected(x, y, None).unwrap();
            }
            _ => {
                // triangle
                let x = pat.node(PatternNode::var("x"));
                let y = pat.node(PatternNode::var("y"));
                let z = pat.node(PatternNode::var("z"));
                pat.edge(x, y, None).unwrap();
                pat.edge(y, z, None).unwrap();
                pat.edge(z, x, None).unwrap();
            }
        }

        let live = match_pattern(&g, &pat);
        let frozen_seq = match_pattern(&fz, &pat);
        prop_assert_eq!(canonical(&live), canonical(&frozen_seq));
        for threads in [1usize, 4] {
            // Set equality: the parallel matcher batches seeds per
            // partition, so row order may differ from the sequential
            // matcher but the binding set must be identical.
            let par = par_match_pattern(&fz, &pat, threads);
            prop_assert_eq!(canonical(&par.to_bindings()), canonical(&frozen_seq));
        }
    }
}

/// Deterministic regression: undirected self-loops must count once per
/// incidence-convention everywhere, and bidirectional search must
/// agree with plain BFS in their presence.
#[test]
fn undirected_self_loop_agreement() {
    let mut g = SimpleGraph::undirected();
    let a = g.add_node();
    let b = g.add_node();
    let c = g.add_node();
    g.add_labeled_edge(a, a, "a").unwrap();
    g.add_labeled_edge(a, b, "b").unwrap();
    g.add_labeled_edge(c, c, "a").unwrap();
    let fz = FrozenGraph::freeze(&g);

    for &n in &[a, b, c] {
        assert_eq!(g.degree(n), fz.degree(n));
        assert_eq!(g.out_degree(n), fz.out_degree(n));
        assert_eq!(g.in_degree(n), fz.in_degree(n));
    }
    for &x in &[a, b, c] {
        for &y in &[a, b, c] {
            let d = distance(&g, x, y);
            assert_eq!(d, distance(&fz, x, y));
            assert_eq!(bidirectional_shortest_path(&g, x, y).map(|p| p.len()), d);
            assert_eq!(bidirectional_shortest_path(&fz, x, y).map(|p| p.len()), d);
        }
    }
    // The self-loop keeps `c` at eccentricity 0, not 1.
    assert_eq!(eccentricity(&fz, c, Direction::Both), Some(0));
    assert_eq!(distance(&fz, c, c), Some(0));
}
