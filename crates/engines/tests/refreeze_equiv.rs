//! Incremental re-freeze equivalence across every engine emulation.
//!
//! For each of the nine engines: build a base graph through the typed
//! facade, take a full snapshot, apply a random mutation batch, then
//! check that [`GraphEngine::refreeze`] (which consumes the engine's
//! recorded [`gdm_core::DeltaTracker`] delta) produces a snapshot whose
//! *content* is identical to a from-scratch full freeze of the live
//! graph. Ops an engine refuses (`Unsupported`, constraint errors,
//! stale ids after cascading deletes) are simply skipped — the point is
//! that whatever the engine *did* accept must be reflected in the
//! incremental snapshot.

use std::sync::atomic::{AtomicUsize, Ordering};

use gdm_core::{props, AttributedView, EdgeId, GraphView, NodeId, PropertyMap, Value};
use gdm_engines::{all_engines, GraphEngine};
use proptest::prelude::*;

/// One abstract mutation; selectors index the live id lists modulo
/// their length so every generated op is applicable to every engine.
#[derive(Debug, Clone)]
enum Op {
    AddNode(u8, i64),
    AddEdge(usize, usize),
    SetNodeAttr(usize, i64),
    SetEdgeAttr(usize, i64),
    DelNode(usize),
    DelEdge(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0i64..100).prop_map(|(l, v)| Op::AddNode(l, v)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::AddEdge(a, b)),
        (0usize..64, 0i64..100).prop_map(|(s, v)| Op::SetNodeAttr(s, v)),
        (0usize..64, 0i64..100).prop_map(|(s, v)| Op::SetEdgeAttr(s, v)),
        (0usize..64).prop_map(Op::DelNode),
        (0usize..64).prop_map(Op::DelEdge),
    ]
}

const LABELS: [&str; 3] = ["person", "place", "thing"];

/// Applies `ops`, maintaining the live node/edge id lists. Every error
/// is ignored: refusals must leave both the graph and the delta in a
/// consistent state, which the equivalence assertion then verifies.
fn apply(
    engine: &mut Box<dyn GraphEngine>,
    ops: &[Op],
    nodes: &mut Vec<NodeId>,
    edges: &mut Vec<EdgeId>,
) {
    for op in ops {
        match *op {
            Op::AddNode(l, v) => {
                let label = LABELS[l as usize % LABELS.len()];
                // Degrade towards the engine's capabilities: G-Store
                // refuses attributes, AllegroGraph refuses labels too.
                let made = engine
                    .create_node(Some(label), props! { "age" => v })
                    .or_else(|_| engine.create_node(Some(label), PropertyMap::new()))
                    .or_else(|_| engine.create_node(None, PropertyMap::new()));
                if let Ok(id) = made {
                    nodes.push(id);
                }
            }
            Op::AddEdge(a, b) => {
                if nodes.is_empty() {
                    continue;
                }
                let from = nodes[a % nodes.len()];
                let to = nodes[b % nodes.len()];
                let made = engine
                    .create_edge(from, to, Some("knows"), props! { "w" => 1i64 })
                    .or_else(|_| engine.create_edge(from, to, Some("knows"), PropertyMap::new()));
                if let Ok(id) = made {
                    edges.push(id);
                }
            }
            Op::SetNodeAttr(s, v) => {
                if nodes.is_empty() {
                    continue;
                }
                let n = nodes[s % nodes.len()];
                let _ = engine.set_node_attribute(n, "age", Value::from(v));
            }
            Op::SetEdgeAttr(s, v) => {
                if edges.is_empty() {
                    continue;
                }
                let e = edges[s % edges.len()];
                let _ = engine.set_edge_attribute(e, "w", Value::from(v));
            }
            Op::DelNode(s) => {
                if nodes.is_empty() {
                    continue;
                }
                let i = s % nodes.len();
                if engine.delete_node(nodes[i]).is_ok() {
                    nodes.swap_remove(i);
                }
            }
            Op::DelEdge(s) => {
                if edges.is_empty() {
                    continue;
                }
                let i = s % edges.len();
                if engine.delete_edge(edges[i]).is_ok() {
                    edges.swap_remove(i);
                }
            }
        }
    }
}

/// Content-canonical form of a snapshot: labelled/propertied node rows
/// and edge rows, independent of dense row ordering.
type Canon = (
    Vec<(u64, Option<String>, Vec<(String, String)>)>,
    Vec<(u64, u64, u64, Option<String>, Vec<(String, String)>)>,
);

fn canon(fz: &gdm_algo::FrozenGraph) -> Canon {
    let mut nodes = Vec::new();
    fz.visit_nodes(&mut |n| {
        let label = fz
            .node_label(n)
            .and_then(|s| fz.label_text(s))
            .map(str::to_owned);
        let mut ps = Vec::new();
        fz.visit_node_properties(n, &mut |k, v| ps.push((k.to_owned(), format!("{v:?}"))));
        ps.sort();
        nodes.push((n.raw(), label, ps));
    });
    nodes.sort();
    let mut edges = Vec::new();
    fz.visit_nodes(&mut |n| {
        fz.visit_out_edges(n, &mut |e| {
            let label = e.label.and_then(|s| fz.label_text(s)).map(str::to_owned);
            let mut ps = Vec::new();
            fz.visit_edge_properties(e.id, &mut |k, v| ps.push((k.to_owned(), format!("{v:?}"))));
            ps.sort();
            edges.push((e.id.raw(), e.from.raw(), e.to.raw(), label, ps));
        });
    });
    edges.sort();
    (nodes, edges)
}

/// A deterministic seed batch so the base snapshot is non-trivial.
fn seed_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..24i64 {
        ops.push(Op::AddNode((i % 3) as u8, i));
    }
    for i in 0..32usize {
        ops.push(Op::AddEdge(i, (i * 7 + 3) % 24));
    }
    ops
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> std::path::PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gdm-refreeze-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// refreeze ≡ full freeze on every engine, for arbitrary accepted
    /// mutation batches between the two snapshots.
    #[test]
    fn incremental_refreeze_matches_full_freeze(batch in prop::collection::vec(op_strategy(), 1..40)) {
        let dir = fresh_dir();
        for mut engine in all_engines(&dir).unwrap() {
            let mut nodes = Vec::new();
            let mut edges = Vec::new();
            apply(&mut engine, &seed_ops(), &mut nodes, &mut edges);
            let prev = engine.snapshot().unwrap();

            apply(&mut engine, &batch, &mut nodes, &mut edges);
            let inc = engine.refreeze(&prev).unwrap();
            let full = engine.snapshot().unwrap();

            prop_assert_eq!(
                canon(&inc),
                canon(&full),
                "{}: incremental snapshot diverged from full freeze",
                engine.name()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The empty-delta fast path: re-freezing with no interleaved mutations
/// keeps the previous epoch (the snapshot is still exact) on every
/// engine.
#[test]
fn refreeze_without_mutations_keeps_epoch() {
    let dir = fresh_dir();
    for mut engine in all_engines(&dir).unwrap() {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        apply(&mut engine, &seed_ops(), &mut nodes, &mut edges);
        let prev = engine.snapshot().unwrap();
        let again = engine.refreeze(&prev).unwrap();
        assert_eq!(
            prev.epoch(),
            again.epoch(),
            "{}: unchanged graph must keep its snapshot epoch",
            engine.name()
        );
        assert_eq!(canon(&prev), canon(&again), "{}", engine.name());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mutations after a re-freeze advance the epoch: the refreshed
/// snapshot must expose the new data.
#[test]
fn refreeze_exposes_new_data_with_higher_epoch() {
    let dir = fresh_dir();
    for mut engine in all_engines(&dir).unwrap() {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        apply(&mut engine, &seed_ops(), &mut nodes, &mut edges);
        let prev = engine.snapshot().unwrap();
        let before = nodes.len();
        // Connect the new node (index 24: the seed made exactly 24) so
        // incidence-derived views — RDF counts only terms that appear
        // in triples — see it too.
        apply(
            &mut engine,
            &[Op::AddNode(0, 7), Op::AddEdge(24, 0)],
            &mut nodes,
            &mut edges,
        );
        assert!(nodes.len() > before, "{}: seed node refused", engine.name());
        let next = engine.refreeze(&prev).unwrap();
        assert!(
            next.epoch() > prev.epoch(),
            "{}: mutated graph must advance the snapshot epoch",
            engine.name()
        );
        assert_eq!(
            next.len(),
            prev.len() + 1,
            "{}: refreshed snapshot must contain the new node",
            engine.name()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
