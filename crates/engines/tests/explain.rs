//! `explain()` smoke coverage: the engines that lower their dialect to
//! the shared algebra must produce plan text that
//! [`gdm_query::ExplainPlan::parse`] reads back; the rest must refuse
//! with a `GdmError::Unsupported`, never panic.

use gdm_core::{props, GdmError};
use gdm_engines::neo4j::Neo4jEngine;
use gdm_engines::sones::SonesEngine;
use gdm_engines::{all_engines, GraphEngine};
use gdm_query::{Access, ExplainPlan};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gdm-explain-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn neo4j_explain_parses_and_reports_pushdown() {
    let mut e = Neo4jEngine::open(&temp_dir("neo")).unwrap();
    for (name, age) in [("ada", 36), ("bob", 25), ("cleo", 41)] {
        e.create_node(Some("Person"), props! { "name" => name, "age" => age })
            .unwrap();
    }
    let text = e
        .explain("MATCH (p:Person) WHERE p.age = 36 RETURN p.name")
        .unwrap();
    let plan = ExplainPlan::parse(&text).unwrap();
    assert_eq!(plan.nodes, 1);
    assert_eq!(plan.pushed, 1, "equality predicate pushed into pattern");
    assert_eq!(plan.residual, 0);
    assert_eq!(plan.steps[0].var, "p");
    assert_eq!(plan.steps[0].label.as_deref(), Some("Person"));

    // Explaining does not execute: results still come from the query.
    let rs = e
        .execute_query("MATCH (p:Person) WHERE p.age = 36 RETURN p.name")
        .unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn sones_explain_parses() {
    let mut e = SonesEngine::new();
    e.execute_ddl("CREATE VERTEX TYPE Person ATTRIBUTES (String name, Int age)")
        .unwrap();
    e.execute_dml("INSERT INTO Person VALUES (name = 'ana', age = 30)")
        .unwrap();
    e.execute_dml("INSERT INTO Person VALUES (name = 'bob', age = 45)")
        .unwrap();
    let text = e
        .explain("FROM Person p SELECT p.name WHERE p.age = 45")
        .unwrap();
    let plan = ExplainPlan::parse(&text).unwrap();
    assert_eq!(plan.nodes, 1);
    assert!(plan.pushed >= 1);
    assert!(matches!(plan.steps[0].access, Access::Index | Access::Scan));
}

#[test]
fn every_emulation_answers_or_refuses_explain() {
    let dir = temp_dir("all");
    let mut parsed = 0;
    for engine in all_engines(&dir).unwrap() {
        match engine.explain("MATCH (n) RETURN n") {
            Ok(text) => {
                ExplainPlan::parse(&text)
                    .unwrap_or_else(|e| panic!("{} rendered unparseable plan: {e}", engine.name()));
                parsed += 1;
            }
            // A refusal must be an explicit Unsupported or a dialect
            // parse error — the probe text is Cypher, which most
            // dialects reject before planning.
            Err(GdmError::Unsupported { .. } | GdmError::Parse { .. }) => {}
            Err(other) => panic!("{}: unexpected explain error {other}", engine.name()),
        }
    }
    assert!(parsed >= 1, "at least Neo4j explains the Cypher probe");
}
