//! VertexDB emulation.
//!
//! The paper: "VertexDB implements a graph store on top of
//! TokyoCabinet (a B-tree key/value disk store)." The emulation is a
//! [`KvGraph`] over `gdm-storage`'s [`DiskBTree`] — the TokyoCabinet
//! stand-in — giving exactly the profile the paper records: a simple
//! directed edge-labeled graph store (Table III), external + backend
//! storage without secondary indexes (Table I), an API and nothing
//! else (Tables II and V), and essential-query support limited to
//! adjacency, k-neighborhood, fixed-length paths, and summarization
//! (Table VII).

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use crate::kvgraph::KvGraph;
use gdm_algo::adjacency::{k_neighborhood, nodes_adjacent};
use gdm_algo::paths::fixed_length_paths;
use gdm_algo::regular::{regular_path_exists, LabelRegex};
use gdm_algo::summary;
use gdm_core::{
    DeltaTracker, Direction, EdgeId, GdmError, GraphView, NodeId, PropertyMap, Result, Support,
    Value,
};
use gdm_query::eval::ResultSet;
use gdm_storage::DiskBTree;
use std::cell::RefCell;
use std::path::Path;

const NAME: &str = "VertexDB";
const PATH_BUDGET: usize = 1_000_000;

/// The VertexDB emulation.
pub struct VertexDbEngine {
    graph: KvGraph,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze (`RefCell`: snapshots reset it through
    /// `&self`; engines are not `Send`, so access is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl VertexDbEngine {
    /// Opens (or creates) the store under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        let tree = DiskBTree::file(&dir.join("vertexdb.tc"), 256)?;
        Ok(Self {
            graph: KvGraph::new(Box::new(tree))?,
            delta: RefCell::new(DeltaTracker::new()),
        })
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }
}

impl GraphEngine for VertexDbEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::None,
            graphical_ql: Support::None,
            query_language_grade: Support::None,
            backend_storage: Support::Full,
            blurb: "graph store on top of TokyoCabinet (a B-tree key/value disk store)",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        if label.is_some() {
            return self.unsupported("node labels (simple graph model)");
        }
        if !props.is_empty() {
            return self.unsupported("node attributes (simple graph model)");
        }
        let n = self.graph.add_node(None, &props)?;
        self.delta.get_mut().touch_node(n.raw());
        Ok(n)
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        if !props.is_empty() {
            return self.unsupported("edge attributes (simple graph model)");
        }
        let e = self.graph.add_edge(from, to, label, &props)?;
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(e)
    }

    fn create_hyperedge(
        &mut self,
        _label: &str,
        _targets: &[NodeId],
        _props: PropertyMap,
    ) -> Result<EdgeId> {
        self.unsupported("hyperedges")
    }

    fn create_edge_on_edge(&mut self, _from: EdgeId, _to: NodeId, _label: &str) -> Result<EdgeId> {
        self.unsupported("edges between edges")
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, _n: NodeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("node attributes")
    }

    fn set_edge_attribute(&mut self, _e: EdgeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("edge attributes")
    }

    fn node_attribute(&self, _n: NodeId, _key: &str) -> Result<Option<Value>> {
        self.unsupported("node attributes")
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        self.graph.delete_node(n)?;
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        self.graph.delete_edge(e)?;
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        GraphView::node_count(&self.graph)
    }

    fn edge_count(&self) -> usize {
        GraphView::edge_count(&self.graph)
    }

    fn define_node_type(&mut self, _def: gdm_schema::NodeTypeDef) -> Result<()> {
        self.unsupported("schema definitions")
    }

    fn define_edge_type(&mut self, _def: gdm_schema::EdgeTypeDef) -> Result<()> {
        self.unsupported("schema definitions")
    }

    fn install_constraint(&mut self, _c: gdm_schema::Constraint) -> Result<()> {
        self.unsupported("integrity constraints")
    }

    fn execute_ddl(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data definition language")
    }

    fn execute_dml(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data manipulation language")
    }

    fn execute_query(&mut self, _query: &str) -> Result<ResultSet> {
        self.unsupported("a query language")
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, _func: AnalysisFunc) -> Result<Value> {
        self.unsupported("analysis functions")
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(nodes_adjacent(&self.graph, a, b))
    }

    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>> {
        Ok(k_neighborhood(&self.graph, n, k, Direction::Outgoing))
    }

    fn fixed_length_paths(&self, a: NodeId, b: NodeId, len: usize) -> Result<usize> {
        Ok(fixed_length_paths(&self.graph, a, b, len, PATH_BUDGET)?.len())
    }

    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool> {
        let regex = LabelRegex::compile(expr)?;
        Ok(regular_path_exists(&self.graph, a, b, &regex))
    }

    fn shortest_path(&self, _a: NodeId, _b: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.unsupported("shortest path queries")
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        self.unsupported("pattern matching queries")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze(&self.graph);
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze_structural(&self.graph, prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // An HTTP-fronted store: request-scale limits — short deadline
        // and a response-size row cap, as a web endpoint would impose.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(5))
            .with_node_visits(1_000_000)
            .with_rows(100_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        summarize_simple(&self.graph, func, NAME)
    }

    fn persist(&mut self) -> Result<()> {
        self.graph.flush()
    }

    fn create_index(&mut self, _property: &str) -> Result<()> {
        self.unsupported("secondary indexes")
    }

    fn lookup_by_property(&self, _key: &str, _value: &Value) -> Result<Vec<NodeId>> {
        self.unsupported("property lookups (no attributes)")
    }
}

/// Shared structural summarization for simple-graph engines (no
/// property aggregates).
pub(crate) fn summarize_simple(
    g: &dyn GraphView,
    func: SummaryFunc,
    engine: &'static str,
) -> Result<Value> {
    Ok(match func {
        SummaryFunc::Order => Value::Int(summary::graph_order(g) as i64),
        SummaryFunc::Size => Value::Int(summary::graph_size(g) as i64),
        SummaryFunc::Degree(n) => Value::Int(g.degree(n) as i64),
        SummaryFunc::MinDegree => match summary::degree_stats(g) {
            Some((min, _, _)) => Value::Int(min as i64),
            None => Value::Null,
        },
        SummaryFunc::MaxDegree => match summary::degree_stats(g) {
            Some((_, max, _)) => Value::Int(max as i64),
            None => Value::Null,
        },
        SummaryFunc::AvgDegree => match summary::degree_stats(g) {
            Some((_, _, avg)) => Value::Float(avg),
            None => Value::Null,
        },
        SummaryFunc::Distance(a, b) => match summary::distance_between(g, a, b) {
            Some(d) => Value::Int(d as i64),
            None => Value::Null,
        },
        SummaryFunc::Diameter => match summary::diameter(g, Direction::Outgoing) {
            Some(d) => Value::Int(d as i64),
            None => Value::Null,
        },
        SummaryFunc::PropertyAggregate(..) => {
            return Err(GdmError::unsupported(
                engine,
                "property aggregation (no attributes)".to_owned(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_engine(tag: &str) -> VertexDbEngine {
        let dir = std::env::temp_dir().join(format!("gdm-vdb-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        VertexDbEngine::open(&dir).unwrap()
    }

    #[test]
    fn basic_graph_operations() {
        let mut e = temp_engine("basic");
        let a = e.create_node(None, PropertyMap::new()).unwrap();
        let b = e.create_node(None, PropertyMap::new()).unwrap();
        let c = e.create_node(None, PropertyMap::new()).unwrap();
        e.create_edge(a, b, Some("links"), PropertyMap::new())
            .unwrap();
        e.create_edge(b, c, Some("links"), PropertyMap::new())
            .unwrap();
        assert_eq!(e.node_count(), 3);
        assert!(e.adjacent(a, b).unwrap());
        assert!(!e.adjacent(a, c).unwrap());
        assert_eq!(e.k_neighborhood(a, 2).unwrap(), vec![b, c]);
        assert_eq!(e.fixed_length_paths(a, c, 2).unwrap(), 1);
        assert!(e.regular_path(a, c, "links links").unwrap());
    }

    #[test]
    fn unsupported_features_refuse() {
        let mut e = temp_engine("unsup");
        assert!(e
            .create_node(Some("label"), PropertyMap::new())
            .unwrap_err()
            .is_unsupported());
        assert!(e.execute_query("whatever").unwrap_err().is_unsupported());
        let a = e.create_node(None, PropertyMap::new()).unwrap();
        let b = e.create_node(None, PropertyMap::new()).unwrap();
        assert!(e.shortest_path(a, b).unwrap_err().is_unsupported());
        assert!(e
            .pattern_match(&gdm_algo::pattern::Pattern::new())
            .unwrap_err()
            .is_unsupported());
        assert!(e.create_index("x").unwrap_err().is_unsupported());
        assert!(e
            .set_node_attribute(a, "k", Value::from(1))
            .unwrap_err()
            .is_unsupported());
    }

    #[test]
    fn summarization_works() {
        let mut e = temp_engine("summ");
        let a = e.create_node(None, PropertyMap::new()).unwrap();
        let b = e.create_node(None, PropertyMap::new()).unwrap();
        e.create_edge(a, b, None, PropertyMap::new()).unwrap();
        assert_eq!(e.summarize(SummaryFunc::Order).unwrap(), Value::Int(2));
        assert_eq!(e.summarize(SummaryFunc::Size).unwrap(), Value::Int(1));
        assert_eq!(
            e.summarize(SummaryFunc::Distance(a, b)).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("gdm-vdb-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b);
        {
            let mut e = VertexDbEngine::open(&dir).unwrap();
            a = e.create_node(None, PropertyMap::new()).unwrap();
            b = e.create_node(None, PropertyMap::new()).unwrap();
            e.create_edge(a, b, Some("x"), PropertyMap::new()).unwrap();
            e.persist().unwrap();
        }
        {
            let e = VertexDbEngine::open(&dir).unwrap();
            assert_eq!(e.node_count(), 2);
            assert!(e.adjacent(a, b).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
