//! Neo4j emulation.
//!
//! The paper: "Neo4j is based on a network oriented model where
//! relations are first class objects. It implements an object-oriented
//! API, a native disk-based storage manager for graphs, and a
//! framework for graph traversals ... Neo4j is developing Cypher, a
//! query language for property graphs" (marked `◦` in Table V).
//!
//! The emulation sits on `gdm_storage::RecordStore` — the fixed-size
//! node/relationship records with per-node relationship chains that
//! are Neo4j's storage signature — plus a token table, property-key
//! B-tree indexes, the traversal framework from `gdm-algo`, and the
//! partial Cypher front-end from `gdm-query`.

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use gdm_algo::adjacency::{k_neighborhood, nodes_adjacent};
use gdm_algo::paths::{fixed_length_paths, shortest_path};
use gdm_algo::regular::{regular_path_exists, LabelRegex};
use gdm_algo::summary;
use gdm_core::{
    AttributedView, DeltaTracker, Direction, EdgeId, EdgeRef, FxHashMap, GdmError, GraphView,
    Interner, NodeId, PropertyMap, Result, Support, Symbol, Value,
};
use gdm_query::cypher::{self, CypherStatement};
use gdm_query::eval::{evaluate_select, ResultSet};
use gdm_storage::{BTreeIndex, RecordStore, ValueIndex};
use std::cell::RefCell;
use std::path::{Path, PathBuf};

const NAME: &str = "Neo4j";
const PATH_BUDGET: usize = 1_000_000;

/// The Neo4j emulation.
pub struct Neo4jEngine {
    store: RecordStore,
    tokens: Interner,
    indexes: FxHashMap<String, BTreeIndex>,
    store_path: PathBuf,
    tokens_path: PathBuf,
    tx_snapshot: Option<RecordStore>,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze (`RefCell`: snapshots reset it through
    /// `&self`; engines are not `Send`, so access is uncontended).
    delta: RefCell<DeltaTracker>,
}

/// Read view over the record store, used by the generic algorithms and
/// the Cypher evaluator.
pub struct RecordView<'a> {
    store: &'a RecordStore,
    tokens: &'a Interner,
}

impl GraphView for RecordView<'_> {
    fn is_directed(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.store.node_count()
    }

    fn edge_count(&self) -> usize {
        self.store.rel_count()
    }

    fn contains_node(&self, n: NodeId) -> bool {
        n.raw() <= u64::from(u32::MAX) && self.store.node_in_use(n.raw() as u32)
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        for id in 0..self.store.node_high_id() {
            if self.store.node_in_use(id) {
                f(NodeId(u64::from(id)));
            }
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        self.store.visit_rels(n.raw() as u32, &mut |rel| {
            if u64::from(rel.from) == n.raw() {
                f(EdgeRef {
                    id: EdgeId(u64::from(rel.id)),
                    from: n,
                    to: NodeId(u64::from(rel.to)),
                    label: Some(Symbol(rel.rel_type)),
                });
            }
        });
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        // Self-loops are both an out- and an in-edge of their node (the
        // chain holds them once, so they are visited exactly once per
        // direction); excluding them here would make `degree` undercount
        // and backward traversals disagree with every other view.
        self.store.visit_rels(n.raw() as u32, &mut |rel| {
            if u64::from(rel.to) == n.raw() {
                f(EdgeRef {
                    id: EdgeId(u64::from(rel.id)),
                    from: n,
                    to: NodeId(u64::from(rel.from)),
                    label: Some(Symbol(rel.rel_type)),
                });
            }
        });
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.tokens.resolve(sym)
    }
}

impl AttributedView for RecordView<'_> {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        self.store.node_label(n.raw() as u32).ok().map(Symbol)
    }

    fn node_property(&self, n: NodeId, key: &str) -> Option<Value> {
        let token = self.tokens.get(key)?;
        self.store.node_prop(n.raw() as u32, token.raw()).cloned()
    }

    fn edge_property(&self, e: EdgeId, key: &str) -> Option<Value> {
        let token = self.tokens.get(key)?;
        self.store.rel_prop(e.raw() as u32, token.raw()).cloned()
    }

    // Enumeration hooks: without these, `FrozenGraph::freeze_attributed`
    // captures labels but no property values, and a snapshot served to
    // the query layer silently answers property predicates with nothing.
    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        self.store
            .visit_node_props(n.raw() as u32, &mut |token, v| {
                if let Some(key) = self.tokens.resolve(Symbol(token)) {
                    f(key, v);
                }
            });
    }

    fn visit_edge_properties(&self, e: EdgeId, f: &mut dyn FnMut(&str, &Value)) {
        self.store.visit_rel_props(e.raw() as u32, &mut |token, v| {
            if let Some(key) = self.tokens.resolve(Symbol(token)) {
                f(key, v);
            }
        });
    }
}

impl Neo4jEngine {
    /// Opens (or creates) the store under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        let store_path = dir.join("neo4j.store");
        let tokens_path = dir.join("neo4j.tokens");
        let store = if store_path.exists() {
            RecordStore::load(&store_path)?
        } else {
            RecordStore::new()
        };
        let mut tokens = Interner::new();
        if tokens_path.exists() {
            for line in std::fs::read_to_string(&tokens_path)?.lines() {
                tokens.intern(line);
            }
        }
        Ok(Self {
            store,
            tokens,
            indexes: FxHashMap::default(),
            store_path,
            tokens_path,
            tx_snapshot: None,
            delta: RefCell::new(DeltaTracker::new()),
        })
    }

    /// The read view used with `gdm_algo::Traversal` — the paper's
    /// "framework for graph traversals".
    pub fn view(&self) -> RecordView<'_> {
        RecordView {
            store: &self.store,
            tokens: &self.tokens,
        }
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }

    fn node_u32(&self, n: NodeId) -> Result<u32> {
        let id = u32::try_from(n.raw()).map_err(|_| GdmError::NotFound(format!("node {n}")))?;
        if !self.store.node_in_use(id) {
            return Err(GdmError::NotFound(format!("node {n}")));
        }
        Ok(id)
    }
}

impl GraphEngine for Neo4jEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::None,
            graphical_ql: Support::None,
            query_language_grade: Support::Partial,
            backend_storage: Support::None,
            blurb: "network-oriented model; native disk storage; traversal framework; Cypher in development",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        let token = self.tokens.intern(label.unwrap_or("Node")).raw();
        let id = self.store.create_node(token);
        for (k, v) in &props {
            let key = self.tokens.intern(k).raw();
            self.store.set_node_prop(id, key, v.clone())?;
            if let Some(index) = self.indexes.get_mut(k) {
                index.insert(v, u64::from(id));
            }
        }
        self.delta.get_mut().touch_node(u64::from(id));
        Ok(NodeId(u64::from(id)))
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let label = label.ok_or_else(|| {
            GdmError::InvalidArgument("Neo4j relationships require a type".into())
        })?;
        let f = self.node_u32(from)?;
        let t = self.node_u32(to)?;
        let token = self.tokens.intern(label).raw();
        let rel = self.store.create_rel(f, t, token)?;
        for (k, v) in &props {
            let key = self.tokens.intern(k).raw();
            self.store.set_rel_prop(rel, key, v.clone())?;
        }
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(EdgeId(u64::from(rel)))
    }

    fn create_hyperedge(
        &mut self,
        _label: &str,
        _targets: &[NodeId],
        _props: PropertyMap,
    ) -> Result<EdgeId> {
        self.unsupported("hyperedges")
    }

    fn create_edge_on_edge(&mut self, _from: EdgeId, _to: NodeId, _label: &str) -> Result<EdgeId> {
        self.unsupported("edges between edges")
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, n: NodeId, key: &str, value: Value) -> Result<()> {
        let id = self.node_u32(n)?;
        let old = {
            let token = self.tokens.get(key);
            token.and_then(|t| self.store.node_prop(id, t.raw()).cloned())
        };
        let token = self.tokens.intern(key).raw();
        self.store.set_node_prop(id, token, value.clone())?;
        if let Some(index) = self.indexes.get_mut(key) {
            if let Some(v) = old {
                index.remove(&v, n.raw());
            }
            index.insert(&value, n.raw());
        }
        self.delta.get_mut().touch_node(n.raw());
        Ok(())
    }

    fn set_edge_attribute(&mut self, e: EdgeId, key: &str, value: Value) -> Result<()> {
        let token = self.tokens.intern(key).raw();
        self.store.set_rel_prop(e.raw() as u32, token, value)?;
        self.delta.get_mut().touch_edge_props(e.raw());
        Ok(())
    }

    fn node_attribute(&self, n: NodeId, key: &str) -> Result<Option<Value>> {
        let id = self.node_u32(n)?;
        Ok(self
            .tokens
            .get(key)
            .and_then(|t| self.store.node_prop(id, t.raw()).cloned()))
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        let id = self.node_u32(n)?;
        self.store.delete_node(id)?;
        // The detach-delete cascade only removes relationships
        // incident on `n`; the re-freeze re-reads `n`'s previous
        // neighbours, which covers them.
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        self.store.delete_rel(e.raw() as u32)?;
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        self.store.node_count()
    }

    fn edge_count(&self) -> usize {
        self.store.rel_count()
    }

    fn define_node_type(&mut self, _def: gdm_schema::NodeTypeDef) -> Result<()> {
        self.unsupported("schema definitions (schema-free model)")
    }

    fn define_edge_type(&mut self, _def: gdm_schema::EdgeTypeDef) -> Result<()> {
        self.unsupported("schema definitions (schema-free model)")
    }

    fn install_constraint(&mut self, _c: gdm_schema::Constraint) -> Result<()> {
        self.unsupported("integrity constraints")
    }

    fn execute_ddl(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data definition language")
    }

    fn execute_dml(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a separate data manipulation language (use Cypher CREATE)")
    }

    fn execute_query(&mut self, query: &str) -> Result<ResultSet> {
        match cypher::parse(query)? {
            CypherStatement::Select(q) => {
                let view = self.view();
                evaluate_select(&view, &q)
            }
            CypherStatement::Create(items) => {
                let mut created_nodes = 0i64;
                let mut created_rels = 0i64;
                for item in items {
                    let mut ids = Vec::new();
                    for (_, label, props) in &item.nodes {
                        ids.push(self.create_node(Some(label), props.clone())?);
                        created_nodes += 1;
                    }
                    for (i, (rel, props)) in item.edges.iter().enumerate() {
                        self.create_edge(ids[i], ids[i + 1], Some(rel), props.clone())?;
                        created_rels += 1;
                    }
                }
                Ok(ResultSet {
                    columns: vec!["nodes_created".into(), "relationships_created".into()],
                    rows: vec![vec![Value::Int(created_nodes), Value::Int(created_rels)]],
                })
            }
        }
    }

    fn explain(&self, query: &str) -> Result<String> {
        match cypher::parse(query)? {
            CypherStatement::Select(q) => {
                let view = self.view();
                Ok(gdm_query::plan_select(&view, &q)?.explain.render())
            }
            CypherStatement::Create(_) => Err(GdmError::InvalidArgument(
                "EXPLAIN applies to MATCH queries, not CREATE".into(),
            )),
        }
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, _func: AnalysisFunc) -> Result<Value> {
        self.unsupported("built-in analysis functions")
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(nodes_adjacent(&self.view(), a, b))
    }

    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>> {
        Ok(k_neighborhood(&self.view(), n, k, Direction::Outgoing))
    }

    fn fixed_length_paths(&self, a: NodeId, b: NodeId, len: usize) -> Result<usize> {
        Ok(fixed_length_paths(&self.view(), a, b, len, PATH_BUDGET)?.len())
    }

    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool> {
        let regex = LabelRegex::compile(expr)?;
        Ok(regular_path_exists(&self.view(), a, b, &regex))
    }

    fn shortest_path(&self, a: NodeId, b: NodeId) -> Result<Option<Vec<NodeId>>> {
        Ok(shortest_path(&self.view(), a, b).map(|p| p.nodes))
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        // Table VII (reconstructed) does not credit 2012 Neo4j with
        // pattern matching through its API; the in-development Cypher
        // covers single patterns via execute_query instead.
        self.unsupported("pattern matching through the API")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&self.view());
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze(&self.view(), prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // A server-class graph database: generous operator defaults —
        // queries may be long, but never unbounded.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(30))
            .with_node_visits(10_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        let view = self.view();
        Ok(match func {
            SummaryFunc::PropertyAggregate(agg, key) => {
                let mut values = Vec::new();
                view.visit_nodes(&mut |n| {
                    if let Some(v) = view.node_property(n, key) {
                        values.push(v);
                    }
                });
                summary::aggregate(agg, &values)?
            }
            other => crate::vertexdb::summarize_simple(&view, other, NAME)?,
        })
    }

    fn begin_transaction(&mut self) -> Result<()> {
        if self.tx_snapshot.is_some() {
            return Err(GdmError::InvalidArgument("transaction already open".into()));
        }
        self.tx_snapshot = Some(self.store.clone());
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<()> {
        self.tx_snapshot
            .take()
            .map(|_| ())
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))
    }

    fn rollback_transaction(&mut self) -> Result<()> {
        let snapshot = self
            .tx_snapshot
            .take()
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))?;
        self.store = snapshot;
        // Token additions are harmless to keep; rebuild indexes so they
        // reflect the restored records.
        let keys: Vec<String> = self.indexes.keys().cloned().collect();
        for key in keys {
            self.create_index(&key)?;
        }
        // The rollback rewinds past everything tracked in the open
        // transaction; the tracker cannot un-record, so degrade.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn persist(&mut self) -> Result<()> {
        self.store.save(&self.store_path)?;
        let lines: Vec<&str> = self.tokens.iter().map(|(_, s)| s).collect();
        std::fs::write(&self.tokens_path, lines.join("\n"))?;
        Ok(())
    }

    fn create_index(&mut self, property: &str) -> Result<()> {
        let mut index = BTreeIndex::new();
        let view = self.view();
        let mut pairs = Vec::new();
        view.visit_nodes(&mut |n| {
            if let Some(v) = view.node_property(n, property) {
                pairs.push((v, n.raw()));
            }
        });
        for (v, id) in pairs {
            index.insert(&v, id);
        }
        self.indexes.insert(property.to_owned(), index);
        Ok(())
    }

    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        if let Some(index) = self.indexes.get(key) {
            return Ok(index.lookup(value).into_iter().map(NodeId).collect());
        }
        let view = self.view();
        let mut out = Vec::new();
        view.visit_nodes(&mut |n| {
            if view.node_property(n, key).as_ref() == Some(value) {
                out.push(n);
            }
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_algo::traverse::Traversal;
    use gdm_core::props;

    fn temp_engine(tag: &str) -> Neo4jEngine {
        let dir = std::env::temp_dir().join(format!("gdm-neo-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Neo4jEngine::open(&dir).unwrap()
    }

    fn seed(e: &mut Neo4jEngine) -> Vec<NodeId> {
        let ada = e
            .create_node(Some("Person"), props! { "name" => "ada", "age" => 36 })
            .unwrap();
        let bob = e
            .create_node(Some("Person"), props! { "name" => "bob", "age" => 25 })
            .unwrap();
        let acme = e
            .create_node(Some("Company"), props! { "name" => "acme" })
            .unwrap();
        e.create_edge(ada, bob, Some("KNOWS"), props! { "since" => 2001 })
            .unwrap();
        e.create_edge(ada, acme, Some("WORKS_AT"), props! {})
            .unwrap();
        vec![ada, bob, acme]
    }

    #[test]
    fn cypher_queries_run() {
        let mut e = temp_engine("cypher");
        seed(&mut e);
        let rs = e
            .execute_query("MATCH (p:Person) WHERE p.age > 30 RETURN p.name")
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("ada"));
        let rs = e
            .execute_query("MATCH (a:Person {name: 'ada'})-[:KNOWS]->(b) RETURN b.name")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::from("bob"));
        // Partial language: advanced clauses refuse.
        assert!(e.execute_query("MATCH (a) WITH a RETURN a").is_err());
    }

    #[test]
    fn cypher_create() {
        let mut e = temp_engine("create");
        let rs = e
            .execute_query("CREATE (a:Person {name: 'eve'})-[:KNOWS]->(b:Person {name: 'dan'})")
            .unwrap();
        assert_eq!(rs.get(0, "nodes_created"), Some(&Value::Int(2)));
        assert_eq!(GraphEngine::node_count(&e), 2);
        assert_eq!(GraphEngine::edge_count(&e), 1);
    }

    #[test]
    fn traversal_framework() {
        let mut e = temp_engine("traverse");
        let n = seed(&mut e);
        let order = Traversal::new(n[0])
            .relationships(&["KNOWS"])
            .run(&e.view());
        assert_eq!(order, vec![n[0], n[1]]);
    }

    #[test]
    fn essential_queries() {
        let mut e = temp_engine("essential");
        let n = seed(&mut e);
        assert!(e.adjacent(n[0], n[1]).unwrap());
        assert_eq!(e.k_neighborhood(n[0], 1).unwrap().len(), 2);
        assert_eq!(e.shortest_path(n[0], n[2]).unwrap().unwrap().len(), 2);
        assert_eq!(e.fixed_length_paths(n[0], n[2], 1).unwrap(), 1);
        assert_eq!(
            e.summarize(SummaryFunc::PropertyAggregate(
                gdm_algo::summary::Aggregate::Max,
                "age"
            ))
            .unwrap(),
            Value::Int(36)
        );
    }

    #[test]
    fn indexes() {
        let mut e = temp_engine("index");
        let n = seed(&mut e);
        e.create_index("name").unwrap();
        assert_eq!(
            e.lookup_by_property("name", &Value::from("bob")).unwrap(),
            vec![n[1]]
        );
    }

    #[test]
    fn persistence() {
        let dir = std::env::temp_dir().join(format!("gdm-neo-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        {
            let mut e = Neo4jEngine::open(&dir).unwrap();
            seed(&mut e);
            e.persist().unwrap();
        }
        {
            let mut e = Neo4jEngine::open(&dir).unwrap();
            assert_eq!(GraphEngine::node_count(&e), 3);
            let rs = e
                .execute_query("MATCH (p:Person) RETURN count(*) AS n")
                .unwrap();
            assert_eq!(rs.get(0, "n"), Some(&Value::Int(2)));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profile_refusals() {
        let mut e = temp_engine("refuse");
        assert!(e
            .install_constraint(gdm_schema::Constraint::ReferentialIntegrity)
            .unwrap_err()
            .is_unsupported());
        assert!(e.execute_ddl("x").unwrap_err().is_unsupported());
        assert!(e.reason("", "").unwrap_err().is_unsupported());
        assert!(e
            .analyze(AnalysisFunc::Triangles)
            .unwrap_err()
            .is_unsupported());
    }
}
