//! AllegroGraph emulation.
//!
//! The paper: "AllegroGraph is one of the precursors in the current
//! generation of graph databases. Although it was born as a graph
//! database, its current development is oriented to meet the Semantic
//! Web standards (i.e., RDF/S, SPARQL and OWL). Additionally,
//! AllegroGraph provides special features for GeoTemporal Reasoning
//! and Social Network Analysis." Profile: RDF triples (a simple
//! directed edge-labeled graph, Table III), SPARQL (`◦` in Table V),
//! Prolog-style reasoning (here: Datalog), analysis functions, all
//! three database languages plus API and GUI (Table II), main +
//! external memory with (triple) indexes (Table I).

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use gdm_algo::adjacency::nodes_adjacent;
use gdm_algo::analysis;
use gdm_algo::planned::match_pattern_auto;
use gdm_algo::summary;
use gdm_core::{
    DeltaTracker, EdgeId, GdmError, GraphView, NodeId, PropertyMap, Result, Support, Value,
};
use gdm_graphs::rdf::{RdfGraph, Term};
use gdm_query::datalog::Program;
use gdm_query::eval::ResultSet;
use gdm_query::lex::{Cursor, TokenKind};
use gdm_query::sparql;
use std::cell::RefCell;
use std::path::{Path, PathBuf};

const NAME: &str = "AllegroGraph";

/// The AllegroGraph emulation.
pub struct AllegroEngine {
    rdf: RdfGraph,
    next_node: u64,
    triples_path: PathBuf,
    tx_snapshot: Option<RdfGraph>,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze. `RefCell` because snapshots are taken
    /// through `&self` yet must reset the tracker (engines are not
    /// `Send`, so this is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl AllegroEngine {
    /// Opens (or creates) the store under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        let triples_path = dir.join("allegro.nt");
        let mut rdf = RdfGraph::new();
        let mut next_node = 0;
        if triples_path.exists() {
            for line in std::fs::read_to_string(&triples_path)?.lines() {
                if line.is_empty() {
                    continue;
                }
                let mut parts = line.splitn(3, '\t');
                let (Some(s), Some(p), Some(o)) = (parts.next(), parts.next(), parts.next()) else {
                    return Err(GdmError::Storage("bad triple line".into()));
                };
                rdf.add(&decode_term(s)?, &decode_term(p)?, &decode_term(o)?)?;
            }
            // Recover the node counter from minted node IRIs.
            for (s, _, o) in rdf.match_terms(None, None, None) {
                for t in [s, o] {
                    if let Term::Iri(iri) = &t {
                        if let Some(n) = iri.strip_prefix("node:") {
                            if let Ok(v) = n.parse::<u64>() {
                                next_node = next_node.max(v + 1);
                            }
                        }
                    }
                }
            }
        }
        Ok(Self {
            rdf,
            next_node,
            triples_path,
            tx_snapshot: None,
            delta: RefCell::new(DeltaTracker::new()),
        })
    }

    /// Direct triple interface (the RDF-native API). Bypasses the
    /// facade's per-node tracking, so it degrades the next re-freeze
    /// to a full one.
    pub fn add_triple(&mut self, s: &Term, p: &Term, o: &Term) -> Result<EdgeId> {
        self.delta.get_mut().mark_all();
        self.rdf.add(s, p, o)
    }

    /// The triple store, for SPARQL-level access in examples.
    pub fn rdf(&self) -> &RdfGraph {
        &self.rdf
    }

    /// Mutable triple store access. Untracked, so it degrades the
    /// next re-freeze to a full one.
    pub fn rdf_mut(&mut self) -> &mut RdfGraph {
        self.delta.get_mut().mark_all();
        &mut self.rdf
    }

    fn term_of(&self, n: NodeId) -> Result<Term> {
        self.rdf
            .term(n.raw() as u32)
            .cloned()
            .ok_or_else(|| GdmError::NotFound(format!("term {n}")))
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }
}

fn encode_term(t: &Term) -> String {
    match t {
        Term::Iri(s) => format!("I{s}"),
        Term::Literal(s) => format!("L{s}"),
        Term::Blank(n) => format!("B{n}"),
    }
}

fn decode_term(s: &str) -> Result<Term> {
    let (tag, rest) = s.split_at(1);
    Ok(match tag {
        "I" => Term::Iri(rest.to_owned()),
        "L" => Term::Literal(rest.to_owned()),
        "B" => Term::Blank(
            rest.parse()
                .map_err(|_| GdmError::Storage("bad blank node id".into()))?,
        ),
        _ => return Err(GdmError::Storage(format!("bad term tag {tag:?}"))),
    })
}

impl GraphEngine for AllegroEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::Full,
            graphical_ql: Support::Full,
            query_language_grade: Support::Partial,
            backend_storage: Support::None,
            blurb: "RDF store meeting Semantic Web standards; SPARQL, reasoning, SNA features",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        if label.is_some() {
            return self.unsupported("node type labels (RDF resources are untyped identities)");
        }
        if !props.is_empty() {
            return self.unsupported("node attributes (RDF expresses values as triples)");
        }
        let iri = Term::iri(format!("node:{}", self.next_node));
        self.next_node += 1;
        let id = self.rdf.intern(&iri);
        // Not tracked: an interned term with no triples is invisible
        // to the graph view (RDF nodes exist by incidence), so the
        // snapshot delta must not mention it until an edge does.
        Ok(NodeId(u64::from(id)))
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let label = label.ok_or_else(|| {
            GdmError::InvalidArgument("RDF statements require a predicate".into())
        })?;
        if !props.is_empty() {
            return self.unsupported("edge attributes (no triple reification)");
        }
        let s = self.term_of(from)?;
        let o = self.term_of(to)?;
        let e = self.rdf.add(&s, &Term::iri(label), &o)?;
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(e)
    }

    fn create_hyperedge(
        &mut self,
        _label: &str,
        _targets: &[NodeId],
        _props: PropertyMap,
    ) -> Result<EdgeId> {
        self.unsupported("hyperedges")
    }

    fn create_edge_on_edge(&mut self, _from: EdgeId, _to: NodeId, _label: &str) -> Result<EdgeId> {
        self.unsupported("edges between edges")
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, _n: NodeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("node attributes (use triples with literal objects)")
    }

    fn set_edge_attribute(&mut self, _e: EdgeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("edge attributes")
    }

    fn node_attribute(&self, _n: NodeId, _key: &str) -> Result<Option<Value>> {
        self.unsupported("node attributes")
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        // Remove every statement mentioning the resource.
        let term = self.term_of(n)?;
        let mut neighbors: Vec<NodeId> = Vec::new();
        self.rdf.visit_out_edges(n, &mut |e| neighbors.push(e.to));
        self.rdf.visit_in_edges(n, &mut |e| neighbors.push(e.from));
        for (s, p, o) in self.rdf.match_terms(Some(&term), None, None) {
            self.rdf.remove(&s, &p, &o);
        }
        for (s, p, o) in self.rdf.match_terms(None, None, Some(&term)) {
            self.rdf.remove(&s, &p, &o);
        }
        // RDF nodes exist by triple incidence, so a neighbour left
        // with no statements vanished from the view along with `n` —
        // the delta must record it as removed, not merely dirty.
        let survived: Vec<(NodeId, bool)> = neighbors
            .iter()
            .filter(|&&b| b != n)
            .map(|&b| {
                let mut still = false;
                self.rdf.visit_out_edges(b, &mut |_| still = true);
                if !still {
                    self.rdf.visit_in_edges(b, &mut |_| still = true);
                }
                (b, still)
            })
            .collect();
        let tracker = self.delta.get_mut();
        tracker.remove_node(n.raw());
        for (b, still) in survived {
            if still {
                tracker.touch_node(b.raw());
            } else {
                tracker.remove_node(b.raw());
            }
        }
        Ok(())
    }

    fn delete_edge(&mut self, _e: EdgeId) -> Result<()> {
        Err(GdmError::InvalidArgument(
            "AllegroGraph deletes statements by (s, p, o); use the DML interface".into(),
        ))
    }

    fn node_count(&self) -> usize {
        GraphView::node_count(&self.rdf)
    }

    fn edge_count(&self) -> usize {
        self.rdf.len()
    }

    fn define_node_type(&mut self, _def: gdm_schema::NodeTypeDef) -> Result<()> {
        self.unsupported("node type schemas (RDF Schema is out of scope)")
    }

    fn define_edge_type(&mut self, _def: gdm_schema::EdgeTypeDef) -> Result<()> {
        self.unsupported("edge type schemas")
    }

    fn install_constraint(&mut self, _c: gdm_schema::Constraint) -> Result<()> {
        self.unsupported("integrity constraints")
    }

    fn execute_ddl(&mut self, statement: &str) -> Result<()> {
        // DDL: `DEFINE PREDICATE <iri>` — registers a predicate by
        // asserting its self-description, the RDF idiom for schema.
        let mut c = Cursor::lex("allegro-ddl", statement, true)?;
        c.expect_keyword("define")?;
        c.expect_keyword("predicate")?;
        let pred = match c.bump() {
            TokenKind::AngleQuoted(iri) => iri,
            TokenKind::Ident(name) => name,
            other => {
                return Err(GdmError::InvalidArgument(format!(
                    "expected predicate IRI, found {other:?}"
                )))
            }
        };
        self.rdf.add(
            &Term::iri(pred),
            &Term::iri("rdf:type"),
            &Term::iri("rdf:Property"),
        )?;
        // The self-description triple makes the predicate term a
        // subject — node ids the tracker never saw.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn execute_dml(&mut self, statement: &str) -> Result<()> {
        // DML: `ADD s p o` / `DELETE s p o` with IRIs or literals.
        let mut c = Cursor::lex("allegro-dml", statement, true)?;
        let add = if c.eat_keyword("add") {
            true
        } else if c.eat_keyword("delete") {
            false
        } else {
            return Err(GdmError::InvalidArgument("expected ADD or DELETE".into()));
        };
        let term = |c: &mut Cursor| -> Result<Term> {
            Ok(match c.bump() {
                TokenKind::AngleQuoted(iri) => Term::Iri(iri),
                TokenKind::Ident(name) => Term::Iri(name),
                TokenKind::Str(s) => Term::Literal(s),
                TokenKind::Int(i) => Term::Literal(i.to_string()),
                other => {
                    return Err(GdmError::InvalidArgument(format!(
                        "expected term, found {other:?}"
                    )))
                }
            })
        };
        let s = term(&mut c)?;
        let p = term(&mut c)?;
        let o = term(&mut c)?;
        if add {
            self.rdf.add(&s, &p, &o)?;
        } else {
            self.rdf.remove(&s, &p, &o);
        }
        // Statement-level DML names terms, not node ids; the tracker
        // cannot attribute the change, so the next re-freeze is full.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn execute_query(&mut self, query: &str) -> Result<ResultSet> {
        sparql::query(&self.rdf, query)
    }

    fn reason(&mut self, rules: &str, goal: &str) -> Result<Vec<Vec<String>>> {
        let mut program = Program::new();
        program.load_rdf(&self.rdf);
        program.add_rules(rules)?;
        program.evaluate();
        program.query_str(goal)
    }

    fn analyze(&self, func: AnalysisFunc) -> Result<Value> {
        Ok(match func {
            AnalysisFunc::ConnectedComponents => {
                Value::Int(analysis::connected_components(&self.rdf).len() as i64)
            }
            AnalysisFunc::Triangles => Value::Int(analysis::triangle_count(&self.rdf) as i64),
            AnalysisFunc::AverageClustering => analysis::average_clustering(&self.rdf)
                .map(Value::Float)
                .unwrap_or(Value::Null),
            AnalysisFunc::TopDegreeNode => analysis::degree_centrality(&self.rdf, 1)
                .first()
                .map(|(n, _)| Value::Int(n.raw() as i64))
                .unwrap_or(Value::Null),
        })
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(nodes_adjacent(&self.rdf, a, b))
    }

    fn k_neighborhood(&self, _n: NodeId, _k: usize) -> Result<Vec<NodeId>> {
        self.unsupported("k-neighborhood through the API (SPARQL has no transitive paths)")
    }

    fn fixed_length_paths(&self, _a: NodeId, _b: NodeId, _len: usize) -> Result<usize> {
        self.unsupported("fixed-length path queries")
    }

    fn regular_path(&self, _a: NodeId, _b: NodeId, _expr: &str) -> Result<bool> {
        self.unsupported("regular path queries (SPARQL 1.0 lacks property paths)")
    }

    fn shortest_path(&self, _a: NodeId, _b: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.unsupported("shortest path as an essential query (exposed via SNA analysis)")
    }

    fn pattern_match(&self, pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        // SPARQL *is* graph pattern matching; the structural probe
        // runs the planned matcher over the triple view, seeding
        // constrained variables from whatever indexes it exposes.
        Ok(match_pattern_auto(&self.rdf, pattern).len())
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&self.rdf);
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze(&self.rdf, prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // A server-class triple store: generous operator defaults, on
        // the SPARQL-endpoint-timeout model.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(30))
            .with_node_visits(10_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        Ok(match func {
            SummaryFunc::PropertyAggregate(agg, key) => {
                // Aggregate over literal objects of the given predicate.
                let pred = Term::iri(key);
                let values: Vec<Value> = self
                    .rdf
                    .match_terms(None, Some(&pred), None)
                    .into_iter()
                    .filter_map(|(_, _, o)| match o {
                        Term::Literal(s) => Some(
                            s.parse::<i64>()
                                .map(Value::Int)
                                .or_else(|_| s.parse::<f64>().map(Value::Float))
                                .unwrap_or(Value::Str(s)),
                        ),
                        _ => None,
                    })
                    .collect();
                summary::aggregate(agg, &values)?
            }
            other => crate::vertexdb::summarize_simple(&self.rdf, other, NAME)?,
        })
    }

    fn begin_transaction(&mut self) -> Result<()> {
        if self.tx_snapshot.is_some() {
            return Err(GdmError::InvalidArgument("transaction already open".into()));
        }
        self.tx_snapshot = Some(self.rdf.clone());
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<()> {
        self.tx_snapshot
            .take()
            .map(|_| ())
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))
    }

    fn rollback_transaction(&mut self) -> Result<()> {
        let snapshot = self
            .tx_snapshot
            .take()
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))?;
        self.rdf = snapshot;
        // The rollback rewinds past everything tracked in the open
        // transaction; the tracker cannot un-record, so degrade.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn persist(&mut self) -> Result<()> {
        let mut out = String::new();
        for (s, p, o) in self.rdf.match_terms(None, None, None) {
            out.push_str(&encode_term(&s));
            out.push('\t');
            out.push_str(&encode_term(&p));
            out.push('\t');
            out.push_str(&encode_term(&o));
            out.push('\n');
        }
        std::fs::write(&self.triples_path, out)?;
        Ok(())
    }

    fn create_index(&mut self, _property: &str) -> Result<()> {
        // The triple store maintains SPO/POS/OSP indexes permanently;
        // predicate "indexes" are implicit.
        Ok(())
    }

    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        let literal = Term::Literal(value.to_string());
        let pred = Term::iri(key);
        let mut ids: Vec<NodeId> = self
            .rdf
            .match_terms(None, Some(&pred), Some(&literal))
            .into_iter()
            .filter_map(|(s, _, _)| self.rdf.term_id(&s).map(|id| NodeId(u64::from(id))))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_engine(tag: &str) -> AllegroEngine {
        let dir = std::env::temp_dir().join(format!("gdm-ag-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        AllegroEngine::open(&dir).unwrap()
    }

    #[test]
    fn facade_nodes_are_minted_iris() {
        let mut e = temp_engine("mint");
        let a = e.create_node(None, PropertyMap::new()).unwrap();
        let b = e.create_node(None, PropertyMap::new()).unwrap();
        e.create_edge(a, b, Some("knows"), PropertyMap::new())
            .unwrap();
        assert!(e.adjacent(a, b).unwrap());
        assert_eq!(GraphEngine::edge_count(&e), 1);
        // RDF model refusals.
        assert!(e
            .create_node(Some("Person"), PropertyMap::new())
            .unwrap_err()
            .is_unsupported());
        assert!(e.create_edge(a, b, None, PropertyMap::new()).is_err());
    }

    #[test]
    fn sparql_and_dml() {
        let mut e = temp_engine("sparql");
        e.execute_dml("ADD <ana> <parent> <ben>").unwrap();
        e.execute_dml("ADD <ben> <parent> <cleo>").unwrap();
        e.execute_dml("ADD <ana> <age> '62'").unwrap();
        let rs = e
            .execute_query("SELECT ?gc WHERE { <ana> <parent> ?c . ?c <parent> ?gc }")
            .unwrap();
        assert_eq!(rs.rows[0][0].as_str(), Some("cleo"));
        e.execute_dml("DELETE <ana> <parent> <ben>").unwrap();
        let rs = e
            .execute_query("SELECT (COUNT(*) AS ?n) WHERE { ?x <parent> ?y }")
            .unwrap();
        assert_eq!(rs.get(0, "n"), Some(&Value::Int(1)));
    }

    #[test]
    fn reasoning() {
        let mut e = temp_engine("reason");
        e.execute_dml("ADD <ana> <parent> <ben>").unwrap();
        e.execute_dml("ADD <ben> <parent> <cleo>").unwrap();
        let rows = e
            .reason(
                "ancestor(X, Y) :- parent(X, Y).\n\
                 ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
                "ancestor(ana, X)",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn analysis_functions() {
        let mut e = temp_engine("sna");
        for (s, o) in [("a", "b"), ("b", "c"), ("c", "a")] {
            e.execute_dml(&format!("ADD <{s}> <knows> <{o}>")).unwrap();
        }
        assert_eq!(e.analyze(AnalysisFunc::Triangles).unwrap(), Value::Int(1));
        assert_eq!(
            e.analyze(AnalysisFunc::ConnectedComponents).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn pattern_matching_over_triples() {
        let mut e = temp_engine("pattern");
        e.execute_dml("ADD <a> <r> <b>").unwrap();
        e.execute_dml("ADD <b> <r> <c>").unwrap();
        let mut p = gdm_algo::pattern::Pattern::new();
        let x = p.node(gdm_algo::pattern::PatternNode::var("x"));
        let y = p.node(gdm_algo::pattern::PatternNode::var("y"));
        p.edge(x, y, Some("r")).unwrap();
        assert_eq!(e.pattern_match(&p).unwrap(), 2);
    }

    #[test]
    fn ddl_and_lookup() {
        let mut e = temp_engine("ddl");
        e.execute_ddl("DEFINE PREDICATE <age>").unwrap();
        e.execute_dml("ADD <ana> <age> '62'").unwrap();
        e.execute_dml("ADD <ben> <age> '35'").unwrap();
        e.create_index("age").unwrap();
        let hits = e.lookup_by_property("age", &Value::from("62")).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn persistence() {
        let dir = std::env::temp_dir().join(format!("gdm-ag-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        {
            let mut e = AllegroEngine::open(&dir).unwrap();
            e.execute_dml("ADD <ana> <parent> <ben>").unwrap();
            e.execute_dml("ADD <ana> <name> 'Ana'").unwrap();
            e.persist().unwrap();
        }
        {
            let mut e = AllegroEngine::open(&dir).unwrap();
            assert_eq!(GraphEngine::edge_count(&e), 2);
            let rs = e
                .execute_query("SELECT ?x WHERE { ?x <parent> <ben> }")
                .unwrap();
            assert_eq!(rs.rows[0][0].as_str(), Some("ana"));
            // New facade nodes continue after reload without clashing.
            let n = e.create_node(None, PropertyMap::new()).unwrap();
            assert!(e.rdf().term(n.raw() as u32).is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profile_refusals() {
        let mut e = temp_engine("refuse");
        let a = e.create_node(None, PropertyMap::new()).unwrap();
        let b = e.create_node(None, PropertyMap::new()).unwrap();
        assert!(e.k_neighborhood(a, 2).unwrap_err().is_unsupported());
        assert!(e.shortest_path(a, b).unwrap_err().is_unsupported());
        assert!(e
            .set_node_attribute(a, "k", Value::from(1))
            .unwrap_err()
            .is_unsupported());
        assert!(e
            .install_constraint(gdm_schema::Constraint::ReferentialIntegrity)
            .unwrap_err()
            .is_unsupported());
    }
}
