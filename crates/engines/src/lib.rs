//! # gdm-engines
//!
//! Working emulations of the nine graph databases the paper surveys,
//! all behind one [`GraphEngine`] facade.
//!
//! The paper restricts itself to the **logical level** ("we restrict
//! our study to the logical level and avoid physical and
//! implementation considerations"), so each emulation reproduces the
//! surveyed system's *data model feature profile* — its structures,
//! languages, constraints, storage schema, and essential-query support
//! — on top of the substrates in `gdm-storage`, `gdm-graphs`,
//! `gdm-algo`, `gdm-schema`, and `gdm-query`:
//!
//! | Engine | Model | Storage | Languages |
//! |---|---|---|---|
//! | [`allegro::AllegroEngine`] | RDF triples | memory + snapshot file, indexes | SPARQL-like, Datalog reasoning |
//! | [`dex::DexEngine`] | attributed multigraph | bitmaps + snapshot file | API only |
//! | [`filament::FilamentEngine`] | simple directed | KV backend (disk B-tree) | API only |
//! | [`gstore::GStoreEngine`] | node-labeled simple | paged heap file (external only) | GSQL path dialect |
//! | [`hypergraphdb::HyperGraphDbEngine`] | hypergraph (atoms) | memory + KV backend | API only |
//! | [`infinitegraph::InfiniteGraphEngine`] | attributed, partitioned | snapshot file, indexes | API only |
//! | [`neo4j::Neo4jEngine`] | attributed multigraph | record store + snapshot | Cypher-like (partial) |
//! | [`sones::SonesEngine`] | hypergraph + attributed | memory, indexes | GQL SQL dialect |
//! | [`vertexdb::VertexDbEngine`] | simple directed | KV backend (disk B-tree) | API only |
//!
//! An engine answers [`GdmError::Unsupported`] for every capability the
//! 2012-era product lacked; the comparison harness in `gdm-compare`
//! turns those refusals into the blank cells of Tables I–VII.

pub mod allegro;
pub mod dex;
pub mod durable;
pub mod facade;
pub mod filament;
pub mod gstore;
pub mod hypergraphdb;
pub mod infinitegraph;
pub mod kvgraph;
pub mod neo4j;
pub mod sones;

pub mod vertexdb;

pub use durable::{make_engine_durable, CheckpointPolicy, DurableEngine, LogicalOp};
pub use facade::{
    all_engines, make_engine, AnalysisFunc, EngineDescriptor, EngineKind, GovernedAnswer,
    GovernedOp, GraphEngine, ServingSnapshot, SummaryFunc,
};

// Re-exported so downstream code can name the error type without a
// gdm-core dependency.
pub use gdm_core::GdmError;
