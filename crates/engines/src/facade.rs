//! The [`GraphEngine`] facade and the engine factory.
//!
//! The facade's method set is chosen so that `gdm-compare` can derive
//! the paper's tables **by execution**: each table column corresponds
//! to one or more facade calls, and an engine that lacks the feature
//! returns [`gdm_core::GdmError::Unsupported`]. Catalog-only facts the
//! paper records but that have no executable form here (shipping a
//! GUI, a graphical query language) live in [`EngineDescriptor`].

use gdm_algo::pattern::Pattern;
use gdm_algo::summary::Aggregate;
use gdm_core::{Direction, EdgeId, NodeId, PropertyMap, Result, Support, Value};
use gdm_govern::{ExecutionGuard, Limits};
use gdm_query::eval::ResultSet;
use gdm_schema::Constraint;
use std::path::{Path, PathBuf};

/// Catalog facts about an engine that have no executable probe.
#[derive(Debug, Clone)]
pub struct EngineDescriptor {
    /// Engine name as the paper spells it.
    pub name: &'static str,
    /// Shipped a graphical user interface (Table II "GUI").
    pub gui: Support,
    /// Shipped a graphical query language (Table V "Graphical Q.L.").
    pub graphical_ql: Support,
    /// Query-language maturity the paper records in Table V (`◦` for
    /// AllegroGraph's SPARQL and Neo4j's then-nascent Cypher, `•` for
    /// G-Store and Sones, blank for API-only engines). The executable
    /// probe establishes *presence*; this records the paper's grade.
    pub query_language_grade: Support,
    /// Storage sits on a generic key/value or external backend
    /// (Table I "Backend storage") — an architecture fact.
    pub backend_storage: Support,
    /// One-line description quoted from / paraphrasing the paper.
    pub blurb: &'static str,
}

/// Structural summarization functions (Section IV.4's list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SummaryFunc {
    /// Number of vertices.
    Order,
    /// Number of edges.
    Size,
    /// Degree of one node.
    Degree(NodeId),
    /// Minimum degree over the graph.
    MinDegree,
    /// Maximum degree over the graph.
    MaxDegree,
    /// Average degree over the graph.
    AvgDegree,
    /// Length of the shortest path between two nodes.
    Distance(NodeId, NodeId),
    /// Greatest distance between any two connected nodes.
    Diameter,
    /// Aggregate over a node property (label filter optional).
    PropertyAggregate(Aggregate, &'static str),
}

/// Analysis functions (Table V's "Analysis" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisFunc {
    /// Number of weakly connected components.
    ConnectedComponents,
    /// Number of triangles.
    Triangles,
    /// Average clustering coefficient.
    AverageClustering,
    /// Highest-degree node.
    TopDegreeNode,
}

/// An essential query expressed for governed execution — the subset of
/// the facade's read probes whose cost is unbounded in the graph size,
/// and which [`GraphEngine::run_governed`] therefore runs under an
/// [`ExecutionGuard`].
#[derive(Debug, Clone)]
pub enum GovernedOp<'a> {
    /// Count matches of a structural pattern.
    PatternMatch(&'a Pattern),
    /// Shortest path between two nodes.
    ShortestPath(NodeId, NodeId),
    /// Regular-path reachability over a label regular expression.
    RegularPath(NodeId, NodeId, &'a str),
    /// Graph diameter (all-pairs BFS — the most expensive probe).
    Diameter,
}

/// The answer to a [`GovernedOp`] that ran to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GovernedAnswer {
    /// Match count for [`GovernedOp::PatternMatch`].
    Matches(usize),
    /// Node sequence for [`GovernedOp::ShortestPath`].
    Path(Option<Vec<NodeId>>),
    /// Reachability verdict for [`GovernedOp::RegularPath`].
    Reachable(bool),
    /// Diameter for [`GovernedOp::Diameter`].
    Diameter(Option<usize>),
}

/// What a serving layer (the `gdm-server` crate) takes from an engine
/// at startup: an immutable, thread-shareable snapshot of its graph,
/// the engine's identity, and its default governed-execution limits.
/// See [`GraphEngine::serving_snapshot`].
#[derive(Debug, Clone)]
pub struct ServingSnapshot {
    /// Engine name as the paper spells it.
    pub engine: &'static str,
    /// The point-in-time CSR snapshot queries are answered from.
    pub frozen: gdm_algo::FrozenGraph,
    /// The engine's default per-query limits (servers combine these
    /// with their own deadlines/budgets).
    pub limits: Limits,
}

/// The engine facade: every probe the comparison harness runs.
pub trait GraphEngine {
    /// Engine name as the paper spells it.
    fn name(&self) -> &'static str;

    /// Catalog facts (see [`EngineDescriptor`]).
    fn descriptor(&self) -> EngineDescriptor;

    // ---- data model (Tables III & IV probes) -----------------------

    /// Creates a node. `label` is the node type; engines whose model
    /// has no node labels accept `None` and reject `Some`.
    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId>;

    /// Creates a binary edge.
    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId>;

    /// Creates a hyperedge over ≥ 2 targets (hypergraph engines only).
    fn create_hyperedge(
        &mut self,
        label: &str,
        targets: &[NodeId],
        props: PropertyMap,
    ) -> Result<EdgeId>;

    /// Creates an edge whose source is another edge — Table III's
    /// "edges between edges".
    fn create_edge_on_edge(&mut self, from: EdgeId, to: NodeId, label: &str) -> Result<EdgeId>;

    /// Nests a subgraph inside a node (no surveyed engine supports
    /// this; present so Table III's "nested graphs" column is probed,
    /// not assumed).
    fn nest_subgraph(&mut self, node: NodeId) -> Result<()>;

    /// Sets a node attribute.
    fn set_node_attribute(&mut self, n: NodeId, key: &str, value: Value) -> Result<()>;

    /// Sets an edge attribute.
    fn set_edge_attribute(&mut self, e: EdgeId, key: &str, value: Value) -> Result<()>;

    /// Reads a node attribute.
    fn node_attribute(&self, n: NodeId, key: &str) -> Result<Option<Value>>;

    /// Deletes a node (and, where the model requires it, its edges).
    fn delete_node(&mut self, n: NodeId) -> Result<()>;

    /// Deletes an edge.
    fn delete_edge(&mut self, e: EdgeId) -> Result<()>;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of edges (hyperedges count once).
    fn edge_count(&self) -> usize;

    // ---- schema & constraints (Tables IV & VI probes) --------------

    /// Declares a node type in the engine's schema.
    fn define_node_type(&mut self, def: gdm_schema::NodeTypeDef) -> Result<()>;

    /// Declares an edge type in the engine's schema.
    fn define_edge_type(&mut self, def: gdm_schema::EdgeTypeDef) -> Result<()>;

    /// Installs an integrity constraint; future mutations violating it
    /// are rejected.
    fn install_constraint(&mut self, constraint: Constraint) -> Result<()>;

    // ---- languages (Tables II & V probes) ---------------------------

    /// Executes a DDL statement in the engine's own dialect.
    fn execute_ddl(&mut self, statement: &str) -> Result<()>;

    /// Executes a DML statement in the engine's own dialect.
    fn execute_dml(&mut self, statement: &str) -> Result<()>;

    /// Executes a read query in the engine's own dialect.
    fn execute_query(&mut self, query: &str) -> Result<ResultSet>;

    /// Renders the execution plan the engine would use for `query`
    /// without running it: predicate pushdown counts plus per-variable
    /// access method (index vs scan) and selectivity estimates, in the
    /// text form [`gdm_query::ExplainPlan::parse`] reads back.
    /// Engines whose dialect does not lower to the shared algebra
    /// refuse.
    fn explain(&self, query: &str) -> Result<String> {
        let _ = query;
        Err(gdm_core::GdmError::unsupported(
            self.name(),
            "explain".to_owned(),
        ))
    }

    /// Loads inference rules and answers `goal` (Table V "Reasoning").
    fn reason(&mut self, rules: &str, goal: &str) -> Result<Vec<Vec<String>>>;

    /// Runs an analysis function (Table V "Analysis").
    fn analyze(&self, func: AnalysisFunc) -> Result<Value>;

    // ---- essential queries (Table VII probes) -----------------------

    /// Are two nodes adjacent?
    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool>;

    /// The k-neighborhood of `n`.
    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>>;

    /// Number of simple paths of exactly `len` edges from `a` to `b`.
    fn fixed_length_paths(&self, a: NodeId, b: NodeId, len: usize) -> Result<usize>;

    /// Is there a walk from `a` to `b` whose labels match `expr`
    /// (label regular expression)?
    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool>;

    /// Shortest path between two nodes, as the node sequence.
    fn shortest_path(&self, a: NodeId, b: NodeId) -> Result<Option<Vec<NodeId>>>;

    /// Number of matches of a structural pattern.
    fn pattern_match(&self, pattern: &Pattern) -> Result<usize>;

    /// A structural summarization function.
    fn summarize(&self, func: SummaryFunc) -> Result<Value>;

    /// Freezes the engine's current graph into a point-in-time CSR
    /// snapshot ([`gdm_algo::FrozenGraph`]) that answers every
    /// essential query identically but at array speed, and that the
    /// parallel executor ([`gdm_algo::parallel`]) can fan out over.
    /// Later mutations of the engine are invisible to the snapshot.
    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        Err(gdm_core::GdmError::unsupported(
            self.name(),
            "snapshot".to_owned(),
        ))
    }

    /// Refreshes a previously taken snapshot to the engine's current
    /// state. Engines record their mutations in a
    /// [`gdm_core::DeltaTracker`] and override this with the
    /// O(changes) incremental re-freeze
    /// ([`gdm_algo::incremental_refreeze`]), patching only the CSR
    /// rows and index segments the delta touches and sharing the rest
    /// with `prev`. The default falls back to a full
    /// [`GraphEngine::snapshot`]. Either way the result is
    /// content-identical to a fresh full snapshot — incrementality is
    /// a cost property, never a semantic one — and carries a new
    /// epoch, so serving layers can swap it in and key caches off it.
    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let _ = prev;
        self.snapshot()
    }

    /// How many mutations the engine's [`gdm_core::DeltaTracker`] has
    /// recorded since its snapshot was last (re-)frozen — the signal a
    /// serving layer's auto-refresh policy triggers on. `u64::MAX`
    /// means the delta degraded to "everything changed" (untracked
    /// mutation or spill) and the next re-freeze will rebuild fully.
    /// Engines without a tracker report 0 (their snapshots, when they
    /// have any, are full rebuilds either way).
    fn pending_changes(&self) -> u64 {
        0
    }

    /// Everything a network serving layer needs to answer read queries
    /// for this engine from worker threads: the point-in-time CSR
    /// snapshot plus the engine's identity and default limits.
    ///
    /// Engines themselves are deliberately not `Send` (several emulate
    /// 2012 storage managers with interior caches), so a server never
    /// holds the engine — it takes one `ServingSnapshot` per engine at
    /// startup and shares the immutable snapshot across sessions.
    /// Refuses exactly when [`GraphEngine::snapshot`] refuses.
    fn serving_snapshot(&self) -> Result<ServingSnapshot> {
        Ok(ServingSnapshot {
            engine: self.name(),
            frozen: self.snapshot()?,
            limits: self.default_limits(),
        })
    }

    // ---- governed execution (robustness) -----------------------------

    /// The engine's default resource limits for governed execution —
    /// what an operator would configure as this engine's query
    /// timeout/budget. [`Limits::none()`] means "no default limits";
    /// engines emulating systems with configurable traversal bounds
    /// override this. Callers combine these with their own limits via
    /// the [`Limits`] builders before constructing an
    /// [`ExecutionGuard`].
    fn default_limits(&self) -> Limits {
        Limits::none()
    }

    /// Runs one unbounded-cost essential query under `guard`:
    /// cooperative deadline/budget/cancellation checks inside the hot
    /// loops, returning [`gdm_core::GdmError::Interrupted`] (with the
    /// partial-progress count) instead of hanging when a limit trips.
    /// With an unlimited guard the answers equal the ungoverned probes.
    ///
    /// The default implementation freezes [`GraphEngine::snapshot`] and
    /// runs the governed algorithms over the snapshot, so every engine
    /// with a snapshot gets governed execution for free; engines whose
    /// ungoverned probe refuses (e.g. no pattern matching through the
    /// API) still answer here, because governed execution is harness
    /// machinery, not an emulated 2012 feature.
    fn run_governed(&self, op: GovernedOp<'_>, guard: &ExecutionGuard) -> Result<GovernedAnswer> {
        let fz = self.snapshot()?;
        match op {
            GovernedOp::PatternMatch(pattern) => {
                // The snapshot is a concrete CSR graph, so governed
                // pattern matching runs the vectorized batch executor
                // (guard ticked per batch, same `Interrupted`
                // semantics, same rows as the planned matcher) —
                // morsel-parallel across the executor worker pool when
                // more than one core is available.
                let table = gdm_algo::match_pattern_par_vectorized_governed(
                    &fz,
                    pattern,
                    gdm_algo::executor_workers(),
                    guard,
                )?;
                Ok(GovernedAnswer::Matches(table.len()))
            }
            GovernedOp::ShortestPath(a, b) => Ok(GovernedAnswer::Path(
                gdm_algo::shortest_path_governed(&fz, a, b, guard)?.map(|p| p.nodes),
            )),
            GovernedOp::RegularPath(a, b, expr) => {
                let regex = gdm_algo::LabelRegex::compile(expr)?;
                Ok(GovernedAnswer::Reachable(
                    gdm_algo::regular_path_exists_governed(&fz, a, b, &regex, guard)?,
                ))
            }
            GovernedOp::Diameter => Ok(GovernedAnswer::Diameter(gdm_algo::diameter_governed(
                &fz,
                Direction::Outgoing,
                guard,
            )?)),
        }
    }

    // ---- transactions (the paper's database-vs-store split) ----------
    //
    // Section II: "We assume that a graph database must provide most of
    // the major components in database management systems, being them:
    // ... transaction engine ..." — the six systems it classes as
    // *graph databases* get snapshot transactions; the three *graph
    // stores* (Filament, G-Store, VertexDB) inherit these refusals.

    /// Begins a transaction. Graph *stores* refuse (no transaction
    /// engine — the paper's category distinction).
    fn begin_transaction(&mut self) -> Result<()> {
        Err(gdm_core::GdmError::unsupported(
            self.name(),
            "transactions (graph store, not a graph database)".to_owned(),
        ))
    }

    /// Commits the open transaction.
    fn commit_transaction(&mut self) -> Result<()> {
        Err(gdm_core::GdmError::unsupported(
            self.name(),
            "transactions (graph store, not a graph database)".to_owned(),
        ))
    }

    /// Rolls the open transaction back, restoring the pre-transaction
    /// state.
    fn rollback_transaction(&mut self) -> Result<()> {
        Err(gdm_core::GdmError::unsupported(
            self.name(),
            "transactions (graph store, not a graph database)".to_owned(),
        ))
    }

    // ---- storage (Table I probes) ------------------------------------

    /// Flushes state to durable storage. Pure main-memory engines
    /// return `Unsupported` (Table I "External memory" blank).
    fn persist(&mut self) -> Result<()>;

    /// Creates a secondary index on a node property.
    fn create_index(&mut self, property: &str) -> Result<()>;

    /// Point lookup by property value; routes through an index when
    /// one exists.
    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>>;
}

/// The nine surveyed engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// AllegroGraph.
    Allegro,
    /// DEX.
    Dex,
    /// Filament.
    Filament,
    /// G-Store.
    GStore,
    /// HyperGraphDB.
    HyperGraphDb,
    /// InfiniteGraph.
    InfiniteGraph,
    /// Neo4j.
    Neo4j,
    /// Sones.
    Sones,
    /// VertexDB.
    VertexDb,
}

impl EngineKind {
    /// All engines in the paper's table order.
    pub fn all() -> [EngineKind; 9] {
        [
            EngineKind::Allegro,
            EngineKind::Dex,
            EngineKind::Filament,
            EngineKind::GStore,
            EngineKind::HyperGraphDb,
            EngineKind::InfiniteGraph,
            EngineKind::Neo4j,
            EngineKind::Sones,
            EngineKind::VertexDb,
        ]
    }

    /// The paper's spelling.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Allegro => "AllegroGraph",
            EngineKind::Dex => "DEX",
            EngineKind::Filament => "Filament",
            EngineKind::GStore => "G-Store",
            EngineKind::HyperGraphDb => "HyperGraphDB",
            EngineKind::InfiniteGraph => "InfiniteGraph",
            EngineKind::Neo4j => "Neo4j",
            EngineKind::Sones => "Sones",
            EngineKind::VertexDb => "VertexDB",
        }
    }
}

/// Builds an engine. `dir` is where disk-capable engines keep files;
/// engines that persist reload existing data from it.
pub fn make_engine(kind: EngineKind, dir: &Path) -> Result<Box<dyn GraphEngine>> {
    Ok(match kind {
        EngineKind::Allegro => Box::new(crate::allegro::AllegroEngine::open(dir)?),
        EngineKind::Dex => Box::new(crate::dex::DexEngine::open(dir)?),
        EngineKind::Filament => Box::new(crate::filament::FilamentEngine::open(dir)?),
        EngineKind::GStore => Box::new(crate::gstore::GStoreEngine::open(dir)?),
        EngineKind::HyperGraphDb => Box::new(crate::hypergraphdb::HyperGraphDbEngine::open(dir)?),
        EngineKind::InfiniteGraph => {
            Box::new(crate::infinitegraph::InfiniteGraphEngine::open(dir)?)
        }
        EngineKind::Neo4j => Box::new(crate::neo4j::Neo4jEngine::open(dir)?),
        EngineKind::Sones => Box::new(crate::sones::SonesEngine::new()),
        EngineKind::VertexDb => Box::new(crate::vertexdb::VertexDbEngine::open(dir)?),
    })
}

/// Builds every engine into per-engine subdirectories of `dir`.
pub fn all_engines(dir: &Path) -> Result<Vec<Box<dyn GraphEngine>>> {
    EngineKind::all()
        .into_iter()
        .map(|kind| {
            let sub: PathBuf = dir.join(kind.label().to_lowercase().replace('-', "_"));
            std::fs::create_dir_all(&sub)?;
            make_engine(kind, &sub)
        })
        .collect()
}
