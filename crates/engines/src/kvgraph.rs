//! A simple graph layered over any [`KvStore`] — the shared substrate
//! for the "graph store on a key/value backend" engines (Filament on
//! JDB, VertexDB on TokyoCabinet).
//!
//! Layout (all integers big-endian via `gdm_storage::codec`):
//!
//! ```text
//! m/meta            → next_node, next_edge, node_count, edge_count
//! m/syms            → interned label table
//! n/<node>          → label symbol, property map
//! e/<edge>          → from, to, label symbol, property map
//! o/<from><edge>    → to, label symbol      (out adjacency)
//! i/<to><edge>      → from, label symbol    (in adjacency)
//! ```
//!
//! Reads go through a `RefCell` because disk-backed stores mutate
//! their buffer pool on reads; the structure is single-threaded like
//! the embedded stores it models.

use gdm_core::{
    EdgeId, EdgeRef, GdmError, GraphView, Interner, NodeId, PropertyMap, Result, Symbol, Value,
};
use gdm_storage::codec::{
    decode_value, encode_value, get_bytes, get_u32, get_u64, get_varint, put_bytes, put_u32,
    put_u64, put_varint,
};
use gdm_storage::KvStore;
use std::cell::RefCell;

const NO_LABEL: u32 = u32::MAX;

/// A labeled simple multigraph stored in a KV backend.
pub struct KvGraph {
    kv: RefCell<Box<dyn KvStore>>,
    interner: Interner,
    next_node: u64,
    next_edge: u64,
    node_count: u64,
    edge_count: u64,
}

impl KvGraph {
    /// Opens the graph stored in `kv`, creating it when empty.
    pub fn new(kv: Box<dyn KvStore>) -> Result<Self> {
        let mut g = Self {
            kv: RefCell::new(kv),
            interner: Interner::new(),
            next_node: 0,
            next_edge: 0,
            node_count: 0,
            edge_count: 0,
        };
        let meta = g.kv.borrow_mut().get(b"m/meta")?;
        if let Some(buf) = meta {
            let mut pos = 0;
            g.next_node = get_u64(&buf, &mut pos)?;
            g.next_edge = get_u64(&buf, &mut pos)?;
            g.node_count = get_u64(&buf, &mut pos)?;
            g.edge_count = get_u64(&buf, &mut pos)?;
        }
        if let Some(buf) = g.kv.borrow_mut().get(b"m/syms")? {
            let mut pos = 0;
            let count = get_varint(&buf, &mut pos)?;
            for _ in 0..count {
                let s = get_bytes(&buf, &mut pos)?;
                let text = std::str::from_utf8(s)
                    .map_err(|_| GdmError::Storage("bad symbol table".into()))?;
                g.interner.intern(text);
            }
        }
        Ok(g)
    }

    /// Writes metadata and flushes the backend.
    pub fn flush(&mut self) -> Result<()> {
        let mut meta = Vec::with_capacity(32);
        put_u64(&mut meta, self.next_node);
        put_u64(&mut meta, self.next_edge);
        put_u64(&mut meta, self.node_count);
        put_u64(&mut meta, self.edge_count);
        let mut kv = self.kv.borrow_mut();
        kv.put(b"m/meta", &meta)?;
        let mut syms = Vec::new();
        put_varint(&mut syms, self.interner.len() as u64);
        for (_, text) in self.interner.iter() {
            put_bytes(&mut syms, text.as_bytes());
        }
        kv.put(b"m/syms", &syms)?;
        kv.flush()
    }

    /// Adds a node.
    pub fn add_node(&mut self, label: Option<&str>, props: &PropertyMap) -> Result<NodeId> {
        let sym = match label {
            Some(l) => self.interner.intern(l).raw(),
            None => NO_LABEL,
        };
        let id = self.next_node;
        self.next_node += 1;
        let mut rec = Vec::new();
        put_u32(&mut rec, sym);
        encode_props(&mut rec, props);
        self.kv.borrow_mut().put(&node_key(id), &rec)?;
        self.node_count += 1;
        Ok(NodeId(id))
    }

    /// Adds an edge.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: &PropertyMap,
    ) -> Result<EdgeId> {
        self.require_node(from)?;
        self.require_node(to)?;
        let sym = match label {
            Some(l) => self.interner.intern(l).raw(),
            None => NO_LABEL,
        };
        let id = self.next_edge;
        self.next_edge += 1;
        let mut rec = Vec::new();
        put_u64(&mut rec, from.raw());
        put_u64(&mut rec, to.raw());
        put_u32(&mut rec, sym);
        encode_props(&mut rec, props);
        let mut adj = Vec::with_capacity(12);
        put_u64(&mut adj, to.raw());
        put_u32(&mut adj, sym);
        let mut radj = Vec::with_capacity(12);
        put_u64(&mut radj, from.raw());
        put_u32(&mut radj, sym);
        let mut kv = self.kv.borrow_mut();
        kv.put(&edge_key(id), &rec)?;
        kv.put(&adj_key(b'o', from.raw(), id), &adj)?;
        kv.put(&adj_key(b'i', to.raw(), id), &radj)?;
        drop(kv);
        self.edge_count += 1;
        Ok(EdgeId(id))
    }

    /// Reads an edge's `(from, to, label)`.
    pub fn edge(&self, e: EdgeId) -> Result<(NodeId, NodeId, Option<Symbol>)> {
        let rec = self
            .kv
            .borrow_mut()
            .get(&edge_key(e.raw()))?
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        let mut pos = 0;
        let from = get_u64(&rec, &mut pos)?;
        let to = get_u64(&rec, &mut pos)?;
        let sym = get_u32(&rec, &mut pos)?;
        Ok((
            NodeId(from),
            NodeId(to),
            (sym != NO_LABEL).then_some(Symbol(sym)),
        ))
    }

    /// Node label text.
    pub fn node_label(&self, n: NodeId) -> Result<Option<String>> {
        let rec = self.node_record(n)?;
        let mut pos = 0;
        let sym = get_u32(&rec, &mut pos)?;
        Ok((sym != NO_LABEL)
            .then(|| self.interner.resolve(Symbol(sym)).map(str::to_owned))
            .flatten())
    }

    /// Node properties.
    pub fn node_props(&self, n: NodeId) -> Result<PropertyMap> {
        let rec = self.node_record(n)?;
        let mut pos = 4;
        decode_props(&rec, &mut pos)
    }

    /// Sets a node property.
    pub fn set_node_prop(&mut self, n: NodeId, key: &str, value: Value) -> Result<()> {
        let rec = self.node_record(n)?;
        let mut pos = 0;
        let sym = get_u32(&rec, &mut pos)?;
        let mut props = decode_props(&rec, &mut pos)?;
        props.set(key, value);
        let mut out = Vec::new();
        put_u32(&mut out, sym);
        encode_props(&mut out, &props);
        self.kv.borrow_mut().put(&node_key(n.raw()), &out)?;
        Ok(())
    }

    /// Edge properties.
    pub fn edge_props(&self, e: EdgeId) -> Result<PropertyMap> {
        let rec = self
            .kv
            .borrow_mut()
            .get(&edge_key(e.raw()))?
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        let mut pos = 20; // from + to + sym
        decode_props(&rec, &mut pos)
    }

    /// Deletes an edge.
    pub fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        let (from, to, _) = self.edge(e)?;
        let mut kv = self.kv.borrow_mut();
        kv.delete(&edge_key(e.raw()))?;
        kv.delete(&adj_key(b'o', from.raw(), e.raw()))?;
        kv.delete(&adj_key(b'i', to.raw(), e.raw()))?;
        drop(kv);
        self.edge_count -= 1;
        Ok(())
    }

    /// Deletes a node and its incident edges.
    pub fn delete_node(&mut self, n: NodeId) -> Result<()> {
        self.require_node(n)?;
        let mut incident = Vec::new();
        self.visit_out_edges(n, &mut |e| incident.push(e.id));
        self.visit_in_edges(n, &mut |e| incident.push(e.id));
        incident.sort_unstable();
        incident.dedup();
        for e in incident {
            self.delete_edge(e)?;
        }
        self.kv.borrow_mut().delete(&node_key(n.raw()))?;
        self.node_count -= 1;
        Ok(())
    }

    fn node_record(&self, n: NodeId) -> Result<Vec<u8>> {
        self.kv
            .borrow_mut()
            .get(&node_key(n.raw()))?
            .ok_or_else(|| GdmError::NotFound(format!("node {n}")))
    }

    fn require_node(&self, n: NodeId) -> Result<()> {
        self.node_record(n).map(|_| ())
    }

    fn visit_adjacency(&self, tag: u8, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let prefix = adj_prefix(tag, n.raw());
        let entries = self
            .kv
            .borrow_mut()
            .scan_prefix(&prefix)
            .expect("kv scan cannot fail on read");
        for (key, value) in entries {
            let mut pos = prefix.len();
            let Ok(edge) = get_u64(&key, &mut pos) else {
                continue;
            };
            let mut vpos = 0;
            let Ok(other) = get_u64(&value, &mut vpos) else {
                continue;
            };
            let Ok(sym) = get_u32(&value, &mut vpos) else {
                continue;
            };
            f(EdgeRef {
                id: EdgeId(edge),
                from: n,
                to: NodeId(other),
                label: (sym != NO_LABEL).then_some(Symbol(sym)),
            });
        }
    }
}

impl GraphView for KvGraph {
    fn is_directed(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.node_count as usize
    }

    fn edge_count(&self) -> usize {
        self.edge_count as usize
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.node_record(n).is_ok()
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        let entries = self
            .kv
            .borrow_mut()
            .scan_prefix(b"n/")
            .expect("kv scan cannot fail on read");
        for (key, _) in entries {
            let mut pos = 2;
            if let Ok(id) = get_u64(&key, &mut pos) {
                f(NodeId(id));
            }
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        self.visit_adjacency(b'o', n, f);
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        self.visit_adjacency(b'i', n, f);
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.interner.resolve(sym)
    }
}

fn node_key(id: u64) -> Vec<u8> {
    let mut k = b"n/".to_vec();
    put_u64(&mut k, id);
    k
}

fn edge_key(id: u64) -> Vec<u8> {
    let mut k = b"e/".to_vec();
    put_u64(&mut k, id);
    k
}

fn adj_prefix(tag: u8, node: u64) -> Vec<u8> {
    let mut k = vec![tag, b'/'];
    put_u64(&mut k, node);
    k
}

fn adj_key(tag: u8, node: u64, edge: u64) -> Vec<u8> {
    let mut k = adj_prefix(tag, node);
    put_u64(&mut k, edge);
    k
}

fn encode_props(out: &mut Vec<u8>, props: &PropertyMap) {
    put_varint(out, props.len() as u64);
    for (k, v) in props {
        put_bytes(out, k.as_bytes());
        encode_value(out, v);
    }
}

fn decode_props(buf: &[u8], pos: &mut usize) -> Result<PropertyMap> {
    let count = get_varint(buf, pos)?;
    let mut props = PropertyMap::new();
    for _ in 0..count {
        let key = std::str::from_utf8(get_bytes(buf, pos)?)
            .map_err(|_| GdmError::Storage("bad property key".into()))?
            .to_owned();
        let value = decode_value(buf, pos)?;
        props.set(key, value);
    }
    Ok(props)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;
    use gdm_storage::{DiskBTree, MemKv};

    fn mem_graph() -> KvGraph {
        KvGraph::new(Box::new(MemKv::new())).unwrap()
    }

    #[test]
    fn nodes_and_edges_round_trip() {
        let mut g = mem_graph();
        let a = g
            .add_node(Some("doc"), &props! { "title" => "intro" })
            .unwrap();
        let b = g.add_node(None, &props! {}).unwrap();
        let e = g
            .add_edge(a, b, Some("links"), &props! { "rank" => 3 })
            .unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_label(a).unwrap().as_deref(), Some("doc"));
        assert_eq!(g.node_label(b).unwrap(), None);
        assert_eq!(
            g.node_props(a).unwrap().get("title"),
            Some(&Value::from("intro"))
        );
        assert_eq!(g.edge_props(e).unwrap().get("rank"), Some(&Value::from(3)));
        let (f, t, sym) = g.edge(e).unwrap();
        assert_eq!((f, t), (a, b));
        assert_eq!(g.label_text(sym.unwrap()), Some("links"));
    }

    #[test]
    fn adjacency_scans() {
        let mut g = mem_graph();
        let a = g.add_node(None, &props! {}).unwrap();
        let b = g.add_node(None, &props! {}).unwrap();
        let c = g.add_node(None, &props! {}).unwrap();
        g.add_edge(a, b, Some("x"), &props! {}).unwrap();
        g.add_edge(a, c, Some("y"), &props! {}).unwrap();
        g.add_edge(b, c, Some("x"), &props! {}).unwrap();
        assert_eq!(g.out_neighbors(a), vec![b, c]);
        assert_eq!(g.in_degree(c), 2);
        assert_eq!(g.out_degree(c), 0);
    }

    #[test]
    fn deletion_cleans_adjacency() {
        let mut g = mem_graph();
        let a = g.add_node(None, &props! {}).unwrap();
        let b = g.add_node(None, &props! {}).unwrap();
        let e = g.add_edge(a, b, None, &props! {}).unwrap();
        g.delete_edge(e).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(a), 0);
        assert!(g.edge(e).is_err());

        let e2 = g.add_edge(a, b, None, &props! {}).unwrap();
        g.add_edge(b, a, None, &props! {}).unwrap();
        g.delete_node(a).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.edge(e2).is_err());
    }

    #[test]
    fn set_node_prop_overwrites() {
        let mut g = mem_graph();
        let a = g.add_node(Some("n"), &props! { "v" => 1 }).unwrap();
        g.set_node_prop(a, "v", Value::from(2)).unwrap();
        g.set_node_prop(a, "w", Value::from("new")).unwrap();
        let p = g.node_props(a).unwrap();
        assert_eq!(p.get("v"), Some(&Value::from(2)));
        assert_eq!(p.get("w"), Some(&Value::from("new")));
        assert_eq!(g.node_label(a).unwrap().as_deref(), Some("n"));
    }

    #[test]
    fn persists_over_disk_btree() {
        let dir = std::env::temp_dir().join(format!("gdm-kvgraph-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kvgraph.db");
        let _ = std::fs::remove_file(&path);
        let (a, b);
        {
            let tree = DiskBTree::file(&path, 32).unwrap();
            let mut g = KvGraph::new(Box::new(tree)).unwrap();
            a = g.add_node(Some("page"), &props! { "url" => "/" }).unwrap();
            b = g.add_node(Some("page"), &props! {}).unwrap();
            g.add_edge(a, b, Some("links"), &props! {}).unwrap();
            g.flush().unwrap();
        }
        {
            let tree = DiskBTree::file(&path, 32).unwrap();
            let g = KvGraph::new(Box::new(tree)).unwrap();
            assert_eq!(g.node_count(), 2);
            assert_eq!(g.edge_count(), 1);
            assert_eq!(g.node_label(a).unwrap().as_deref(), Some("page"));
            assert_eq!(g.out_neighbors(a), vec![b]);
            let e = g.out_edges(a)[0];
            assert_eq!(g.label_text(e.label.unwrap()), Some("links"));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_entities_error() {
        let mut g = mem_graph();
        let a = g.add_node(None, &props! {}).unwrap();
        assert!(g.add_edge(a, NodeId(99), None, &props! {}).is_err());
        assert!(g.node_props(NodeId(5)).is_err());
        assert!(g.delete_edge(EdgeId(0)).is_err());
    }
}
