//! InfiniteGraph emulation.
//!
//! The paper: "InfiniteGraph is a database oriented to support
//! large-scale graphs in a distributed environment. It aims the
//! efficient traversal of relations across massive and distributed
//! data stores." Profile: attributed directed multigraph (Table III),
//! external memory with indexes (Table I), API only (Table II), type
//! checking + identity constraints (Table VI).
//!
//! The distribution substitution (DESIGN.md §2): nodes get an explicit
//! partition assignment; [`InfiniteGraphEngine::edge_cut`] and
//! [`InfiniteGraphEngine::partitioned_view`] expose the remote-hop
//! cost model the partition ablation bench measures.

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use gdm_algo::adjacency::{k_neighborhood, nodes_adjacent};
use gdm_algo::paths::{fixed_length_paths, shortest_path};
use gdm_algo::regular::{regular_path_exists, LabelRegex};
use gdm_algo::summary;
use gdm_core::{
    AttributedView, DeltaTracker, Direction, EdgeId, FxHashMap, GdmError, GraphView, NodeId,
    PropertyMap, Result, Support, Value,
};
use gdm_graphs::partitioned::{PartitionedGraph, Strategy};
use gdm_graphs::PropertyGraph;
use gdm_query::eval::ResultSet;
use gdm_schema::{validate, Constraint};
use gdm_storage::{BTreeIndex, ValueIndex};
use std::cell::RefCell;
use std::path::{Path, PathBuf};

const NAME: &str = "InfiniteGraph";
const PATH_BUDGET: usize = 1_000_000;

/// The InfiniteGraph emulation.
pub struct InfiniteGraphEngine {
    graph: PropertyGraph,
    partitions: u32,
    partition_of: FxHashMap<u64, u32>,
    indexes: FxHashMap<String, BTreeIndex>,
    constraints: Vec<Constraint>,
    snapshot_path: PathBuf,
    tx_snapshot: Option<(PropertyGraph, FxHashMap<u64, u32>)>,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze (`RefCell`: snapshots reset it through
    /// `&self`; engines are not `Send`, so access is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl InfiniteGraphEngine {
    /// Opens (or creates) the store under `dir` with 4 simulated
    /// partitions.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with_partitions(dir, 4)
    }

    /// Opens with an explicit partition count.
    pub fn open_with_partitions(dir: &Path, partitions: u32) -> Result<Self> {
        let snapshot_path = dir.join("infinitegraph.snapshot");
        let graph = if snapshot_path.exists() {
            PropertyGraph::from_snapshot(&std::fs::read(&snapshot_path)?)?
        } else {
            PropertyGraph::new()
        };
        let mut engine = Self {
            graph,
            partitions: partitions.max(1),
            partition_of: FxHashMap::default(),
            indexes: FxHashMap::default(),
            constraints: Vec::new(),
            snapshot_path,
            tx_snapshot: None,
            delta: RefCell::new(DeltaTracker::new()),
        };
        let mut nodes = Vec::new();
        engine.graph.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            engine.assign_partition(n);
        }
        Ok(engine)
    }

    fn assign_partition(&mut self, n: NodeId) {
        let h = n.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.partition_of
            .insert(n.raw(), (h % u64::from(self.partitions)) as u32);
    }

    /// The partition a node lives on.
    pub fn partition_of(&self, n: NodeId) -> Option<u32> {
        self.partition_of.get(&n.raw()).copied()
    }

    /// Edges whose endpoints live on different partitions.
    pub fn edge_cut(&self) -> usize {
        let mut cut = 0;
        for e in self.graph.edge_ids() {
            let (from, to) = self.graph.edge_endpoints(e).expect("live");
            if self.partition_of.get(&from.raw()) != self.partition_of.get(&to.raw()) {
                cut += 1;
            }
        }
        cut
    }

    /// A hop-accounting partitioned view of the current data, for the
    /// distribution benches.
    pub fn partitioned_view(&self, strategy: Strategy) -> PartitionedGraph {
        PartitionedGraph::new(self.graph.clone(), self.partitions, strategy)
    }

    /// The wrapped property graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    fn check_constraints(&self) -> Result<()> {
        match validate(&self.graph, &self.constraints).into_iter().next() {
            Some(v) => Err(GdmError::Constraint(v.to_string())),
            None => Ok(()),
        }
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }
}

impl GraphEngine for InfiniteGraphEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::None,
            graphical_ql: Support::None,
            query_language_grade: Support::None,
            backend_storage: Support::None,
            blurb: "large-scale graphs in a distributed environment; traversal across stores",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        let label = label.ok_or_else(|| {
            GdmError::InvalidArgument("InfiniteGraph vertices require a type".into())
        })?;
        let n = self.graph.add_node(label, props.clone());
        if let Err(e) = self.check_constraints() {
            self.graph.remove_node(n)?;
            return Err(e);
        }
        self.assign_partition(n);
        for (key, index) in self.indexes.iter_mut() {
            if let Some(v) = props.get(key) {
                index.insert(v, n.raw());
            }
        }
        self.delta.get_mut().touch_node(n.raw());
        Ok(n)
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let label = label.ok_or_else(|| {
            GdmError::InvalidArgument("InfiniteGraph edges require a type".into())
        })?;
        let e = self.graph.add_edge(from, to, label, props)?;
        if let Err(err) = self.check_constraints() {
            self.graph.remove_edge(e)?;
            return Err(err);
        }
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(e)
    }

    fn create_hyperedge(
        &mut self,
        _label: &str,
        _targets: &[NodeId],
        _props: PropertyMap,
    ) -> Result<EdgeId> {
        self.unsupported("hyperedges")
    }

    fn create_edge_on_edge(&mut self, _from: EdgeId, _to: NodeId, _label: &str) -> Result<EdgeId> {
        self.unsupported("edges between edges")
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, n: NodeId, key: &str, value: Value) -> Result<()> {
        let old = self.graph.set_node_property(n, key, value.clone())?;
        self.delta.get_mut().touch_node(n.raw());
        if let Err(e) = self.check_constraints() {
            if let Some(v) = old {
                self.graph.set_node_property(n, key, v)?;
            }
            return Err(e);
        }
        if let Some(index) = self.indexes.get_mut(key) {
            if let Some(v) = old {
                index.remove(&v, n.raw());
            }
            index.insert(&value, n.raw());
        }
        Ok(())
    }

    fn set_edge_attribute(&mut self, e: EdgeId, key: &str, value: Value) -> Result<()> {
        self.graph.set_edge_property(e, key, value)?;
        self.delta.get_mut().touch_edge_props(e.raw());
        Ok(())
    }

    fn node_attribute(&self, n: NodeId, key: &str) -> Result<Option<Value>> {
        self.graph.node_properties(n)?;
        Ok(self.graph.node_property(n, key))
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        self.graph.remove_node(n)?;
        self.partition_of.remove(&n.raw());
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        self.graph.remove_edge(e)?;
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn define_node_type(&mut self, _def: gdm_schema::NodeTypeDef) -> Result<()> {
        // Types exist implicitly; schema lives in the type-checking
        // constraint when installed.
        Ok(())
    }

    fn define_edge_type(&mut self, _def: gdm_schema::EdgeTypeDef) -> Result<()> {
        Ok(())
    }

    fn install_constraint(&mut self, constraint: Constraint) -> Result<()> {
        match &constraint {
            Constraint::TypeChecking(_) | Constraint::Identity { .. } => {
                let mut probe = self.constraints.clone();
                probe.push(constraint.clone());
                if let Some(v) = validate(&self.graph, &probe).into_iter().next() {
                    return Err(GdmError::Constraint(v.to_string()));
                }
                self.constraints.push(constraint);
                Ok(())
            }
            _ => self.unsupported("this constraint kind (types and identity only)"),
        }
    }

    fn execute_ddl(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data definition language")
    }

    fn execute_dml(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data manipulation language")
    }

    fn execute_query(&mut self, _query: &str) -> Result<ResultSet> {
        self.unsupported("a query language")
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, _func: AnalysisFunc) -> Result<Value> {
        self.unsupported("analysis functions")
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(nodes_adjacent(&self.graph, a, b))
    }

    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>> {
        Ok(k_neighborhood(&self.graph, n, k, Direction::Outgoing))
    }

    fn fixed_length_paths(&self, a: NodeId, b: NodeId, len: usize) -> Result<usize> {
        Ok(fixed_length_paths(&self.graph, a, b, len, PATH_BUDGET)?.len())
    }

    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool> {
        let regex = LabelRegex::compile(expr)?;
        Ok(regular_path_exists(&self.graph, a, b, &regex))
    }

    fn shortest_path(&self, a: NodeId, b: NodeId) -> Result<Option<Vec<NodeId>>> {
        Ok(shortest_path(&self.graph, a, b).map(|p| p.nodes))
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        self.unsupported("pattern matching queries")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&self.graph);
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze(&self.graph, prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // A distributed-deployment database: generous wall-clock but a
        // bounded visit budget, on the model of its traversal policies.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(30))
            .with_node_visits(10_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        Ok(match func {
            SummaryFunc::PropertyAggregate(agg, key) => {
                let mut values = Vec::new();
                self.graph.visit_nodes(&mut |n| {
                    if let Some(v) = self.graph.node_property(n, key) {
                        values.push(v);
                    }
                });
                summary::aggregate(agg, &values)?
            }
            other => crate::vertexdb::summarize_simple(&self.graph, other, NAME)?,
        })
    }

    fn begin_transaction(&mut self) -> Result<()> {
        if self.tx_snapshot.is_some() {
            return Err(GdmError::InvalidArgument("transaction already open".into()));
        }
        self.tx_snapshot = Some((self.graph.clone(), self.partition_of.clone()));
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<()> {
        self.tx_snapshot
            .take()
            .map(|_| ())
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))
    }

    fn rollback_transaction(&mut self) -> Result<()> {
        let (graph, partitions) = self
            .tx_snapshot
            .take()
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))?;
        self.graph = graph;
        self.partition_of = partitions;
        // The rollback rewinds past everything tracked in the open
        // transaction; the tracker cannot un-record, so degrade.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn persist(&mut self) -> Result<()> {
        std::fs::write(&self.snapshot_path, self.graph.to_snapshot())?;
        Ok(())
    }

    fn create_index(&mut self, property: &str) -> Result<()> {
        let mut index = BTreeIndex::new();
        let mut nodes = Vec::new();
        self.graph.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            if let Some(v) = self.graph.node_property(n, property) {
                index.insert(&v, n.raw());
            }
        }
        self.indexes.insert(property.to_owned(), index);
        Ok(())
    }

    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        if let Some(index) = self.indexes.get(key) {
            return Ok(index.lookup(value).into_iter().map(NodeId).collect());
        }
        let mut out = Vec::new();
        self.graph.visit_nodes(&mut |n| {
            if self.graph.node_property(n, key).as_ref() == Some(value) {
                out.push(n);
            }
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;

    fn temp_engine(tag: &str) -> InfiniteGraphEngine {
        let dir = std::env::temp_dir().join(format!("gdm-ig-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        InfiniteGraphEngine::open(&dir).unwrap()
    }

    #[test]
    fn partitions_assigned() {
        let mut e = temp_engine("parts");
        let nodes: Vec<NodeId> = (0..32)
            .map(|i| e.create_node(Some("v"), props! { "i" => i }).unwrap())
            .collect();
        for n in &nodes {
            assert!(e.partition_of(*n).is_some());
        }
        for w in nodes.windows(2) {
            e.create_edge(w[0], w[1], Some("r"), props! {}).unwrap();
        }
        assert!(e.edge_cut() > 0, "hash placement cuts a ring");
    }

    #[test]
    fn essential_queries() {
        let mut e = temp_engine("essential");
        let a = e.create_node(Some("v"), props! {}).unwrap();
        let b = e.create_node(Some("v"), props! {}).unwrap();
        let c = e.create_node(Some("v"), props! {}).unwrap();
        e.create_edge(a, b, Some("r"), props! {}).unwrap();
        e.create_edge(b, c, Some("r"), props! {}).unwrap();
        assert!(e.adjacent(a, b).unwrap());
        assert_eq!(e.k_neighborhood(a, 2).unwrap(), vec![b, c]);
        assert_eq!(e.shortest_path(a, c).unwrap().unwrap().len(), 3);
        assert_eq!(e.fixed_length_paths(a, c, 2).unwrap(), 1);
        assert!(e
            .pattern_match(&gdm_algo::pattern::Pattern::new())
            .unwrap_err()
            .is_unsupported());
        assert!(e.execute_query("x").unwrap_err().is_unsupported());
    }

    #[test]
    fn btree_index_range_capable() {
        let mut e = temp_engine("index");
        for age in [25, 30, 35] {
            e.create_node(Some("p"), props! { "age" => age }).unwrap();
        }
        e.create_index("age").unwrap();
        assert_eq!(
            e.lookup_by_property("age", &Value::from(30)).unwrap().len(),
            1
        );
    }

    #[test]
    fn constraints() {
        let mut e = temp_engine("constraints");
        e.install_constraint(Constraint::Identity {
            type_name: "v".into(),
            property: "key".into(),
        })
        .unwrap();
        e.create_node(Some("v"), props! { "key" => 1 }).unwrap();
        assert!(e.create_node(Some("v"), props! { "key" => 1 }).is_err());
        assert_eq!(GraphEngine::node_count(&e), 1);
    }

    #[test]
    fn persistence() {
        let dir = std::env::temp_dir().join(format!("gdm-ig-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a;
        {
            let mut e = InfiniteGraphEngine::open(&dir).unwrap();
            a = e.create_node(Some("v"), props! { "x" => 9 }).unwrap();
            e.persist().unwrap();
        }
        {
            let e = InfiniteGraphEngine::open(&dir).unwrap();
            assert_eq!(e.node_attribute(a, "x").unwrap(), Some(Value::from(9)));
            assert!(e.partition_of(a).is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
