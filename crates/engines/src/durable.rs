//! Durable mode for the engine facade: logical-operation journaling
//! over the `gdm-wal` subsystem.
//!
//! [`DurableEngine`] wraps any [`GraphEngine`] and records every
//! successful data mutation as a *logical operation* in a write-ahead
//! journal. The journal is a [`DurableKv`] whose table maps a
//! monotonically increasing operation sequence number to the encoded
//! operation, so the whole WAL machinery — group commit, segment
//! rotation, checkpoints, torn-tail recovery — is reused unchanged.
//! On reopen, the wrapper rebuilds the engine from scratch by replaying
//! the committed operations in order; engines allocate ids
//! monotonically and never reuse them, which makes replay reproduce the
//! exact same `NodeId`/`EdgeId` assignment.
//!
//! Facade transactions map one-to-one onto journal transactions:
//! operations inside `begin_transaction`…`commit_transaction` become
//! durable atomically, and a crash before the commit record is synced
//! discards them all.
//!
//! Deliberate limits (returned as the structured
//! [`GdmError::NotJournalable`], recorded in `ROADMAP.md`): schema DDL
//! through the typed API (`define_node_type`, `define_edge_type`,
//! `install_constraint`) is not journaled because the schema
//! definition types have no stable byte encoding yet — the error names
//! that limitation and the workarounds. Textual DDL/DML
//! (`execute_ddl`/`execute_dml`) *is* journaled — the statement text
//! is its own encoding.

use crate::facade::{
    make_engine, AnalysisFunc, EngineDescriptor, EngineKind, GraphEngine, SummaryFunc,
};
use gdm_algo::pattern::Pattern;
use gdm_core::{EdgeId, GdmError, NodeId, PropertyMap, Result, Value};
use gdm_query::eval::ResultSet;
use gdm_schema::Constraint;
use gdm_storage::{codec, KvStore, MemKv};
use gdm_wal::{DurableKv, RecoveryReport, WalFs, WalOptions};
use std::path::{Path, PathBuf};

/// One journaled mutation, in facade terms.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    /// `create_node`.
    CreateNode {
        /// Node label, when the model has them.
        label: Option<String>,
        /// Initial properties.
        props: PropertyMap,
    },
    /// `create_edge`.
    CreateEdge {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
        /// Edge label.
        label: Option<String>,
        /// Initial properties.
        props: PropertyMap,
    },
    /// `create_hyperedge`.
    CreateHyperedge {
        /// Hyperedge label.
        label: String,
        /// Connected nodes.
        targets: Vec<NodeId>,
        /// Initial properties.
        props: PropertyMap,
    },
    /// `create_edge_on_edge`.
    CreateEdgeOnEdge {
        /// Source edge.
        from: EdgeId,
        /// Target node.
        to: NodeId,
        /// Edge label.
        label: String,
    },
    /// `set_node_attribute`.
    SetNodeAttr {
        /// The node.
        node: NodeId,
        /// Attribute name.
        key: String,
        /// New value.
        value: Value,
    },
    /// `set_edge_attribute`.
    SetEdgeAttr {
        /// The edge.
        edge: EdgeId,
        /// Attribute name.
        key: String,
        /// New value.
        value: Value,
    },
    /// `delete_node`.
    DeleteNode {
        /// The node.
        node: NodeId,
    },
    /// `delete_edge`.
    DeleteEdge {
        /// The edge.
        edge: EdgeId,
    },
    /// `execute_ddl`.
    Ddl {
        /// Statement text.
        statement: String,
    },
    /// `execute_dml`.
    Dml {
        /// Statement text.
        statement: String,
    },
    /// `create_index`.
    CreateIndex {
        /// Indexed property name.
        property: String,
    },
}

const OP_CREATE_NODE: u8 = 1;
const OP_CREATE_EDGE: u8 = 2;
const OP_CREATE_HYPEREDGE: u8 = 3;
const OP_CREATE_EDGE_ON_EDGE: u8 = 4;
const OP_SET_NODE_ATTR: u8 = 5;
const OP_SET_EDGE_ATTR: u8 = 6;
const OP_DELETE_NODE: u8 = 7;
const OP_DELETE_EDGE: u8 = 8;
const OP_DDL: u8 = 9;
const OP_DML: u8 = 10;
const OP_CREATE_INDEX: u8 = 11;

fn put_str(out: &mut Vec<u8>, s: &str) {
    codec::put_bytes(out, s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let bytes = codec::get_bytes(buf, pos)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| GdmError::Storage("non-UTF-8 string in journal".into()))
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

fn get_opt_str(buf: &[u8], pos: &mut usize) -> Result<Option<String>> {
    let flag = *buf
        .get(*pos)
        .ok_or_else(|| GdmError::Storage("journal op truncated".into()))?;
    *pos += 1;
    Ok(match flag {
        0 => None,
        _ => Some(get_str(buf, pos)?),
    })
}

fn put_props(out: &mut Vec<u8>, props: &PropertyMap) {
    codec::put_varint(out, props.len() as u64);
    for (k, v) in props.iter() {
        put_str(out, k);
        codec::encode_value(out, v);
    }
}

fn get_props(buf: &[u8], pos: &mut usize) -> Result<PropertyMap> {
    let count = codec::get_varint(buf, pos)?;
    let mut props = PropertyMap::new();
    for _ in 0..count {
        let k = get_str(buf, pos)?;
        let v = codec::decode_value(buf, pos)?;
        props.set(k, v);
    }
    Ok(props)
}

impl LogicalOp {
    /// Encodes the operation for the journal.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LogicalOp::CreateNode { label, props } => {
                out.push(OP_CREATE_NODE);
                put_opt_str(&mut out, label);
                put_props(&mut out, props);
            }
            LogicalOp::CreateEdge {
                from,
                to,
                label,
                props,
            } => {
                out.push(OP_CREATE_EDGE);
                codec::put_varint(&mut out, from.raw());
                codec::put_varint(&mut out, to.raw());
                put_opt_str(&mut out, label);
                put_props(&mut out, props);
            }
            LogicalOp::CreateHyperedge {
                label,
                targets,
                props,
            } => {
                out.push(OP_CREATE_HYPEREDGE);
                put_str(&mut out, label);
                codec::put_varint(&mut out, targets.len() as u64);
                for t in targets {
                    codec::put_varint(&mut out, t.raw());
                }
                put_props(&mut out, props);
            }
            LogicalOp::CreateEdgeOnEdge { from, to, label } => {
                out.push(OP_CREATE_EDGE_ON_EDGE);
                codec::put_varint(&mut out, from.raw());
                codec::put_varint(&mut out, to.raw());
                put_str(&mut out, label);
            }
            LogicalOp::SetNodeAttr { node, key, value } => {
                out.push(OP_SET_NODE_ATTR);
                codec::put_varint(&mut out, node.raw());
                put_str(&mut out, key);
                codec::encode_value(&mut out, value);
            }
            LogicalOp::SetEdgeAttr { edge, key, value } => {
                out.push(OP_SET_EDGE_ATTR);
                codec::put_varint(&mut out, edge.raw());
                put_str(&mut out, key);
                codec::encode_value(&mut out, value);
            }
            LogicalOp::DeleteNode { node } => {
                out.push(OP_DELETE_NODE);
                codec::put_varint(&mut out, node.raw());
            }
            LogicalOp::DeleteEdge { edge } => {
                out.push(OP_DELETE_EDGE);
                codec::put_varint(&mut out, edge.raw());
            }
            LogicalOp::Ddl { statement } => {
                out.push(OP_DDL);
                put_str(&mut out, statement);
            }
            LogicalOp::Dml { statement } => {
                out.push(OP_DML);
                put_str(&mut out, statement);
            }
            LogicalOp::CreateIndex { property } => {
                out.push(OP_CREATE_INDEX);
                put_str(&mut out, property);
            }
        }
        out
    }

    /// Decodes an operation written by [`LogicalOp::encode`].
    pub fn decode(buf: &[u8]) -> Result<LogicalOp> {
        let mut pos = 0usize;
        let tag = *buf
            .first()
            .ok_or_else(|| GdmError::Storage("empty journal op".into()))?;
        pos += 1;
        let op = match tag {
            OP_CREATE_NODE => LogicalOp::CreateNode {
                label: get_opt_str(buf, &mut pos)?,
                props: get_props(buf, &mut pos)?,
            },
            OP_CREATE_EDGE => LogicalOp::CreateEdge {
                from: NodeId(codec::get_varint(buf, &mut pos)?),
                to: NodeId(codec::get_varint(buf, &mut pos)?),
                label: get_opt_str(buf, &mut pos)?,
                props: get_props(buf, &mut pos)?,
            },
            OP_CREATE_HYPEREDGE => {
                let label = get_str(buf, &mut pos)?;
                let count = codec::get_varint(buf, &mut pos)?;
                let mut targets = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    targets.push(NodeId(codec::get_varint(buf, &mut pos)?));
                }
                LogicalOp::CreateHyperedge {
                    label,
                    targets,
                    props: get_props(buf, &mut pos)?,
                }
            }
            OP_CREATE_EDGE_ON_EDGE => LogicalOp::CreateEdgeOnEdge {
                from: EdgeId(codec::get_varint(buf, &mut pos)?),
                to: NodeId(codec::get_varint(buf, &mut pos)?),
                label: get_str(buf, &mut pos)?,
            },
            OP_SET_NODE_ATTR => LogicalOp::SetNodeAttr {
                node: NodeId(codec::get_varint(buf, &mut pos)?),
                key: get_str(buf, &mut pos)?,
                value: codec::decode_value(buf, &mut pos)?,
            },
            OP_SET_EDGE_ATTR => LogicalOp::SetEdgeAttr {
                edge: EdgeId(codec::get_varint(buf, &mut pos)?),
                key: get_str(buf, &mut pos)?,
                value: codec::decode_value(buf, &mut pos)?,
            },
            OP_DELETE_NODE => LogicalOp::DeleteNode {
                node: NodeId(codec::get_varint(buf, &mut pos)?),
            },
            OP_DELETE_EDGE => LogicalOp::DeleteEdge {
                edge: EdgeId(codec::get_varint(buf, &mut pos)?),
            },
            OP_DDL => LogicalOp::Ddl {
                statement: get_str(buf, &mut pos)?,
            },
            OP_DML => LogicalOp::Dml {
                statement: get_str(buf, &mut pos)?,
            },
            OP_CREATE_INDEX => LogicalOp::CreateIndex {
                property: get_str(buf, &mut pos)?,
            },
            other => return Err(GdmError::Storage(format!("unknown journal op tag {other}"))),
        };
        if pos != buf.len() {
            return Err(GdmError::Storage("trailing bytes after journal op".into()));
        }
        Ok(op)
    }

    /// Applies the operation to an engine (the replay path). The return
    /// values are discarded — ids are reproduced by the engine's own
    /// deterministic allocation.
    pub fn apply(&self, engine: &mut dyn GraphEngine) -> Result<()> {
        match self {
            LogicalOp::CreateNode { label, props } => {
                engine.create_node(label.as_deref(), props.clone())?;
            }
            LogicalOp::CreateEdge {
                from,
                to,
                label,
                props,
            } => {
                engine.create_edge(*from, *to, label.as_deref(), props.clone())?;
            }
            LogicalOp::CreateHyperedge {
                label,
                targets,
                props,
            } => {
                engine.create_hyperedge(label, targets, props.clone())?;
            }
            LogicalOp::CreateEdgeOnEdge { from, to, label } => {
                engine.create_edge_on_edge(*from, *to, label)?;
            }
            LogicalOp::SetNodeAttr { node, key, value } => {
                engine.set_node_attribute(*node, key, value.clone())?;
            }
            LogicalOp::SetEdgeAttr { edge, key, value } => {
                engine.set_edge_attribute(*edge, key, value.clone())?;
            }
            LogicalOp::DeleteNode { node } => engine.delete_node(*node)?,
            LogicalOp::DeleteEdge { edge } => engine.delete_edge(*edge)?,
            LogicalOp::Ddl { statement } => engine.execute_ddl(statement)?,
            LogicalOp::Dml { statement } => engine.execute_dml(statement)?,
            LogicalOp::CreateIndex { property } => engine.create_index(property)?,
        }
        Ok(())
    }
}

/// When the durable wrapper writes snapshot checkpoints on its own.
/// Without automatic checkpoints the journal grows with history and
/// reopen cost grows with it; the policy keeps replay bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Checkpoint only when [`DurableEngine::checkpoint`] is called.
    Manual,
    /// Checkpoint after every `n` journaled operations, and on clean
    /// shutdown ([`DurableEngine::close`]). Never fires inside an open
    /// transaction — the trigger is deferred to the next op after
    /// commit.
    EveryOps(u64),
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::EveryOps(1024)
    }
}

/// A [`GraphEngine`] whose committed mutations survive crashes.
pub struct DurableEngine<F: WalFs> {
    inner: Box<dyn GraphEngine>,
    kind: EngineKind,
    journal: DurableKv<MemKv, F>,
    next_op: u64,
    policy: CheckpointPolicy,
    ops_since_ckpt: u64,
    closed: bool,
}

impl<F: WalFs> DurableEngine<F> {
    /// Opens `kind` in durable mode. `scratch` is the engine's private
    /// state directory: it is **wiped on every open**, because the
    /// journal in `fs` is the single durable source of truth and the
    /// engine is rebuilt from it by replay.
    pub fn open(
        kind: EngineKind,
        scratch: &Path,
        fs: F,
        opts: WalOptions,
    ) -> Result<(Self, RecoveryReport)> {
        if scratch.exists() {
            std::fs::remove_dir_all(scratch)?;
        }
        std::fs::create_dir_all(scratch)?;
        let (mut journal, report) = DurableKv::open(fs, opts, MemKv::new())?;
        let mut inner = make_engine(kind, scratch)?;
        let mut next_op = 0u64;
        for (key, bytes) in journal.scan_range(b"", None)? {
            let op = LogicalOp::decode(&bytes)?;
            op.apply(inner.as_mut())?;
            let mut pos = 0usize;
            next_op = codec::get_u64(&key, &mut pos)? + 1;
        }
        Ok((
            DurableEngine {
                inner,
                kind,
                journal,
                next_op,
                policy: CheckpointPolicy::default(),
                ops_since_ckpt: 0,
                closed: false,
            },
            report,
        ))
    }

    /// The wrapped engine kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Replaces the automatic checkpoint policy (builder style).
    #[must_use]
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Snapshot-checkpoints the journal and prunes old segments.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.journal.checkpoint()?;
        self.ops_since_ckpt = 0;
        Ok(())
    }

    /// Clean shutdown: flushes the journal and, under an automatic
    /// policy, writes a final checkpoint so the next open seeds from
    /// the snapshot instead of replaying history.
    ///
    /// Idempotent: a second call (with no intervening mutation) is a
    /// no-op, so shutdown paths can call it defensively. If it fails —
    /// the disk may be refusing writes — the engine stays un-closed and
    /// the call can be retried; dropping instead falls back to the
    /// best-effort flush in `Drop`, and crash recovery remains the true
    /// safety net either way.
    pub fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        self.journal.flush()?;
        if matches!(self.policy, CheckpointPolicy::EveryOps(_))
            && self.ops_since_ckpt > 0
            && !self.journal.in_transaction()
        {
            self.checkpoint()?;
        }
        self.closed = true;
        Ok(())
    }

    /// Checkpoints if the policy's op budget is spent and no
    /// transaction is open (a mid-transaction snapshot would capture
    /// uncommitted state — the journal refuses it).
    fn maybe_checkpoint(&mut self) -> Result<()> {
        if let CheckpointPolicy::EveryOps(n) = self.policy {
            if self.ops_since_ckpt >= n.max(1) && !self.journal.in_transaction() {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Appends a committed-or-in-transaction logical op to the journal.
    fn journal_op(&mut self, op: &LogicalOp) -> Result<()> {
        let mut key = Vec::with_capacity(8);
        codec::put_u64(&mut key, self.next_op);
        self.next_op += 1;
        self.closed = false; // new work after a close() re-arms Drop's flush
        self.journal.put(&key, &op.encode())?;
        self.ops_since_ckpt += 1;
        self.maybe_checkpoint()
    }

    /// The structured refusal for typed schema DDL: the journal can
    /// only replay operations with a stable byte encoding, and the
    /// `gdm-schema` definition types do not have one yet (tracked in
    /// ROADMAP.md as "schema-on-durable"). [`GdmError::NotJournalable`]
    /// keeps this distinct from [`GdmError::Unsupported`] — the
    /// wrapped engine *does* support the operation; durability is the
    /// limitation.
    fn schema_ddl_not_journalable(&self, op: &str) -> GdmError {
        GdmError::not_journalable(
            self.inner.name(),
            op,
            "typed gdm-schema definitions have no stable wire encoding, so the \
             write-ahead journal could not replay them after a crash; run schema \
             DDL before wrapping the engine in durable mode, or use the textual \
             execute_ddl dialect, which journals the statement text",
        )
    }
}

impl<F: WalFs> Drop for DurableEngine<F> {
    /// Best-effort flush when the engine is dropped without a clean
    /// [`DurableEngine::close`]: buffered journal bytes are pushed to
    /// the backend so a plain process exit loses nothing that was
    /// autocommitted. Errors are swallowed (drop may run during
    /// unwind), no checkpoint is attempted, and records of a
    /// still-open transaction are harmless to write — recovery
    /// discards anything without a commit mark. Genuine kill/power-
    /// loss scenarios never run this; for those, crash recovery is the
    /// safety net.
    fn drop(&mut self) {
        if !self.closed {
            let _ = self.journal.flush();
        }
    }
}

impl<F: WalFs> GraphEngine for DurableEngine<F> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn descriptor(&self) -> EngineDescriptor {
        self.inner.descriptor()
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        let id = self.inner.create_node(label, props.clone())?;
        self.journal_op(&LogicalOp::CreateNode {
            label: label.map(str::to_owned),
            props,
        })?;
        Ok(id)
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let id = self.inner.create_edge(from, to, label, props.clone())?;
        self.journal_op(&LogicalOp::CreateEdge {
            from,
            to,
            label: label.map(str::to_owned),
            props,
        })?;
        Ok(id)
    }

    fn create_hyperedge(
        &mut self,
        label: &str,
        targets: &[NodeId],
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let id = self.inner.create_hyperedge(label, targets, props.clone())?;
        self.journal_op(&LogicalOp::CreateHyperedge {
            label: label.to_owned(),
            targets: targets.to_vec(),
            props,
        })?;
        Ok(id)
    }

    fn create_edge_on_edge(&mut self, from: EdgeId, to: NodeId, label: &str) -> Result<EdgeId> {
        let id = self.inner.create_edge_on_edge(from, to, label)?;
        self.journal_op(&LogicalOp::CreateEdgeOnEdge {
            from,
            to,
            label: label.to_owned(),
        })?;
        Ok(id)
    }

    fn nest_subgraph(&mut self, node: NodeId) -> Result<()> {
        // No surveyed engine supports this, so there is nothing to
        // journal; delegate so the refusal carries the engine's name.
        self.inner.nest_subgraph(node)
    }

    fn set_node_attribute(&mut self, n: NodeId, key: &str, value: Value) -> Result<()> {
        self.inner.set_node_attribute(n, key, value.clone())?;
        self.journal_op(&LogicalOp::SetNodeAttr {
            node: n,
            key: key.to_owned(),
            value,
        })
    }

    fn set_edge_attribute(&mut self, e: EdgeId, key: &str, value: Value) -> Result<()> {
        self.inner.set_edge_attribute(e, key, value.clone())?;
        self.journal_op(&LogicalOp::SetEdgeAttr {
            edge: e,
            key: key.to_owned(),
            value,
        })
    }

    fn node_attribute(&self, n: NodeId, key: &str) -> Result<Option<Value>> {
        self.inner.node_attribute(n, key)
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        self.inner.delete_node(n)?;
        self.journal_op(&LogicalOp::DeleteNode { node: n })
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        self.inner.delete_edge(e)?;
        self.journal_op(&LogicalOp::DeleteEdge { edge: e })
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn edge_count(&self) -> usize {
        self.inner.edge_count()
    }

    fn define_node_type(&mut self, _def: gdm_schema::NodeTypeDef) -> Result<()> {
        Err(self.schema_ddl_not_journalable("define_node_type"))
    }

    fn define_edge_type(&mut self, _def: gdm_schema::EdgeTypeDef) -> Result<()> {
        Err(self.schema_ddl_not_journalable("define_edge_type"))
    }

    fn install_constraint(&mut self, _constraint: Constraint) -> Result<()> {
        Err(self.schema_ddl_not_journalable("install_constraint"))
    }

    fn execute_ddl(&mut self, statement: &str) -> Result<()> {
        self.inner.execute_ddl(statement)?;
        self.journal_op(&LogicalOp::Ddl {
            statement: statement.to_owned(),
        })
    }

    fn execute_dml(&mut self, statement: &str) -> Result<()> {
        self.inner.execute_dml(statement)?;
        self.journal_op(&LogicalOp::Dml {
            statement: statement.to_owned(),
        })
    }

    fn execute_query(&mut self, query: &str) -> Result<ResultSet> {
        self.inner.execute_query(query)
    }

    fn reason(&mut self, rules: &str, goal: &str) -> Result<Vec<Vec<String>>> {
        // Rule loading is scoped to the call in every emulation, so
        // there is no persistent state to journal.
        self.inner.reason(rules, goal)
    }

    fn analyze(&self, func: AnalysisFunc) -> Result<Value> {
        self.inner.analyze(func)
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        self.inner.adjacent(a, b)
    }

    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>> {
        self.inner.k_neighborhood(n, k)
    }

    fn fixed_length_paths(&self, a: NodeId, b: NodeId, len: usize) -> Result<usize> {
        self.inner.fixed_length_paths(a, b, len)
    }

    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool> {
        self.inner.regular_path(a, b, expr)
    }

    fn shortest_path(&self, a: NodeId, b: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.inner.shortest_path(a, b)
    }

    fn pattern_match(&self, pattern: &Pattern) -> Result<usize> {
        self.inner.pattern_match(pattern)
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        self.inner.snapshot()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        // The WAL wrapper mutates only through the inner engine's typed
        // API, so the inner delta tracker has seen every change and its
        // incremental path applies unchanged.
        self.inner.refreeze(prev)
    }

    fn pending_changes(&self) -> u64 {
        self.inner.pending_changes()
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // Durability does not change the emulated engine's governor
        // profile.
        self.inner.default_limits()
    }

    fn run_governed(
        &self,
        op: crate::facade::GovernedOp<'_>,
        guard: &gdm_govern::ExecutionGuard,
    ) -> Result<crate::facade::GovernedAnswer> {
        self.inner.run_governed(op, guard)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        self.inner.summarize(func)
    }

    fn begin_transaction(&mut self) -> Result<()> {
        // Graph stores refuse here, and the refusal propagates before
        // the journal opens a transaction.
        self.inner.begin_transaction()?;
        self.journal.begin()
    }

    fn commit_transaction(&mut self) -> Result<()> {
        self.inner.commit_transaction()?;
        // The true durability point: the journal's commit record syncs.
        self.journal.commit()?;
        // Ops deferred by the open transaction may trip the policy now.
        self.maybe_checkpoint()
    }

    fn rollback_transaction(&mut self) -> Result<()> {
        self.inner.rollback_transaction()?;
        self.journal.rollback()
    }

    fn persist(&mut self) -> Result<()> {
        // The journal IS the persistence layer in durable mode; the
        // engine's own snapshot files are ignored on reopen.
        self.journal.flush()
    }

    fn create_index(&mut self, property: &str) -> Result<()> {
        self.inner.create_index(property)?;
        self.journal_op(&LogicalOp::CreateIndex {
            property: property.to_owned(),
        })
    }

    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        self.inner.lookup_by_property(key, value)
    }
}

/// Opens `kind` in durable mode with an on-disk log. Layout under
/// `dir`: `wal/` holds segments and checkpoints, `state/` is the
/// engine's scratch area (rebuilt from the log on every open).
pub fn make_engine_durable(kind: EngineKind, dir: &Path) -> Result<Box<dyn GraphEngine>> {
    let wal_dir: PathBuf = dir.join("wal");
    let fs = gdm_wal::DiskFs::open(&wal_dir)?;
    let (engine, _report) =
        DurableEngine::open(kind, &dir.join("state"), fs, WalOptions::default())?;
    Ok(Box::new(engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_wal::FaultFs;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gdm-durable-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> WalOptions {
        WalOptions::default()
    }

    #[test]
    fn logical_ops_roundtrip() {
        let props = PropertyMap::new().with("name", Value::Str("x".into()));
        let ops = vec![
            LogicalOp::CreateNode {
                label: Some("person".into()),
                props: props.clone(),
            },
            LogicalOp::CreateNode {
                label: None,
                props: PropertyMap::new(),
            },
            LogicalOp::CreateEdge {
                from: NodeId(0),
                to: NodeId(1),
                label: Some("knows".into()),
                props,
            },
            LogicalOp::CreateHyperedge {
                label: "meeting".into(),
                targets: vec![NodeId(0), NodeId(1), NodeId(2)],
                props: PropertyMap::new(),
            },
            LogicalOp::CreateEdgeOnEdge {
                from: EdgeId(0),
                to: NodeId(2),
                label: "annotates".into(),
            },
            LogicalOp::SetNodeAttr {
                node: NodeId(1),
                key: "age".into(),
                value: Value::Int(30),
            },
            LogicalOp::SetEdgeAttr {
                edge: EdgeId(0),
                key: "since".into(),
                value: Value::Float(2011.5),
            },
            LogicalOp::DeleteNode { node: NodeId(3) },
            LogicalOp::DeleteEdge { edge: EdgeId(1) },
            LogicalOp::Ddl {
                statement: "CREATE VERTEX TYPE person".into(),
            },
            LogicalOp::Dml {
                statement: "INSERT ...".into(),
            },
            LogicalOp::CreateIndex {
                property: "name".into(),
            },
        ];
        for op in ops {
            let bytes = op.encode();
            assert_eq!(LogicalOp::decode(&bytes).unwrap(), op, "{op:?}");
        }
    }

    #[test]
    fn durable_neo4j_survives_kill_and_reopen() {
        let fs = FaultFs::new();
        let dir = scratch("neo4j");
        let (mut eng, _) =
            DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
        let a = eng
            .create_node(
                Some("person"),
                PropertyMap::new().with("name", Value::Str("ada".into())),
            )
            .unwrap();
        let b = eng.create_node(Some("person"), PropertyMap::new()).unwrap();
        let e = eng
            .create_edge(a, b, Some("knows"), PropertyMap::new())
            .unwrap();
        eng.set_edge_attribute(e, "since", Value::Int(2010))
            .unwrap();
        drop(eng); // kill without shutdown
        fs.crash();
        let (eng2, report) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
        assert_eq!(report.records_applied, 4);
        assert_eq!(eng2.node_count(), 2);
        assert_eq!(eng2.edge_count(), 1);
        assert_eq!(
            eng2.node_attribute(a, "name").unwrap(),
            Some(Value::Str("ada".into()))
        );
        assert!(eng2.adjacent(a, b).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_engine_transaction_discarded_on_crash() {
        let fs = FaultFs::new();
        let dir = scratch("txn");
        let (mut eng, _) =
            DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
        let a = eng.create_node(None, PropertyMap::new()).unwrap();
        eng.begin_transaction().unwrap();
        let b = eng.create_node(None, PropertyMap::new()).unwrap();
        eng.create_edge(a, b, Some("tmp"), PropertyMap::new())
            .unwrap();
        // Crash before commit: the transaction must vanish.
        drop(eng);
        fs.crash();
        let (eng2, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
        assert_eq!(eng2.node_count(), 1);
        assert_eq!(eng2.edge_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_transaction_is_atomic_across_recovery() {
        let fs = FaultFs::new();
        let dir = scratch("atomic");
        let (mut eng, _) =
            DurableEngine::open(EngineKind::Sones, &dir, fs.clone(), opts()).unwrap();
        eng.begin_transaction().unwrap();
        let a = eng.create_node(Some("t"), PropertyMap::new()).unwrap();
        let b = eng.create_node(Some("t"), PropertyMap::new()).unwrap();
        eng.create_edge(a, b, Some("pair"), PropertyMap::new())
            .unwrap();
        eng.commit_transaction().unwrap();
        drop(eng);
        fs.crash();
        let (eng2, report) = DurableEngine::open(EngineKind::Sones, &dir, fs, opts()).unwrap();
        assert_eq!(report.committed_txns, 1);
        assert_eq!(eng2.node_count(), 2);
        assert_eq!(eng2.edge_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_stores_still_refuse_transactions_in_durable_mode() {
        let fs = FaultFs::new();
        let dir = scratch("store");
        let (mut eng, _) = DurableEngine::open(EngineKind::VertexDb, &dir, fs, opts()).unwrap();
        let err = eng.begin_transaction().unwrap_err();
        assert!(err.is_unsupported());
        // ...but autocommit mutations still journal and work.
        eng.create_node(None, PropertyMap::new()).unwrap();
        assert_eq!(eng.node_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_ddl_refusal_is_structured_and_names_the_journal() {
        let fs = FaultFs::new();
        let dir = scratch("ddl");
        let (mut eng, _) = DurableEngine::open(EngineKind::Sones, &dir, fs, opts()).unwrap();
        let err = eng
            .install_constraint(Constraint::ReferentialIntegrity)
            .unwrap_err();
        // Not a bare Unsupported: the engine supports the operation;
        // durability is the limitation, and the message must say so.
        assert!(err.is_not_journalable());
        assert!(!err.is_unsupported());
        let msg = err.to_string();
        assert!(
            msg.contains("journal") && msg.contains("durable") && msg.contains("wire encoding"),
            "message must name the journaling limitation: {msg}"
        );
        assert!(
            msg.contains("install_constraint"),
            "message must name the refused op: {msg}"
        );
        // All three typed DDL entry points refuse the same way.
        assert!(eng
            .define_node_type(gdm_schema::NodeTypeDef::new("person"))
            .unwrap_err()
            .is_not_journalable());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_policy_bounds_replay_to_the_tail() {
        let fs = FaultFs::new();
        let dir = scratch("policy");
        let (eng, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
        let mut eng = eng.with_checkpoint_policy(CheckpointPolicy::EveryOps(8));
        // 19 autocommit ops: checkpoints fire at ops 8 and 16, leaving
        // a 3-op tail in the journal.
        for _ in 0..19 {
            eng.create_node(Some("n"), PropertyMap::new()).unwrap();
        }
        drop(eng); // kill without shutdown
        fs.crash();
        let (eng2, report) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
        assert!(report.used_checkpoint);
        assert_eq!(report.records_applied, 3);
        assert_eq!(eng2.node_count(), 19);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_never_fires_inside_a_transaction() {
        let fs = FaultFs::new();
        let dir = scratch("policy-txn");
        let (eng, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
        let mut eng = eng.with_checkpoint_policy(CheckpointPolicy::EveryOps(2));
        eng.begin_transaction().unwrap();
        for _ in 0..6 {
            eng.create_node(None, PropertyMap::new()).unwrap();
        }
        // The budget is long spent, but the snapshot is deferred until
        // commit so it can never capture uncommitted state.
        eng.commit_transaction().unwrap();
        drop(eng);
        fs.crash();
        let (eng2, report) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
        assert!(report.used_checkpoint);
        assert_eq!(report.records_applied, 0);
        assert_eq!(eng2.node_count(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_shutdown_checkpoints_so_reopen_replays_nothing() {
        let fs = FaultFs::new();
        let dir = scratch("shutdown");
        let (eng, _) = DurableEngine::open(EngineKind::Dex, &dir, fs.clone(), opts()).unwrap();
        let mut eng = eng.with_checkpoint_policy(CheckpointPolicy::EveryOps(1000));
        for _ in 0..5 {
            eng.create_node(Some("t"), PropertyMap::new()).unwrap();
        }
        eng.close().unwrap();
        fs.crash();
        let (eng2, report) = DurableEngine::open(EngineKind::Dex, &dir, fs, opts()).unwrap();
        assert!(report.used_checkpoint);
        assert_eq!(report.records_applied, 0);
        assert_eq!(eng2.node_count(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn close_is_idempotent() {
        let fs = FaultFs::new();
        let dir = scratch("close-idem");
        let (mut eng, _) =
            DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
        eng.create_node(None, PropertyMap::new()).unwrap();
        eng.close().unwrap();
        let syncs = fs.sync_count();
        eng.close().unwrap(); // second close: a no-op, not a second flush
        assert_eq!(fs.sync_count(), syncs);
        drop(eng); // already closed: Drop does not flush again either
        assert_eq!(fs.sync_count(), syncs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_without_close_flushes_the_journal() {
        let fs = FaultFs::new();
        let dir = scratch("drop-flush");
        let manual = WalOptions {
            sync: gdm_wal::SyncPolicy::Manual,
            ..WalOptions::default()
        };
        let (mut eng, _) =
            DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), manual).unwrap();
        eng.create_node(None, PropertyMap::new()).unwrap();
        // Under Manual sync the autocommit is buffered, not durable;
        // dropping without close() still pushes it out best-effort.
        drop(eng);
        fs.crash();
        let (eng2, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, manual).unwrap();
        assert_eq!(eng2.node_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manual_policy_leaves_the_journal_alone() {
        let fs = FaultFs::new();
        let dir = scratch("manual");
        let (eng, _) = DurableEngine::open(EngineKind::Neo4j, &dir, fs.clone(), opts()).unwrap();
        let mut eng = eng.with_checkpoint_policy(CheckpointPolicy::Manual);
        for _ in 0..12 {
            eng.create_node(None, PropertyMap::new()).unwrap();
        }
        drop(eng);
        fs.crash();
        let (_, report) = DurableEngine::open(EngineKind::Neo4j, &dir, fs, opts()).unwrap();
        assert!(!report.used_checkpoint);
        assert_eq!(report.records_applied, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn make_engine_durable_uses_disk_layout() {
        let dir = scratch("disk");
        {
            let mut eng = make_engine_durable(EngineKind::Dex, &dir).unwrap();
            eng.create_node(Some("thing"), PropertyMap::new()).unwrap();
            eng.create_node(Some("thing"), PropertyMap::new()).unwrap();
        }
        let eng = make_engine_durable(EngineKind::Dex, &dir).unwrap();
        assert_eq!(eng.node_count(), 2);
        assert!(dir.join("wal").join("wal-0000000000.seg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
