//! G-Store emulation.
//!
//! The paper: "G-Store is a basic storage manager for large
//! vertex-labeled graphs", pure external memory (Table I: external
//! only), with a DDL, an SQL-flavoured query language, and an API
//! (Table II). G-Store's research contribution was *placement*:
//! co-locating neighborhoods on disk pages. The emulation stores node
//! records (label + outgoing adjacency) in the slotted-page
//! [`HeapFile`] and exposes [`GStoreEngine::recluster`], which rewrites
//! the heap in BFS order with placement hints — the knob the placement
//! ablation bench measures via buffer-pool fault counts.

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use crate::vertexdb::summarize_simple;
use gdm_algo::adjacency::{k_neighborhood, nodes_adjacent};
use gdm_algo::paths::{fixed_length_paths, shortest_path};
use gdm_algo::regular::{regular_path_exists, LabelRegex};
use gdm_core::{
    DeltaTracker, Direction, EdgeId, EdgeRef, FxHashMap, GdmError, GraphView, Interner, NodeId,
    PropertyMap, Result, Support, Symbol, Value,
};
use gdm_query::eval::ResultSet;
use gdm_query::gsql::{self, GsqlStatement};
use gdm_storage::codec::{get_bytes, get_u64, get_varint, put_bytes, put_u64, put_varint};
use gdm_storage::pager::PoolStats;
use gdm_storage::{BufferPool, HeapFile, Rid};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

const NAME: &str = "G-Store";
const PATH_BUDGET: usize = 1_000_000;
/// Buffer-pool frames — deliberately small so the external-memory
/// behaviour (page faults) is observable.
const POOL_FRAMES: usize = 64;

/// The G-Store emulation.
pub struct GStoreEngine {
    heap: RefCell<HeapFile>,
    interner: Interner,
    /// node id → (record location, label symbol if labeled).
    nodes: FxHashMap<u64, (Rid, Option<Symbol>)>,
    /// edge id → (from, to).
    edges: FxHashMap<u64, (u64, u64)>,
    /// reverse adjacency, rebuilt on open.
    in_edges: FxHashMap<u64, Vec<(u64, u64)>>,
    next_node: u64,
    next_edge: u64,
    path: PathBuf,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze (`RefCell`: snapshots reset it through
    /// `&self`; engines are not `Send`, so access is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl GStoreEngine {
    /// Opens (or creates) the store under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        let path = dir.join("gstore.pages");
        Self::open_file(&path)
    }

    fn open_file(path: &Path) -> Result<Self> {
        let heap = HeapFile::new(BufferPool::file(path, POOL_FRAMES)?)?;
        let mut engine = Self {
            heap: RefCell::new(heap),
            interner: Interner::new(),
            nodes: FxHashMap::default(),
            edges: FxHashMap::default(),
            in_edges: FxHashMap::default(),
            next_node: 0,
            next_edge: 0,
            path: path.to_path_buf(),
            delta: RefCell::new(DeltaTracker::new()),
        };
        engine.rebuild_maps()?;
        Ok(engine)
    }

    fn rebuild_maps(&mut self) -> Result<()> {
        let mut records: Vec<(Rid, Vec<u8>)> = Vec::new();
        self.heap
            .borrow_mut()
            .scan(&mut |rid, bytes| records.push((rid, bytes.to_vec())))?;
        for (rid, bytes) in records {
            let rec = NodeRecord::decode(&bytes)?;
            let sym = rec.label.as_deref().map(|l| self.interner.intern(l));
            self.nodes.insert(rec.id, (rid, sym));
            self.next_node = self.next_node.max(rec.id + 1);
            for &(edge, to) in &rec.out {
                self.edges.insert(edge, (rec.id, to));
                self.in_edges.entry(to).or_default().push((edge, rec.id));
                self.next_edge = self.next_edge.max(edge + 1);
            }
        }
        Ok(())
    }

    fn read_record(&self, n: u64) -> Result<NodeRecord> {
        let (rid, _) = self
            .nodes
            .get(&n)
            .ok_or_else(|| GdmError::NotFound(format!("node n{n}")))?;
        let bytes = self.heap.borrow_mut().get(*rid)?;
        NodeRecord::decode(&bytes)
    }

    fn write_record(&mut self, rec: &NodeRecord) -> Result<()> {
        let (rid, sym) = *self
            .nodes
            .get(&rec.id)
            .ok_or_else(|| GdmError::NotFound(format!("node n{}", rec.id)))?;
        let new_rid = self.heap.borrow_mut().update(rid, &rec.encode())?;
        self.nodes.insert(rec.id, (new_rid, sym));
        Ok(())
    }

    /// Buffer-pool statistics — the external-memory cost signal.
    pub fn pool_stats(&self) -> PoolStats {
        self.heap.borrow().pool_stats()
    }

    /// Zeroes buffer-pool statistics.
    pub fn reset_pool_stats(&mut self) {
        self.heap.borrow_mut().reset_pool_stats();
    }

    /// Rewrites the whole heap placing node records in BFS order with
    /// per-page clustering hints (G-Store's contribution). Returns the
    /// number of records moved.
    pub fn recluster(&mut self) -> Result<usize> {
        // BFS order over all nodes (restarting per component).
        let mut order: Vec<u64> = Vec::with_capacity(self.nodes.len());
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut all: Vec<u64> = self.nodes.keys().copied().collect();
        all.sort_unstable();
        for &root in &all {
            if !seen.insert(root) {
                continue;
            }
            let mut queue = VecDeque::from([root]);
            while let Some(n) = queue.pop_front() {
                order.push(n);
                if let Ok(rec) = self.read_record(n) {
                    for &(_, to) in &rec.out {
                        if seen.insert(to) {
                            queue.push_back(to);
                        }
                    }
                }
            }
        }
        // Rewrite into a fresh heap file, filling pages in BFS order.
        let tmp = self.path.with_extension("recluster");
        let _ = std::fs::remove_file(&tmp);
        let mut fresh = HeapFile::new(BufferPool::file(&tmp, POOL_FRAMES)?)?;
        let mut new_rids: FxHashMap<u64, Rid> = FxHashMap::default();
        let mut last_page = None;
        for &n in &order {
            let rec = self.read_record(n)?;
            let rid = fresh.insert_hint(&rec.encode(), last_page)?;
            last_page = Some(rid.page);
            new_rids.insert(n, rid);
        }
        fresh.flush()?;
        drop(fresh);
        // Swap files and reopen.
        std::fs::rename(&tmp, &self.path)?;
        let heap = HeapFile::new(BufferPool::file(&self.path, POOL_FRAMES)?)?;
        self.heap = RefCell::new(heap);
        for (n, rid) in new_rids {
            if let Some(entry) = self.nodes.get_mut(&n) {
                entry.0 = rid;
            }
        }
        Ok(order.len())
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }

    fn run_statement(&mut self, stmt: GsqlStatement) -> Result<ResultSet> {
        let single = |name: &str, v: Value| ResultSet {
            columns: vec![name.to_owned()],
            rows: vec![vec![v]],
        };
        Ok(match stmt {
            GsqlStatement::CreateNode { label } => {
                let n = self.create_node(Some(&label), PropertyMap::new())?;
                single("node", Value::Int(n.raw() as i64))
            }
            GsqlStatement::CreateEdge { from, to } => {
                let e = self.create_edge(from, to, None, PropertyMap::new())?;
                single("edge", Value::Int(e.raw() as i64))
            }
            GsqlStatement::SelectNodes { label } => {
                let mut ids: Vec<u64> = match label {
                    None => self.nodes.keys().copied().collect(),
                    Some(l) => {
                        let sym = self.interner.get(&l);
                        self.nodes
                            .iter()
                            .filter(|(_, (_, s))| *s == sym && sym.is_some())
                            .map(|(&id, _)| id)
                            .collect()
                    }
                };
                ids.sort_unstable();
                ResultSet {
                    columns: vec!["node".into()],
                    rows: ids
                        .into_iter()
                        .map(|i| vec![Value::Int(i as i64)])
                        .collect(),
                }
            }
            GsqlStatement::CountNodes => single("count", Value::Int(self.nodes.len() as i64)),
            GsqlStatement::CountEdges => single("count", Value::Int(self.edges.len() as i64)),
            GsqlStatement::ShortestPath { from, to } => {
                let path = shortest_path(self, from, to);
                let row = match path {
                    Some(p) => {
                        Value::List(p.nodes.iter().map(|n| Value::Int(n.raw() as i64)).collect())
                    }
                    None => Value::Null,
                };
                single("path", row)
            }
            GsqlStatement::FixedPaths { from, to, length } => {
                let count = fixed_length_paths(self, from, to, length, PATH_BUDGET)?.len();
                single("paths", Value::Int(count as i64))
            }
            GsqlStatement::Reachable { from } => {
                let mut ids: Vec<u64> =
                    gdm_algo::paths::reachable_set(self, from, Direction::Outgoing)
                        .into_iter()
                        .collect();
                ids.sort_unstable();
                ResultSet {
                    columns: vec!["node".into()],
                    rows: ids
                        .into_iter()
                        .map(|i| vec![Value::Int(i as i64)])
                        .collect(),
                }
            }
        })
    }
}

/// On-disk node record.
struct NodeRecord {
    id: u64,
    label: Option<String>,
    out: Vec<(u64, u64)>, // (edge id, target node)
}

impl NodeRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.out.len() * 16);
        put_u64(&mut out, self.id);
        match &self.label {
            Some(l) => {
                out.push(1);
                put_bytes(&mut out, l.as_bytes());
            }
            None => out.push(0),
        }
        put_varint(&mut out, self.out.len() as u64);
        for &(edge, to) in &self.out {
            put_u64(&mut out, edge);
            put_u64(&mut out, to);
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        let mut pos = 0;
        let id = get_u64(buf, &mut pos)?;
        let has_label = buf
            .get(pos)
            .copied()
            .ok_or_else(|| GdmError::Storage("truncated node record".into()))?;
        pos += 1;
        let label = if has_label == 1 {
            let bytes = get_bytes(buf, &mut pos)?;
            Some(
                std::str::from_utf8(bytes)
                    .map_err(|_| GdmError::Storage("bad label".into()))?
                    .to_owned(),
            )
        } else {
            None
        };
        let n = get_varint(buf, &mut pos)? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let edge = get_u64(buf, &mut pos)?;
            let to = get_u64(buf, &mut pos)?;
            out.push((edge, to));
        }
        Ok(Self { id, label, out })
    }
}

impl GraphView for GStoreEngine {
    fn is_directed(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.contains_key(&n.raw())
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        let mut ids: Vec<u64> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            f(NodeId(id));
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Ok(rec) = self.read_record(n.raw()) else {
            return;
        };
        for (edge, to) in rec.out {
            f(EdgeRef::new(EdgeId(edge), n, NodeId(to)));
        }
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(list) = self.in_edges.get(&n.raw()) else {
            return;
        };
        for &(edge, from) in list {
            f(EdgeRef::new(EdgeId(edge), n, NodeId(from)));
        }
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.interner.resolve(sym)
    }
}

impl GraphEngine for GStoreEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::None,
            graphical_ql: Support::None,
            query_language_grade: Support::Full,
            backend_storage: Support::None,
            blurb: "a basic storage manager for large vertex-labeled graphs on disk pages",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        if !props.is_empty() {
            return self.unsupported("node attributes (vertex-labeled simple graph)");
        }
        let id = self.next_node;
        self.next_node += 1;
        let rec = NodeRecord {
            id,
            label: label.map(str::to_owned),
            out: Vec::new(),
        };
        let rid = self.heap.borrow_mut().insert(&rec.encode())?;
        let sym = label.map(|l| self.interner.intern(l));
        self.nodes.insert(id, (rid, sym));
        self.delta.get_mut().touch_node(id);
        Ok(NodeId(id))
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        if label.is_some() {
            return self.unsupported("edge labels (vertex-labeled model)");
        }
        if !props.is_empty() {
            return self.unsupported("edge attributes");
        }
        if !self.nodes.contains_key(&to.raw()) {
            return Err(GdmError::NotFound(format!("node {to}")));
        }
        let mut rec = self.read_record(from.raw())?;
        let edge = self.next_edge;
        self.next_edge += 1;
        rec.out.push((edge, to.raw()));
        self.write_record(&rec)?;
        self.edges.insert(edge, (from.raw(), to.raw()));
        self.in_edges
            .entry(to.raw())
            .or_default()
            .push((edge, from.raw()));
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(EdgeId(edge))
    }

    fn create_hyperedge(
        &mut self,
        _label: &str,
        _targets: &[NodeId],
        _props: PropertyMap,
    ) -> Result<EdgeId> {
        self.unsupported("hyperedges")
    }

    fn create_edge_on_edge(&mut self, _from: EdgeId, _to: NodeId, _label: &str) -> Result<EdgeId> {
        self.unsupported("edges between edges")
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, _n: NodeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("node attributes")
    }

    fn set_edge_attribute(&mut self, _e: EdgeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("edge attributes")
    }

    fn node_attribute(&self, _n: NodeId, _key: &str) -> Result<Option<Value>> {
        self.unsupported("node attributes")
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        let rec = self.read_record(n.raw())?;
        // Remove outgoing edges.
        for (edge, to) in &rec.out {
            self.edges.remove(edge);
            if let Some(list) = self.in_edges.get_mut(to) {
                list.retain(|(e, _)| e != edge);
            }
        }
        // Remove incoming edges from their source records.
        let incoming = self.in_edges.remove(&n.raw()).unwrap_or_default();
        for (edge, from) in incoming {
            let mut source = self.read_record(from)?;
            source.out.retain(|(e, _)| *e != edge);
            self.write_record(&source)?;
            self.edges.remove(&edge);
        }
        let (rid, _) = self.nodes.remove(&n.raw()).expect("checked by read_record");
        self.heap.borrow_mut().delete(rid)?;
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        let (from, to) = self
            .edges
            .remove(&e.raw())
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        let mut rec = self.read_record(from)?;
        rec.out.retain(|(edge, _)| *edge != e.raw());
        self.write_record(&rec)?;
        if let Some(list) = self.in_edges.get_mut(&to) {
            list.retain(|(edge, _)| *edge != e.raw());
        }
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn define_node_type(&mut self, _def: gdm_schema::NodeTypeDef) -> Result<()> {
        self.unsupported("schema definitions beyond vertex labels")
    }

    fn define_edge_type(&mut self, _def: gdm_schema::EdgeTypeDef) -> Result<()> {
        self.unsupported("edge type definitions")
    }

    fn install_constraint(&mut self, _c: gdm_schema::Constraint) -> Result<()> {
        self.unsupported("integrity constraints")
    }

    fn execute_ddl(&mut self, statement: &str) -> Result<()> {
        match gsql::parse(statement)? {
            stmt @ (GsqlStatement::CreateNode { .. } | GsqlStatement::CreateEdge { .. }) => {
                self.run_statement(stmt)?;
                Ok(())
            }
            _ => Err(GdmError::InvalidArgument(
                "not a DDL statement (use CREATE NODE / CREATE EDGE)".into(),
            )),
        }
    }

    fn execute_dml(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data manipulation language")
    }

    fn execute_query(&mut self, query: &str) -> Result<ResultSet> {
        let stmt = gsql::parse(query)?;
        if matches!(
            stmt,
            GsqlStatement::CreateNode { .. } | GsqlStatement::CreateEdge { .. }
        ) {
            return Err(GdmError::InvalidArgument(
                "CREATE statements go through the DDL interface".into(),
            ));
        }
        self.run_statement(stmt)
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, _func: AnalysisFunc) -> Result<Value> {
        self.unsupported("analysis functions")
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(nodes_adjacent(self, a, b))
    }

    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>> {
        Ok(k_neighborhood(self, n, k, Direction::Outgoing))
    }

    fn fixed_length_paths(&self, a: NodeId, b: NodeId, len: usize) -> Result<usize> {
        Ok(fixed_length_paths(self, a, b, len, PATH_BUDGET)?.len())
    }

    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool> {
        let regex = LabelRegex::compile(expr)?;
        Ok(regular_path_exists(self, a, b, &regex))
    }

    fn shortest_path(&self, a: NodeId, b: NodeId) -> Result<Option<Vec<NodeId>>> {
        Ok(shortest_path(self, a, b).map(|p| p.nodes))
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        self.unsupported("pattern matching queries")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze(self);
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze_structural(self, prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // A graph *store* without a query governor of its own: tight
        // harness defaults keep a runaway traversal from monopolizing
        // the page-partitioned backend.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(5))
            .with_node_visits(1_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        summarize_simple(self, func, NAME)
    }

    fn persist(&mut self) -> Result<()> {
        self.heap.borrow_mut().flush()
    }

    fn create_index(&mut self, _property: &str) -> Result<()> {
        self.unsupported("secondary indexes")
    }

    fn lookup_by_property(&self, _key: &str, _value: &Value) -> Result<Vec<NodeId>> {
        self.unsupported("property lookups (no attributes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_engine(tag: &str) -> (GStoreEngine, PathBuf) {
        let dir = std::env::temp_dir().join(format!("gdm-gstore-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        (GStoreEngine::open(&dir).unwrap(), dir)
    }

    #[test]
    fn vertex_labeled_graph() {
        let (mut e, _d) = temp_engine("labels");
        let a = e.create_node(Some("gene"), PropertyMap::new()).unwrap();
        let b = e.create_node(Some("protein"), PropertyMap::new()).unwrap();
        e.create_edge(a, b, None, PropertyMap::new()).unwrap();
        assert!(e.adjacent(a, b).unwrap());
        // Edge labels are out of model.
        assert!(e
            .create_edge(a, b, Some("x"), PropertyMap::new())
            .unwrap_err()
            .is_unsupported());
    }

    #[test]
    fn query_language() {
        let (mut e, _d) = temp_engine("gsql");
        e.execute_ddl("CREATE NODE 'v'").unwrap();
        e.execute_ddl("CREATE NODE 'v'").unwrap();
        e.execute_ddl("CREATE NODE 'w'").unwrap();
        e.execute_ddl("CREATE EDGE 0 1").unwrap();
        e.execute_ddl("CREATE EDGE 1 2").unwrap();
        let rs = e.execute_query("SELECT NODES WITH LABEL 'v'").unwrap();
        assert_eq!(rs.len(), 2);
        let rs = e.execute_query("SELECT SHORTEST PATH FROM 0 TO 2").unwrap();
        assert_eq!(
            rs.rows[0][0],
            Value::List(vec![Value::Int(0), Value::Int(1), Value::Int(2)])
        );
        let rs = e
            .execute_query("SELECT PATHS FROM 0 TO 2 LENGTH 2")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(1));
        let rs = e.execute_query("SELECT COUNT EDGES").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        assert!(e.execute_query("CREATE NODE 'v'").is_err());
        assert!(e.execute_dml("whatever").unwrap_err().is_unsupported());
    }

    #[test]
    fn deletion_maintains_records() {
        let (mut e, _d) = temp_engine("del");
        let a = e.create_node(Some("v"), PropertyMap::new()).unwrap();
        let b = e.create_node(Some("v"), PropertyMap::new()).unwrap();
        let c = e.create_node(Some("v"), PropertyMap::new()).unwrap();
        e.create_edge(a, b, None, PropertyMap::new()).unwrap();
        let eb = e.create_edge(b, c, None, PropertyMap::new()).unwrap();
        e.create_edge(c, a, None, PropertyMap::new()).unwrap();
        e.delete_edge(eb).unwrap();
        assert_eq!(GraphEngine::edge_count(&e), 2);
        assert!(!e.adjacent(b, c).unwrap());
        e.delete_node(a).unwrap();
        assert_eq!(GraphEngine::node_count(&e), 2);
        assert_eq!(GraphEngine::edge_count(&e), 0);
    }

    #[test]
    fn persistence_and_reopen() {
        let dir = std::env::temp_dir().join(format!("gdm-gstore-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b);
        {
            let mut e = GStoreEngine::open(&dir).unwrap();
            a = e.create_node(Some("v"), PropertyMap::new()).unwrap();
            b = e.create_node(Some("w"), PropertyMap::new()).unwrap();
            e.create_edge(a, b, None, PropertyMap::new()).unwrap();
            e.persist().unwrap();
        }
        {
            let e = GStoreEngine::open(&dir).unwrap();
            assert_eq!(GraphEngine::node_count(&e), 2);
            assert!(e.adjacent(a, b).unwrap());
            assert_eq!(e.k_neighborhood(a, 1).unwrap(), vec![b]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recluster_preserves_graph() {
        let (mut e, _d) = temp_engine("recluster");
        let nodes: Vec<NodeId> = (0..50)
            .map(|_| e.create_node(Some("v"), PropertyMap::new()).unwrap())
            .collect();
        for i in 0..49 {
            e.create_edge(nodes[i], nodes[i + 1], None, PropertyMap::new())
                .unwrap();
        }
        let before: Vec<NodeId> = e.k_neighborhood(nodes[0], 49).unwrap();
        let moved = e.recluster().unwrap();
        assert_eq!(moved, 50);
        let after: Vec<NodeId> = e.k_neighborhood(nodes[0], 49).unwrap();
        assert_eq!(before, after);
        assert_eq!(GraphEngine::edge_count(&e), 49);
    }
}
