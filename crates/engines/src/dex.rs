//! DEX emulation.
//!
//! The paper: "DEX provides a Java library for management of
//! persistent and temporary graphs. Its implementation, based on
//! bitmaps and other secondary structures, is oriented to ensure a
//! good performance in the management of very large graphs." Profile:
//! attributed directed multigraph with labeled/attributed nodes and
//! edges (Table III), main + external memory with (bitmap) indexes
//! (Table I), API only (Table II), types / identity / referential
//! constraints (Table VI), strong essential-query support minus
//! pattern matching (Table VII).

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use gdm_algo::adjacency::{k_neighborhood, nodes_adjacent};
use gdm_algo::analysis;
use gdm_algo::paths::{fixed_length_paths, shortest_path};
use gdm_algo::regular::{regular_path_exists, LabelRegex};
use gdm_algo::summary;
use gdm_core::{
    AttributedView, DeltaTracker, Direction, EdgeId, FxHashMap, GdmError, GraphView, NodeId,
    PropertyMap, Result, Support, Value,
};
use gdm_graphs::PropertyGraph;
use gdm_query::eval::ResultSet;
use gdm_schema::{validate, Constraint};
use gdm_storage::{Bitmap, BitmapIndex, ValueIndex};
use std::cell::RefCell;
use std::path::{Path, PathBuf};

const NAME: &str = "DEX";
const PATH_BUDGET: usize = 1_000_000;

/// The DEX emulation.
pub struct DexEngine {
    graph: PropertyGraph,
    /// DEX-style type bitmaps: node label → object bitmap.
    node_type_bitmaps: FxHashMap<String, Bitmap>,
    /// Edge label → edge bitmap.
    edge_type_bitmaps: FxHashMap<String, Bitmap>,
    /// Attribute → value→bitmap index.
    attr_indexes: FxHashMap<String, BitmapIndex>,
    constraints: Vec<Constraint>,
    snapshot_path: PathBuf,
    tx_snapshot: Option<PropertyGraph>,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze (`RefCell`: snapshots reset it through
    /// `&self`; engines are not `Send`, so access is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl DexEngine {
    /// Opens (or creates) the store under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        let snapshot_path = dir.join("dex.snapshot");
        let graph = if snapshot_path.exists() {
            PropertyGraph::from_snapshot(&std::fs::read(&snapshot_path)?)?
        } else {
            PropertyGraph::new()
        };
        let mut engine = Self {
            graph,
            node_type_bitmaps: FxHashMap::default(),
            edge_type_bitmaps: FxHashMap::default(),
            attr_indexes: FxHashMap::default(),
            constraints: Vec::new(),
            snapshot_path,
            tx_snapshot: None,
            delta: RefCell::new(DeltaTracker::new()),
        };
        engine.rebuild_bitmaps();
        Ok(engine)
    }

    /// The wrapped property graph (read-only), for benches.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Nodes of a type via the type bitmap (the DEX lookup path).
    pub fn nodes_of_type(&self, label: &str) -> Vec<NodeId> {
        self.node_type_bitmaps
            .get(label)
            .map(|bm| bm.iter().map(NodeId).collect())
            .unwrap_or_default()
    }

    fn rebuild_bitmaps(&mut self) {
        self.node_type_bitmaps.clear();
        self.edge_type_bitmaps.clear();
        let mut nodes = Vec::new();
        self.graph.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            let label = self.graph.node_label_text(n).expect("live").to_owned();
            self.node_type_bitmaps
                .entry(label)
                .or_default()
                .insert(n.raw());
        }
        for e in self.graph.edge_ids() {
            let label = self.graph.edge_label_text(e).expect("live").to_owned();
            self.edge_type_bitmaps
                .entry(label)
                .or_default()
                .insert(e.raw());
        }
        let keys: Vec<String> = self.attr_indexes.keys().cloned().collect();
        for key in keys {
            self.reindex(&key);
        }
    }

    fn reindex(&mut self, key: &str) {
        let mut index = BitmapIndex::new();
        let mut nodes = Vec::new();
        self.graph.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            if let Some(v) = self.graph.node_property(n, key) {
                index.insert(&v, n.raw());
            }
        }
        self.attr_indexes.insert(key.to_owned(), index);
    }

    fn check_constraints(&self) -> Result<()> {
        let violations = validate(&self.graph, &self.constraints);
        match violations.into_iter().next() {
            Some(v) => Err(GdmError::Constraint(v.to_string())),
            None => Ok(()),
        }
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }
}

impl GraphEngine for DexEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::None,
            graphical_ql: Support::None,
            query_language_grade: Support::None,
            backend_storage: Support::None,
            blurb: "bitmap-based library for persistent and temporary very large graphs",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        let label = label
            .ok_or_else(|| GdmError::InvalidArgument("DEX nodes require a type label".into()))?;
        let n = self.graph.add_node(label, props.clone());
        if let Err(e) = self.check_constraints() {
            self.graph.remove_node(n)?;
            return Err(e);
        }
        self.node_type_bitmaps
            .entry(label.to_owned())
            .or_default()
            .insert(n.raw());
        for (key, index) in self.attr_indexes.iter_mut() {
            if let Some(v) = props.get(key) {
                index.insert(v, n.raw());
            }
        }
        self.delta.get_mut().touch_node(n.raw());
        Ok(n)
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let label = label
            .ok_or_else(|| GdmError::InvalidArgument("DEX edges require a type label".into()))?;
        let e = self.graph.add_edge(from, to, label, props)?;
        if let Err(err) = self.check_constraints() {
            self.graph.remove_edge(e)?;
            return Err(err);
        }
        self.edge_type_bitmaps
            .entry(label.to_owned())
            .or_default()
            .insert(e.raw());
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(e)
    }

    fn create_hyperedge(
        &mut self,
        _label: &str,
        _targets: &[NodeId],
        _props: PropertyMap,
    ) -> Result<EdgeId> {
        self.unsupported("hyperedges")
    }

    fn create_edge_on_edge(&mut self, _from: EdgeId, _to: NodeId, _label: &str) -> Result<EdgeId> {
        self.unsupported("edges between edges")
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, n: NodeId, key: &str, value: Value) -> Result<()> {
        let old = self.graph.set_node_property(n, key, value.clone())?;
        // Track immediately: even the constraint-violation path leaves
        // the node's property list rewritten (restore or Null-out).
        self.delta.get_mut().touch_node(n.raw());
        if let Err(e) = self.check_constraints() {
            match old {
                Some(v) => {
                    self.graph.set_node_property(n, key, v)?;
                }
                None => {
                    // No remove-property API needed elsewhere; restore
                    // by overwriting with Null and reindexing.
                    self.graph.set_node_property(n, key, Value::Null)?;
                }
            }
            return Err(e);
        }
        if let Some(index) = self.attr_indexes.get_mut(key) {
            if let Some(v) = old {
                index.remove(&v, n.raw());
            }
            index.insert(&value, n.raw());
        }
        Ok(())
    }

    fn set_edge_attribute(&mut self, e: EdgeId, key: &str, value: Value) -> Result<()> {
        self.graph.set_edge_property(e, key, value)?;
        self.delta.get_mut().touch_edge_props(e.raw());
        Ok(())
    }

    fn node_attribute(&self, n: NodeId, key: &str) -> Result<Option<Value>> {
        self.graph.node_properties(n)?;
        Ok(self.graph.node_property(n, key))
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        let label = self.graph.node_label_text(n)?.to_owned();
        self.graph.remove_node(n)?;
        if let Some(bm) = self.node_type_bitmaps.get_mut(&label) {
            bm.remove(n.raw());
        }
        for index in self.attr_indexes.values_mut() {
            // Bitmap indexes don't support per-id removal without the
            // value; rebuild lazily instead.
            let _ = index;
        }
        self.rebuild_bitmaps();
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        let label = self.graph.edge_label_text(e)?.to_owned();
        self.graph.remove_edge(e)?;
        if let Some(bm) = self.edge_type_bitmaps.get_mut(&label) {
            bm.remove(e.raw());
        }
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn define_node_type(&mut self, def: gdm_schema::NodeTypeDef) -> Result<()> {
        // DEX types are created implicitly; an explicit definition
        // pre-creates the bitmap.
        self.node_type_bitmaps.entry(def.name).or_default();
        Ok(())
    }

    fn define_edge_type(&mut self, def: gdm_schema::EdgeTypeDef) -> Result<()> {
        self.edge_type_bitmaps.entry(def.name).or_default();
        Ok(())
    }

    fn install_constraint(&mut self, constraint: Constraint) -> Result<()> {
        match &constraint {
            Constraint::TypeChecking(_)
            | Constraint::Identity { .. }
            | Constraint::ReferentialIntegrity => {
                // Reject installation when current data already violates.
                let mut probe = self.constraints.clone();
                probe.push(constraint.clone());
                if let Some(v) = validate(&self.graph, &probe).into_iter().next() {
                    return Err(GdmError::Constraint(v.to_string()));
                }
                self.constraints.push(constraint);
                Ok(())
            }
            _ => self.unsupported("this constraint kind (types, identity, referential only)"),
        }
    }

    fn execute_ddl(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data definition language")
    }

    fn execute_dml(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data manipulation language")
    }

    fn execute_query(&mut self, _query: &str) -> Result<ResultSet> {
        self.unsupported("a query language")
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, func: AnalysisFunc) -> Result<Value> {
        Ok(match func {
            AnalysisFunc::ConnectedComponents => {
                Value::Int(analysis::connected_components(&self.graph).len() as i64)
            }
            AnalysisFunc::Triangles => Value::Int(analysis::triangle_count(&self.graph) as i64),
            AnalysisFunc::AverageClustering => analysis::average_clustering(&self.graph)
                .map(Value::Float)
                .unwrap_or(Value::Null),
            AnalysisFunc::TopDegreeNode => analysis::degree_centrality(&self.graph, 1)
                .first()
                .map(|(n, _)| Value::Int(n.raw() as i64))
                .unwrap_or(Value::Null),
        })
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(nodes_adjacent(&self.graph, a, b))
    }

    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>> {
        Ok(k_neighborhood(&self.graph, n, k, Direction::Outgoing))
    }

    fn fixed_length_paths(&self, a: NodeId, b: NodeId, len: usize) -> Result<usize> {
        Ok(fixed_length_paths(&self.graph, a, b, len, PATH_BUDGET)?.len())
    }

    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool> {
        let regex = LabelRegex::compile(expr)?;
        Ok(regular_path_exists(&self.graph, a, b, &regex))
    }

    fn shortest_path(&self, a: NodeId, b: NodeId) -> Result<Option<Vec<NodeId>>> {
        Ok(shortest_path(&self.graph, a, b).map(|p| p.nodes))
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        self.unsupported("pattern matching queries")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&self.graph);
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze(&self.graph, prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // The paper's high-performance engine: a wide visit budget (its
        // bitmap structures chew through nodes cheaply) under the same
        // wall-clock ceiling as the other databases.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(30))
            .with_node_visits(50_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        Ok(match func {
            SummaryFunc::PropertyAggregate(agg, key) => {
                let mut values = Vec::new();
                self.graph.visit_nodes(&mut |n| {
                    if let Some(v) = self.graph.node_property(n, key) {
                        values.push(v);
                    }
                });
                summary::aggregate(agg, &values)?
            }
            other => crate::vertexdb::summarize_simple(&self.graph, other, NAME)?,
        })
    }

    fn begin_transaction(&mut self) -> Result<()> {
        if self.tx_snapshot.is_some() {
            return Err(GdmError::InvalidArgument("transaction already open".into()));
        }
        self.tx_snapshot = Some(self.graph.clone());
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<()> {
        self.tx_snapshot
            .take()
            .map(|_| ())
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))
    }

    fn rollback_transaction(&mut self) -> Result<()> {
        let snapshot = self
            .tx_snapshot
            .take()
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))?;
        self.graph = snapshot;
        self.rebuild_bitmaps();
        // The rollback rewinds past everything tracked in the open
        // transaction; the tracker cannot un-record, so degrade.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn persist(&mut self) -> Result<()> {
        std::fs::write(&self.snapshot_path, self.graph.to_snapshot())?;
        Ok(())
    }

    fn create_index(&mut self, property: &str) -> Result<()> {
        self.reindex(property);
        Ok(())
    }

    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        if let Some(index) = self.attr_indexes.get(key) {
            return Ok(index.lookup(value).into_iter().map(NodeId).collect());
        }
        let mut out = Vec::new();
        self.graph.visit_nodes(&mut |n| {
            if self.graph.node_property(n, key).as_ref() == Some(value) {
                out.push(n);
            }
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;
    use gdm_schema::{NodeTypeDef, PropertyType, Schema, ValueType};

    fn temp_engine(tag: &str) -> DexEngine {
        let dir = std::env::temp_dir().join(format!("gdm-dex-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        DexEngine::open(&dir).unwrap()
    }

    #[test]
    fn attributed_multigraph() {
        let mut e = temp_engine("attrs");
        let a = e
            .create_node(Some("person"), props! { "name" => "ana" })
            .unwrap();
        let b = e
            .create_node(Some("person"), props! { "name" => "bob" })
            .unwrap();
        let edge = e
            .create_edge(a, b, Some("knows"), props! { "since" => 2001 })
            .unwrap();
        e.set_edge_attribute(edge, "weight", Value::from(0.5))
            .unwrap();
        assert_eq!(
            e.node_attribute(a, "name").unwrap(),
            Some(Value::from("ana"))
        );
        assert_eq!(e.nodes_of_type("person"), vec![a, b]);
        // Unlabeled nodes are out of model.
        assert!(e.create_node(None, props! {}).is_err());
    }

    #[test]
    fn bitmap_indexes() {
        let mut e = temp_engine("bitmaps");
        let a = e
            .create_node(Some("n"), props! { "city" => "scl" })
            .unwrap();
        let _b = e
            .create_node(Some("n"), props! { "city" => "muc" })
            .unwrap();
        let c = e
            .create_node(Some("n"), props! { "city" => "scl" })
            .unwrap();
        e.create_index("city").unwrap();
        assert_eq!(
            e.lookup_by_property("city", &Value::from("scl")).unwrap(),
            vec![a, c]
        );
        // Index stays current through set_node_attribute.
        e.set_node_attribute(a, "city", Value::from("muc")).unwrap();
        assert_eq!(
            e.lookup_by_property("city", &Value::from("scl")).unwrap(),
            vec![c]
        );
    }

    #[test]
    fn essential_queries() {
        let mut e = temp_engine("essential");
        let n: Vec<NodeId> = (0..4)
            .map(|i| e.create_node(Some("v"), props! { "i" => i }).unwrap())
            .collect();
        e.create_edge(n[0], n[1], Some("r"), props! {}).unwrap();
        e.create_edge(n[1], n[2], Some("r"), props! {}).unwrap();
        e.create_edge(n[0], n[2], Some("s"), props! {}).unwrap();
        e.create_edge(n[2], n[3], Some("r"), props! {}).unwrap();
        assert!(e.adjacent(n[0], n[1]).unwrap());
        assert_eq!(e.k_neighborhood(n[0], 1).unwrap().len(), 2);
        assert_eq!(e.fixed_length_paths(n[0], n[2], 2).unwrap(), 1);
        assert!(e.regular_path(n[0], n[3], "r r r | s r").unwrap());
        assert_eq!(e.shortest_path(n[0], n[3]).unwrap().unwrap().len(), 3);
        assert_eq!(e.summarize(SummaryFunc::Order).unwrap(), Value::Int(4));
        assert!(e
            .pattern_match(&gdm_algo::pattern::Pattern::new())
            .unwrap_err()
            .is_unsupported());
    }

    #[test]
    fn constraints_enforced_with_rollback() {
        let mut e = temp_engine("constraints");
        let mut schema = Schema::new();
        schema
            .add_node_type(
                NodeTypeDef::new("person").with(PropertyType::required("name", ValueType::Str)),
            )
            .unwrap();
        e.install_constraint(Constraint::TypeChecking(schema))
            .unwrap();
        e.install_constraint(Constraint::Identity {
            type_name: "person".into(),
            property: "name".into(),
        })
        .unwrap();
        e.create_node(Some("person"), props! { "name" => "ana" })
            .unwrap();
        // Bad type: rejected and rolled back.
        assert!(e.create_node(Some("alien"), props! {}).is_err());
        assert_eq!(GraphEngine::node_count(&e), 1);
        // Duplicate identity: rejected.
        assert!(e
            .create_node(Some("person"), props! { "name" => "ana" })
            .is_err());
        assert_eq!(GraphEngine::node_count(&e), 1);
        // Unsupported constraint kinds refuse.
        assert!(e
            .install_constraint(Constraint::FunctionalDependency {
                type_name: "x".into(),
                determinant: "a".into(),
                dependent: "b".into(),
            })
            .unwrap_err()
            .is_unsupported());
    }

    #[test]
    fn persistence_rebuilds_bitmaps() {
        let dir = std::env::temp_dir().join(format!("gdm-dex-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a;
        {
            let mut e = DexEngine::open(&dir).unwrap();
            a = e
                .create_node(Some("person"), props! { "name" => "ana" })
                .unwrap();
            let b = e.create_node(Some("city"), props! {}).unwrap();
            e.create_edge(a, b, Some("lives_in"), props! {}).unwrap();
            e.persist().unwrap();
        }
        {
            let e = DexEngine::open(&dir).unwrap();
            assert_eq!(GraphEngine::node_count(&e), 2);
            assert_eq!(e.nodes_of_type("person"), vec![a]);
            assert_eq!(
                e.node_attribute(a, "name").unwrap(),
                Some(Value::from("ana"))
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analysis_functions() {
        let mut e = temp_engine("analysis");
        let a = e.create_node(Some("v"), props! {}).unwrap();
        let b = e.create_node(Some("v"), props! {}).unwrap();
        let c = e.create_node(Some("v"), props! {}).unwrap();
        e.create_edge(a, b, Some("r"), props! {}).unwrap();
        e.create_edge(b, c, Some("r"), props! {}).unwrap();
        e.create_edge(c, a, Some("r"), props! {}).unwrap();
        assert_eq!(e.analyze(AnalysisFunc::Triangles).unwrap(), Value::Int(1));
        assert_eq!(
            e.analyze(AnalysisFunc::ConnectedComponents).unwrap(),
            Value::Int(1)
        );
    }
}
