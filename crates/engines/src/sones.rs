//! Sones emulation.
//!
//! The paper: "Sones is a graph database which provides an inherent
//! support for high-level data abstraction concepts for graphs (e.g.,
//! walks). It defines its own graph query language." Profile: the
//! richest structural row of Table III (hypergraphs *and* attributed
//! graphs), all three database languages plus API and GUI (Table II),
//! a graphical query language (Table V), identity and cardinality
//! constraints (Table VI), main-memory storage with indexes and no
//! external persistence (Table I).
//!
//! The model is an attributed atom space (`gdm_graphs::HyperGraph`):
//! binary links are ordinary edges, n-ary links are Sones' hyperedges,
//! and the GQL front-end (`gdm_query::gql`) runs over the binary
//! projection.

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use gdm_algo::adjacency::nodes_adjacent;
use gdm_algo::analysis;
use gdm_algo::summary;
use gdm_core::{
    DeltaTracker, Direction, EdgeId, FxHashMap, GdmError, GraphView, NodeId, PropertyMap, Result,
    Support, Value,
};
use gdm_graphs::hyper::{AtomId, HyperGraph};
use gdm_query::eval::{evaluate_select, ResultSet};
use gdm_query::gql::{self, GqlStatement};
use gdm_schema::{
    Cardinality, Constraint, EdgeTypeDef, NodeTypeDef, PropertyType, Schema, ValueType,
};
use gdm_storage::{HashIndex, ValueIndex};
use std::cell::RefCell;

const NAME: &str = "Sones";

/// The Sones emulation.
pub struct SonesEngine {
    atoms: HyperGraph,
    schema: Schema,
    identities: Vec<(String, String)>,
    cardinalities: Vec<(String, Cardinality)>,
    indexes: FxHashMap<String, HashIndex>,
    tx_snapshot: Option<HyperGraph>,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze of the two-section view (`RefCell`:
    /// snapshots reset it through `&self`; engines are not `Send`, so
    /// access is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl Default for SonesEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SonesEngine {
    /// Creates an empty (main-memory) database.
    pub fn new() -> Self {
        Self {
            atoms: HyperGraph::new(),
            schema: Schema::new(),
            identities: Vec::new(),
            cardinalities: Vec::new(),
            indexes: FxHashMap::default(),
            tx_snapshot: None,
            delta: RefCell::new(DeltaTracker::new()),
        }
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }

    fn check_identity(&self, label: &str, props: &PropertyMap) -> Result<()> {
        for (type_name, key) in &self.identities {
            if type_name == label {
                let Some(value) = props.get(key) else {
                    return Err(GdmError::Constraint(format!(
                        "vertex of type {label} lacks identity property {key:?}"
                    )));
                };
                for id in self.atoms.node_ids() {
                    if self.atoms.label(id).ok() == Some(label)
                        && self.atoms.property(id, key) == Some(value)
                    {
                        return Err(GdmError::Constraint(format!(
                            "identity {key} = {value} already taken by {id}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_cardinality(&self, label: &str, from: AtomId) -> Result<()> {
        for (type_name, card) in &self.cardinalities {
            if type_name != label {
                continue;
            }
            let limit_out = matches!(card, Cardinality::OneFromSource | Cardinality::OneToOne);
            if !limit_out {
                continue;
            }
            for link in self.atoms.incidence(from)?.iter() {
                if self.atoms.label(*link).ok() == Some(label)
                    && self.atoms.targets(*link)?.first() == Some(&from)
                {
                    return Err(GdmError::Constraint(format!(
                        "cardinality {card:?}: {from} already has an outgoing {label} edge"
                    )));
                }
            }
        }
        Ok(())
    }

    fn find_by(&self, type_name: &str, key: &str, value: &Value) -> Result<AtomId> {
        for id in self.atoms.node_ids() {
            if self.atoms.label(id).ok() == Some(type_name)
                && self.atoms.property(id, key) == Some(value)
            {
                return Ok(id);
            }
        }
        Err(GdmError::NotFound(format!(
            "{type_name} with {key} = {value}"
        )))
    }

    /// Sones' signature "walk" abstraction (the paper: "inherent
    /// support for high-level data abstraction concepts for graphs
    /// (e.g., walks)"): follow a fixed sequence of edge types from
    /// `start`, returning every vertex sequence that spells it.
    pub fn walks(&self, start: NodeId, edge_types: &[&str]) -> Result<Vec<Vec<NodeId>>> {
        let view = self.atoms.two_section();
        let mut complete = Vec::new();
        let mut partial: Vec<Vec<NodeId>> = vec![vec![start]];
        for want in edge_types {
            let mut next = Vec::new();
            for walk in &partial {
                let last = *walk.last().expect("walks are non-empty");
                gdm_core::GraphView::visit_out_edges(&view, last, &mut |e| {
                    let matches = e
                        .label
                        .and_then(|s| gdm_core::GraphView::label_text(&view, s))
                        .is_some_and(|t| t == *want);
                    if matches {
                        let mut w = walk.clone();
                        w.push(e.to);
                        next.push(w);
                    }
                });
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        complete.extend(partial);
        Ok(complete)
    }

    fn index_atom(&mut self, id: AtomId, props: &PropertyMap) {
        for (key, index) in self.indexes.iter_mut() {
            if let Some(v) = props.get(key) {
                index.insert(v, id.raw());
            }
        }
    }
}

impl GraphEngine for SonesEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::Full,
            graphical_ql: Support::Full,
            query_language_grade: Support::Full,
            backend_storage: Support::None,
            blurb:
                "inherent support for high-level graph abstractions; defines its own query language",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        let label = label.unwrap_or("Vertex");
        self.check_identity(label, &props)?;
        let id = self.atoms.add_node(label, props.clone());
        self.index_atom(id, &props);
        self.delta.get_mut().touch_node(id.raw());
        Ok(NodeId(id.raw()))
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let label = label.unwrap_or("Edge");
        self.check_cardinality(label, AtomId(from.raw()))?;
        let id = self
            .atoms
            .add_link(label, &[AtomId(from.raw()), AtomId(to.raw())], props)?;
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(EdgeId(id.raw()))
    }

    fn create_hyperedge(
        &mut self,
        label: &str,
        targets: &[NodeId],
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let atoms: Vec<AtomId> = targets.iter().map(|n| AtomId(n.raw())).collect();
        let id = self.atoms.add_link(label, &atoms, props)?;
        // The two-section projection adds pairwise edges among the
        // targets, so every target's row changes.
        for t in targets {
            self.delta.get_mut().touch_node(t.raw());
        }
        Ok(EdgeId(id.raw()))
    }

    fn create_edge_on_edge(&mut self, from: EdgeId, to: NodeId, label: &str) -> Result<EdgeId> {
        let id = self.atoms.add_link(
            label,
            &[AtomId(from.raw()), AtomId(to.raw())],
            PropertyMap::new(),
        )?;
        // A link over another link projects onto the two-section view
        // in ways the per-node tracker cannot attribute; degrade.
        self.delta.get_mut().mark_all();
        Ok(EdgeId(id.raw()))
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, n: NodeId, key: &str, value: Value) -> Result<()> {
        self.atoms
            .set_property(AtomId(n.raw()), key, value.clone())?;
        if let Some(index) = self.indexes.get_mut(key) {
            index.insert(&value, n.raw());
        }
        self.delta.get_mut().touch_node(n.raw());
        Ok(())
    }

    fn set_edge_attribute(&mut self, e: EdgeId, key: &str, value: Value) -> Result<()> {
        self.atoms.set_property(AtomId(e.raw()), key, value)?;
        // Every two-section pair of this link carries the link's id.
        self.delta.get_mut().touch_edge_props(e.raw());
        Ok(())
    }

    fn node_attribute(&self, n: NodeId, key: &str) -> Result<Option<Value>> {
        if !self.atoms.contains(AtomId(n.raw())) {
            return Err(GdmError::NotFound(format!("vertex {n}")));
        }
        Ok(self.atoms.property(AtomId(n.raw()), key).cloned())
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        self.atoms.remove_atom(AtomId(n.raw()), true)?;
        // The cascade also removes incident links, but every pair
        // those links projected runs through this node's two-section
        // neighbours, which the re-freeze re-reads.
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        self.atoms.remove_atom(AtomId(e.raw()), true)?;
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        self.atoms.node_count()
    }

    fn edge_count(&self) -> usize {
        self.atoms.link_count()
    }

    fn define_node_type(&mut self, def: NodeTypeDef) -> Result<()> {
        // Unique attributes install identity constraints automatically.
        for pt in &def.properties {
            if pt.unique {
                self.identities.push((def.name.clone(), pt.name.clone()));
            }
        }
        self.schema.add_node_type(def)
    }

    fn define_edge_type(&mut self, def: EdgeTypeDef) -> Result<()> {
        if def.cardinality != Cardinality::ManyToMany {
            self.cardinalities.push((def.name.clone(), def.cardinality));
        }
        self.schema.add_edge_type(def)
    }

    fn install_constraint(&mut self, constraint: Constraint) -> Result<()> {
        match constraint {
            Constraint::Identity {
                type_name,
                property,
            } => {
                self.identities.push((type_name, property));
                Ok(())
            }
            Constraint::Cardinality(schema) => {
                for def in schema.edge_types() {
                    if def.cardinality != Cardinality::ManyToMany {
                        self.cardinalities.push((def.name.clone(), def.cardinality));
                    }
                }
                Ok(())
            }
            _ => self.unsupported("this constraint kind (identity and cardinality only)"),
        }
    }

    fn execute_ddl(&mut self, statement: &str) -> Result<()> {
        match gql::parse(statement)? {
            GqlStatement::CreateVertexType { name, attributes } => {
                let mut def = NodeTypeDef::new(name);
                for a in attributes {
                    let vt = ValueType::parse(&a.type_name).ok_or_else(|| {
                        GdmError::Schema(format!("unknown attribute type {:?}", a.type_name))
                    })?;
                    let mut pt = if a.mandatory {
                        PropertyType::required(&a.name, vt)
                    } else {
                        PropertyType::optional(&a.name, vt)
                    };
                    if a.unique {
                        pt = pt.unique();
                    }
                    def = def.with(pt);
                }
                self.define_node_type(def)
            }
            GqlStatement::CreateEdgeType { name, from, to } => {
                self.define_edge_type(EdgeTypeDef::new(name).between(from, to))
            }
            _ => Err(GdmError::InvalidArgument(
                "not a DDL statement (use CREATE VERTEX TYPE / CREATE EDGE TYPE)".into(),
            )),
        }
    }

    fn execute_dml(&mut self, statement: &str) -> Result<()> {
        match gql::parse(statement)? {
            GqlStatement::InsertVertex { type_name, props } => {
                self.create_node(Some(&type_name), props)?;
                Ok(())
            }
            GqlStatement::InsertEdge {
                type_name,
                from,
                to,
                props,
            } => {
                let f = self.find_by(&from.0, &from.1, &from.2)?;
                let t = self.find_by(&to.0, &to.1, &to.2)?;
                self.create_edge(NodeId(f.raw()), NodeId(t.raw()), Some(&type_name), props)?;
                Ok(())
            }
            _ => Err(GdmError::InvalidArgument(
                "not a DML statement (use INSERT INTO / INSERT EDGE)".into(),
            )),
        }
    }

    fn execute_query(&mut self, query: &str) -> Result<ResultSet> {
        match gql::parse(query)? {
            GqlStatement::Select(q) => {
                let view = self.atoms.two_section();
                evaluate_select(&view, &q)
            }
            _ => Err(GdmError::InvalidArgument(
                "not a query (use FROM … SELECT …)".into(),
            )),
        }
    }

    fn explain(&self, query: &str) -> Result<String> {
        match gql::parse(query)? {
            GqlStatement::Select(q) => {
                let view = self.atoms.two_section();
                Ok(gdm_query::plan_select(&view, &q)?.explain.render())
            }
            _ => Err(GdmError::InvalidArgument(
                "EXPLAIN applies to FROM … SELECT … queries".into(),
            )),
        }
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, func: AnalysisFunc) -> Result<Value> {
        let view = self.atoms.two_section();
        Ok(match func {
            AnalysisFunc::ConnectedComponents => {
                Value::Int(analysis::connected_components(&view).len() as i64)
            }
            AnalysisFunc::Triangles => Value::Int(analysis::triangle_count(&view) as i64),
            AnalysisFunc::AverageClustering => analysis::average_clustering(&view)
                .map(Value::Float)
                .unwrap_or(Value::Null),
            AnalysisFunc::TopDegreeNode => analysis::degree_centrality(&view, 1)
                .first()
                .map(|(n, _)| Value::Int(n.raw() as i64))
                .unwrap_or(Value::Null),
        })
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        let view = self.atoms.two_section();
        Ok(nodes_adjacent(&view, a, b))
    }

    fn k_neighborhood(&self, _n: NodeId, _k: usize) -> Result<Vec<NodeId>> {
        self.unsupported("k-neighborhood queries")
    }

    fn fixed_length_paths(&self, _a: NodeId, _b: NodeId, _len: usize) -> Result<usize> {
        self.unsupported("fixed-length path queries")
    }

    fn regular_path(&self, _a: NodeId, _b: NodeId, _expr: &str) -> Result<bool> {
        self.unsupported("regular path queries")
    }

    fn shortest_path(&self, _a: NodeId, _b: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.unsupported("shortest path queries")
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        self.unsupported("pattern matching queries")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&self.atoms.two_section());
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze(&self.atoms.two_section(), prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // A server-class database with a declarative query language:
        // generous defaults plus a result-row cap, the shape a GQL
        // endpoint would enforce per statement.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(30))
            .with_node_visits(10_000_000)
            .with_rows(1_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        let view = self.atoms.two_section();
        Ok(match func {
            SummaryFunc::Order => Value::Int(self.atoms.node_count() as i64),
            SummaryFunc::Size => Value::Int(self.atoms.link_count() as i64),
            SummaryFunc::Degree(n) => Value::Int(view.degree(n) as i64),
            SummaryFunc::MinDegree => match summary::degree_stats(&view) {
                Some((min, _, _)) => Value::Int(min as i64),
                None => Value::Null,
            },
            SummaryFunc::MaxDegree => match summary::degree_stats(&view) {
                Some((_, max, _)) => Value::Int(max as i64),
                None => Value::Null,
            },
            SummaryFunc::AvgDegree => match summary::degree_stats(&view) {
                Some((_, _, avg)) => Value::Float(avg),
                None => Value::Null,
            },
            SummaryFunc::Distance(a, b) => match summary::distance_between(&view, a, b) {
                Some(d) => Value::Int(d as i64),
                None => Value::Null,
            },
            SummaryFunc::Diameter => match summary::diameter(&view, Direction::Outgoing) {
                Some(d) => Value::Int(d as i64),
                None => Value::Null,
            },
            SummaryFunc::PropertyAggregate(agg, key) => {
                let values: Vec<Value> = self
                    .atoms
                    .node_ids()
                    .into_iter()
                    .filter_map(|a| self.atoms.property(a, key).cloned())
                    .collect();
                summary::aggregate(agg, &values)?
            }
        })
    }

    fn begin_transaction(&mut self) -> Result<()> {
        if self.tx_snapshot.is_some() {
            return Err(GdmError::InvalidArgument("transaction already open".into()));
        }
        self.tx_snapshot = Some(self.atoms.clone());
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<()> {
        self.tx_snapshot
            .take()
            .map(|_| ())
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))
    }

    fn rollback_transaction(&mut self) -> Result<()> {
        let snapshot = self
            .tx_snapshot
            .take()
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))?;
        self.atoms = snapshot;
        // The rollback rewinds past everything tracked in the open
        // transaction; the tracker cannot un-record, so degrade.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn persist(&mut self) -> Result<()> {
        self.unsupported("external-memory persistence (main-memory system)")
    }

    fn create_index(&mut self, property: &str) -> Result<()> {
        let mut index = HashIndex::new();
        for id in self.atoms.node_ids() {
            if let Some(v) = self.atoms.property(id, property) {
                index.insert(v, id.raw());
            }
        }
        self.indexes.insert(property.to_owned(), index);
        Ok(())
    }

    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        match self.indexes.get(key) {
            Some(index) => Ok(index.lookup(value).into_iter().map(NodeId).collect()),
            None => {
                let mut out = Vec::new();
                for id in self.atoms.node_ids() {
                    if self.atoms.property(id, key) == Some(value) {
                        out.push(NodeId(id.raw()));
                    }
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;

    #[test]
    fn gql_end_to_end() {
        let mut e = SonesEngine::new();
        e.execute_ddl("CREATE VERTEX TYPE Person ATTRIBUTES (String name UNIQUE, Int age)")
            .unwrap();
        e.execute_ddl("CREATE EDGE TYPE knows FROM Person TO Person")
            .unwrap();
        e.execute_dml("INSERT INTO Person VALUES (name = 'ana', age = 30)")
            .unwrap();
        e.execute_dml("INSERT INTO Person VALUES (name = 'bob', age = 45)")
            .unwrap();
        e.execute_dml("INSERT EDGE knows FROM Person (name = 'ana') TO Person (name = 'bob')")
            .unwrap();
        let rs = e
            .execute_query("FROM Person p SELECT p.name WHERE p.age > 40")
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("bob"));
        // UNIQUE attribute acts as identity constraint.
        assert!(e
            .execute_dml("INSERT INTO Person VALUES (name = 'ana', age = 99)")
            .is_err());
    }

    #[test]
    fn hyperedges_supported() {
        let mut e = SonesEngine::new();
        let a = e.create_node(Some("T"), props! {}).unwrap();
        let b = e.create_node(Some("T"), props! {}).unwrap();
        let c = e.create_node(Some("T"), props! {}).unwrap();
        e.create_hyperedge("walk", &[a, b, c], props! {}).unwrap();
        assert!(e.adjacent(a, c).unwrap());
    }

    #[test]
    fn cardinality_constraint() {
        let mut e = SonesEngine::new();
        e.define_node_type(NodeTypeDef::new("Person")).unwrap();
        e.define_node_type(NodeTypeDef::new("Company")).unwrap();
        e.define_edge_type(
            EdgeTypeDef::new("works_at")
                .between("Person", "Company")
                .cardinality(Cardinality::OneFromSource),
        )
        .unwrap();
        let p = e.create_node(Some("Person"), props! {}).unwrap();
        let c1 = e.create_node(Some("Company"), props! {}).unwrap();
        let c2 = e.create_node(Some("Company"), props! {}).unwrap();
        e.create_edge(p, c1, Some("works_at"), props! {}).unwrap();
        let err = e
            .create_edge(p, c2, Some("works_at"), props! {})
            .unwrap_err();
        assert!(err.to_string().contains("cardinality"));
    }

    #[test]
    fn analysis_functions() {
        let mut e = SonesEngine::new();
        let a = e.create_node(Some("T"), props! {}).unwrap();
        let b = e.create_node(Some("T"), props! {}).unwrap();
        let c = e.create_node(Some("T"), props! {}).unwrap();
        e.create_edge(a, b, Some("r"), props! {}).unwrap();
        e.create_edge(b, c, Some("r"), props! {}).unwrap();
        e.create_edge(c, a, Some("r"), props! {}).unwrap();
        assert_eq!(e.analyze(AnalysisFunc::Triangles).unwrap(), Value::Int(1));
        assert_eq!(
            e.analyze(AnalysisFunc::ConnectedComponents).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn main_memory_profile() {
        let mut e = SonesEngine::new();
        assert!(e.persist().unwrap_err().is_unsupported());
        let a = e.create_node(Some("T"), props! {}).unwrap();
        let b = e.create_node(Some("T"), props! {}).unwrap();
        assert!(e.shortest_path(a, b).unwrap_err().is_unsupported());
        assert!(e.k_neighborhood(a, 2).unwrap_err().is_unsupported());
    }

    #[test]
    fn walks_follow_edge_type_sequences() {
        let mut e = SonesEngine::new();
        let a = e
            .create_node(Some("City"), props! { "name" => "a" })
            .unwrap();
        let b = e
            .create_node(Some("City"), props! { "name" => "b" })
            .unwrap();
        let c = e
            .create_node(Some("City"), props! { "name" => "c" })
            .unwrap();
        let d = e
            .create_node(Some("City"), props! { "name" => "d" })
            .unwrap();
        e.create_edge(a, b, Some("road"), props! {}).unwrap();
        e.create_edge(b, c, Some("rail"), props! {}).unwrap();
        e.create_edge(a, d, Some("road"), props! {}).unwrap();
        e.create_edge(d, c, Some("rail"), props! {}).unwrap();
        let walks = e.walks(a, &["road", "rail"]).unwrap();
        assert_eq!(walks.len(), 2, "two road-then-rail walks from a");
        assert!(walks.iter().all(|w| w[0] == a && w[2] == c));
        // A type sequence nothing spells.
        assert!(e.walks(a, &["rail", "road"]).unwrap().is_empty());
        // The empty sequence is the trivial walk.
        assert_eq!(e.walks(a, &[]).unwrap(), vec![vec![a]]);
    }

    #[test]
    fn summarize_with_aggregates() {
        let mut e = SonesEngine::new();
        e.create_node(Some("T"), props! { "x" => 1 }).unwrap();
        e.create_node(Some("T"), props! { "x" => 3 }).unwrap();
        assert_eq!(
            e.summarize(SummaryFunc::PropertyAggregate(
                gdm_algo::summary::Aggregate::Avg,
                "x"
            ))
            .unwrap(),
            Value::Float(2.0)
        );
    }
}
