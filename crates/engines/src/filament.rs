//! Filament emulation.
//!
//! The paper: "Filament is a project for a graph storage library with
//! default support for SQL through JDB", classed as a *graph store*.
//! Table I credits it with main-memory and backend storage (no
//! external-memory persistence surface of its own); Tables II and V
//! record an API and retrieval only. The emulation is a [`KvGraph`]
//! over the in-memory KV backend, with essential-query support
//! reconstructed as adjacency, k-neighborhood, and summarization.

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use crate::kvgraph::KvGraph;
use crate::vertexdb::summarize_simple;
use gdm_algo::adjacency::{k_neighborhood, nodes_adjacent};
use gdm_algo::regular::{regular_path_exists, LabelRegex};
use gdm_core::{
    DeltaTracker, Direction, EdgeId, GdmError, GraphView, NodeId, PropertyMap, Result, Support,
    Value,
};
use gdm_query::eval::ResultSet;
use gdm_storage::MemKv;
use std::cell::RefCell;
use std::path::Path;

const NAME: &str = "Filament";

/// The Filament emulation.
pub struct FilamentEngine {
    graph: KvGraph,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze (`RefCell`: snapshots reset it through
    /// `&self`; engines are not `Send`, so access is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl FilamentEngine {
    /// Creates the store. `dir` is accepted for interface uniformity;
    /// Filament's profile has no external-memory persistence, so
    /// nothing is written there.
    pub fn open(_dir: &Path) -> Result<Self> {
        Ok(Self {
            graph: KvGraph::new(Box::new(MemKv::new()))?,
            delta: RefCell::new(DeltaTracker::new()),
        })
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }
}

impl GraphEngine for FilamentEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::None,
            graphical_ql: Support::None,
            query_language_grade: Support::None,
            backend_storage: Support::Full,
            blurb: "a graph storage library with default support for SQL through JDB",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        if label.is_some() {
            return self.unsupported("node labels (simple graph model)");
        }
        if !props.is_empty() {
            return self.unsupported("node attributes (simple graph model)");
        }
        let n = self.graph.add_node(None, &props)?;
        self.delta.get_mut().touch_node(n.raw());
        Ok(n)
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        if !props.is_empty() {
            return self.unsupported("edge attributes (simple graph model)");
        }
        let e = self.graph.add_edge(from, to, label, &props)?;
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(e)
    }

    fn create_hyperedge(
        &mut self,
        _label: &str,
        _targets: &[NodeId],
        _props: PropertyMap,
    ) -> Result<EdgeId> {
        self.unsupported("hyperedges")
    }

    fn create_edge_on_edge(&mut self, _from: EdgeId, _to: NodeId, _label: &str) -> Result<EdgeId> {
        self.unsupported("edges between edges")
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, _n: NodeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("node attributes")
    }

    fn set_edge_attribute(&mut self, _e: EdgeId, _key: &str, _value: Value) -> Result<()> {
        self.unsupported("edge attributes")
    }

    fn node_attribute(&self, _n: NodeId, _key: &str) -> Result<Option<Value>> {
        self.unsupported("node attributes")
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        self.graph.delete_node(n)?;
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        self.graph.delete_edge(e)?;
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        GraphView::node_count(&self.graph)
    }

    fn edge_count(&self) -> usize {
        GraphView::edge_count(&self.graph)
    }

    fn define_node_type(&mut self, _def: gdm_schema::NodeTypeDef) -> Result<()> {
        self.unsupported("schema definitions")
    }

    fn define_edge_type(&mut self, _def: gdm_schema::EdgeTypeDef) -> Result<()> {
        self.unsupported("schema definitions")
    }

    fn install_constraint(&mut self, _c: gdm_schema::Constraint) -> Result<()> {
        self.unsupported("integrity constraints")
    }

    fn execute_ddl(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data definition language")
    }

    fn execute_dml(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data manipulation language")
    }

    fn execute_query(&mut self, _query: &str) -> Result<ResultSet> {
        self.unsupported("a query language")
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, _func: AnalysisFunc) -> Result<Value> {
        self.unsupported("analysis functions")
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(nodes_adjacent(&self.graph, a, b))
    }

    fn k_neighborhood(&self, n: NodeId, k: usize) -> Result<Vec<NodeId>> {
        Ok(k_neighborhood(&self.graph, n, k, Direction::Outgoing))
    }

    fn fixed_length_paths(&self, _a: NodeId, _b: NodeId, _len: usize) -> Result<usize> {
        self.unsupported("fixed-length path queries")
    }

    fn regular_path(&self, a: NodeId, b: NodeId, expr: &str) -> Result<bool> {
        let regex = LabelRegex::compile(expr)?;
        Ok(regular_path_exists(&self.graph, a, b, &regex))
    }

    fn shortest_path(&self, _a: NodeId, _b: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.unsupported("shortest path queries")
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        self.unsupported("pattern matching queries")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze(&self.graph);
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze_structural(&self.graph, prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // An embedded library running inside the caller's process:
        // tight defaults, since a runaway traversal stalls the host
        // application directly.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(5))
            .with_node_visits(1_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        summarize_simple(&self.graph, func, NAME)
    }

    fn persist(&mut self) -> Result<()> {
        self.unsupported("external-memory persistence")
    }

    fn create_index(&mut self, _property: &str) -> Result<()> {
        self.unsupported("secondary indexes")
    }

    fn lookup_by_property(&self, _key: &str, _value: &Value) -> Result<Vec<NodeId>> {
        self.unsupported("property lookups (no attributes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supports_the_filament_profile() {
        let dir = std::env::temp_dir();
        let mut e = FilamentEngine::open(&dir).unwrap();
        let a = e.create_node(None, PropertyMap::new()).unwrap();
        let b = e.create_node(None, PropertyMap::new()).unwrap();
        let c = e.create_node(None, PropertyMap::new()).unwrap();
        e.create_edge(a, b, Some("r"), PropertyMap::new()).unwrap();
        e.create_edge(b, c, Some("r"), PropertyMap::new()).unwrap();
        assert!(e.adjacent(a, b).unwrap());
        assert_eq!(e.k_neighborhood(a, 2).unwrap().len(), 2);
        assert_eq!(e.summarize(SummaryFunc::Order).unwrap(), Value::Int(3));
        // Profile refusals.
        assert!(e.persist().unwrap_err().is_unsupported());
        assert!(e.shortest_path(a, c).unwrap_err().is_unsupported());
        assert!(e.fixed_length_paths(a, c, 2).unwrap_err().is_unsupported());
        assert!(e.execute_ddl("CREATE").unwrap_err().is_unsupported());
    }

    #[test]
    fn deletion() {
        let mut e = FilamentEngine::open(&std::env::temp_dir()).unwrap();
        let a = e.create_node(None, PropertyMap::new()).unwrap();
        let b = e.create_node(None, PropertyMap::new()).unwrap();
        let edge = e.create_edge(a, b, None, PropertyMap::new()).unwrap();
        e.delete_edge(edge).unwrap();
        assert_eq!(e.edge_count(), 0);
        e.delete_node(a).unwrap();
        assert_eq!(e.node_count(), 1);
    }
}
