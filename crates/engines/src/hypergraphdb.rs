//! HyperGraphDB emulation.
//!
//! The paper: "HyperGraphDB is a database that implements the
//! hypergraph data model where the notion of edge is extended to
//! connect more than two nodes ... particularly useful for modeling
//! data of areas like knowledge representation, artificial
//! intelligence and bio-informatics." Profile: hypergraph structure
//! with links-on-links (Table III), main + external + backend storage
//! with indexes (Table I), API only (Tables II and V), and type
//! checking + node/edge identity constraints (Table VI).

use crate::facade::{AnalysisFunc, EngineDescriptor, GraphEngine, SummaryFunc};
use gdm_algo::summary;
use gdm_core::{
    DeltaTracker, Direction, EdgeId, FxHashMap, GdmError, GraphView, NodeId, PropertyMap, Result,
    Support, Value,
};
use gdm_graphs::hyper::{AtomId, HyperGraph};
use gdm_query::eval::ResultSet;
use gdm_schema::{Constraint, NodeTypeDef, Schema};
use gdm_storage::{HashIndex, ValueIndex};
use std::cell::RefCell;
use std::path::{Path, PathBuf};

const NAME: &str = "HyperGraphDB";

/// The HyperGraphDB emulation.
pub struct HyperGraphDbEngine {
    atoms: HyperGraph,
    schema: Schema,
    /// Installed identity constraints: type → identifying property.
    identities: Vec<(String, String)>,
    /// Whether type checking is enforced.
    type_checking: bool,
    indexes: FxHashMap<String, HashIndex>,
    snapshot_path: PathBuf,
    tx_snapshot: Option<HyperGraph>,
    /// Mutations since the last snapshot, for the O(changes)
    /// incremental re-freeze of the two-section view (`RefCell`:
    /// snapshots reset it through `&self`; engines are not `Send`, so
    /// access is uncontended).
    delta: RefCell<DeltaTracker>,
}

impl HyperGraphDbEngine {
    /// Opens (or creates) the store under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        let snapshot_path = dir.join("hypergraphdb.atoms");
        let atoms = if snapshot_path.exists() {
            HyperGraph::from_snapshot(&std::fs::read(&snapshot_path)?)?
        } else {
            HyperGraph::new()
        };
        Ok(Self {
            atoms,
            schema: Schema::new(),
            identities: Vec::new(),
            type_checking: false,
            indexes: FxHashMap::default(),
            snapshot_path,
            tx_snapshot: None,
            delta: RefCell::new(DeltaTracker::new()),
        })
    }

    /// The underlying atom space (for the bioinformatics example).
    pub fn atoms(&self) -> &HyperGraph {
        &self.atoms
    }

    fn unsupported<T>(&self, feature: &str) -> Result<T> {
        Err(GdmError::unsupported(NAME, feature.to_owned()))
    }

    fn check_new_atom(&self, label: &str, props: &PropertyMap) -> Result<()> {
        if self.type_checking && !self.schema.node_types().is_empty() {
            let Some(def) = self.schema.node_type(label) else {
                return Err(GdmError::Constraint(format!(
                    "atom type {label:?} is not declared"
                )));
            };
            for pt in &def.properties {
                match props.get(&pt.name) {
                    None if pt.required => {
                        return Err(GdmError::Constraint(format!(
                            "missing required property {:?} on {label}",
                            pt.name
                        )))
                    }
                    Some(v) if !pt.value_type.admits(v) => {
                        return Err(GdmError::Constraint(format!(
                            "property {:?} on {label} has type {}",
                            pt.name,
                            v.type_name()
                        )))
                    }
                    _ => {}
                }
            }
        }
        for (type_name, key) in &self.identities {
            if type_name == label {
                let Some(value) = props.get(key) else {
                    return Err(GdmError::Constraint(format!(
                        "atom of type {label} lacks identity property {key:?}"
                    )));
                };
                // Uniqueness scan over existing atoms of this type.
                for id in self
                    .atoms
                    .node_ids()
                    .into_iter()
                    .chain(self.atoms.link_ids())
                {
                    if self.atoms.label(id).ok() == Some(label)
                        && self.atoms.property(id, key) == Some(value)
                    {
                        return Err(GdmError::Constraint(format!(
                            "identity {key} = {value} already taken by {id}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn index_atom(&mut self, id: AtomId, props: &PropertyMap) {
        for (key, index) in self.indexes.iter_mut() {
            if let Some(v) = props.get(key) {
                index.insert(v, id.raw());
            }
        }
    }
}

impl GraphEngine for HyperGraphDbEngine {
    fn name(&self) -> &'static str {
        NAME
    }

    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            name: NAME,
            gui: Support::None,
            graphical_ql: Support::None,
            query_language_grade: Support::None,
            backend_storage: Support::Full,
            blurb: "implements the hypergraph data model; links may connect any atoms",
        }
    }

    fn create_node(&mut self, label: Option<&str>, props: PropertyMap) -> Result<NodeId> {
        let label = label.unwrap_or("atom");
        self.check_new_atom(label, &props)?;
        let id = self.atoms.add_node(label, props.clone());
        self.index_atom(id, &props);
        self.delta.get_mut().touch_node(id.raw());
        Ok(NodeId(id.raw()))
    }

    fn create_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: Option<&str>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        let label = label.unwrap_or("link");
        self.check_new_atom(label, &props)?;
        let id = self.atoms.add_link(
            label,
            &[AtomId(from.raw()), AtomId(to.raw())],
            props.clone(),
        )?;
        self.index_atom(id, &props);
        self.delta.get_mut().touch_node(from.raw());
        self.delta.get_mut().touch_node(to.raw());
        Ok(EdgeId(id.raw()))
    }

    fn create_hyperedge(
        &mut self,
        label: &str,
        targets: &[NodeId],
        props: PropertyMap,
    ) -> Result<EdgeId> {
        self.check_new_atom(label, &props)?;
        let atoms: Vec<AtomId> = targets.iter().map(|n| AtomId(n.raw())).collect();
        let id = self.atoms.add_link(label, &atoms, props.clone())?;
        self.index_atom(id, &props);
        // The two-section projection adds pairwise edges among the
        // targets, so every target's row changes.
        for t in targets {
            self.delta.get_mut().touch_node(t.raw());
        }
        Ok(EdgeId(id.raw()))
    }

    fn create_edge_on_edge(&mut self, from: EdgeId, to: NodeId, label: &str) -> Result<EdgeId> {
        let id = self.atoms.add_link(
            label,
            &[AtomId(from.raw()), AtomId(to.raw())],
            PropertyMap::new(),
        )?;
        // A link over another link projects onto the two-section view
        // in ways the per-node tracker cannot attribute; degrade.
        self.delta.get_mut().mark_all();
        Ok(EdgeId(id.raw()))
    }

    fn nest_subgraph(&mut self, _node: NodeId) -> Result<()> {
        self.unsupported("nested graphs")
    }

    fn set_node_attribute(&mut self, n: NodeId, key: &str, value: Value) -> Result<()> {
        self.atoms
            .set_property(AtomId(n.raw()), key, value.clone())?;
        if let Some(index) = self.indexes.get_mut(key) {
            index.insert(&value, n.raw());
        }
        self.delta.get_mut().touch_node(n.raw());
        Ok(())
    }

    fn set_edge_attribute(&mut self, e: EdgeId, key: &str, value: Value) -> Result<()> {
        self.atoms.set_property(AtomId(e.raw()), key, value)?;
        // Every two-section pair of this link carries the link's id.
        self.delta.get_mut().touch_edge_props(e.raw());
        Ok(())
    }

    fn node_attribute(&self, n: NodeId, key: &str) -> Result<Option<Value>> {
        if !self.atoms.contains(AtomId(n.raw())) {
            return Err(GdmError::NotFound(format!("atom {n}")));
        }
        Ok(self.atoms.property(AtomId(n.raw()), key).cloned())
    }

    fn delete_node(&mut self, n: NodeId) -> Result<()> {
        self.atoms.remove_atom(AtomId(n.raw()), true)?;
        // The cascade also removes incident links, but every pair
        // those links projected runs through this node's two-section
        // neighbours, which the re-freeze re-reads.
        self.delta.get_mut().remove_node(n.raw());
        Ok(())
    }

    fn delete_edge(&mut self, e: EdgeId) -> Result<()> {
        self.atoms.remove_atom(AtomId(e.raw()), true)?;
        self.delta.get_mut().remove_edge(e.raw());
        Ok(())
    }

    fn node_count(&self) -> usize {
        self.atoms.node_count()
    }

    fn edge_count(&self) -> usize {
        self.atoms.link_count()
    }

    fn define_node_type(&mut self, def: NodeTypeDef) -> Result<()> {
        self.schema.add_node_type(def)
    }

    fn define_edge_type(&mut self, def: gdm_schema::EdgeTypeDef) -> Result<()> {
        // HyperGraphDB types atoms uniformly; reuse node-type storage.
        self.schema.add_edge_type(def)
    }

    fn install_constraint(&mut self, constraint: Constraint) -> Result<()> {
        match constraint {
            Constraint::TypeChecking(schema) => {
                self.schema = schema;
                self.type_checking = true;
                Ok(())
            }
            Constraint::Identity {
                type_name,
                property,
            } => {
                self.identities.push((type_name, property));
                Ok(())
            }
            _ => self.unsupported("this constraint kind (types and identity only)"),
        }
    }

    fn execute_ddl(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data definition language")
    }

    fn execute_dml(&mut self, _statement: &str) -> Result<()> {
        self.unsupported("a data manipulation language")
    }

    fn execute_query(&mut self, _query: &str) -> Result<ResultSet> {
        self.unsupported("a query language")
    }

    fn reason(&mut self, _rules: &str, _goal: &str) -> Result<Vec<Vec<String>>> {
        self.unsupported("reasoning")
    }

    fn analyze(&self, _func: AnalysisFunc) -> Result<Value> {
        self.unsupported("analysis functions")
    }

    fn adjacent(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(self
            .atoms
            .neighbors(AtomId(a.raw()))?
            .contains(&AtomId(b.raw())))
    }

    fn k_neighborhood(&self, _n: NodeId, _k: usize) -> Result<Vec<NodeId>> {
        self.unsupported("k-neighborhood queries")
    }

    fn fixed_length_paths(&self, _a: NodeId, _b: NodeId, _len: usize) -> Result<usize> {
        self.unsupported("fixed-length path queries")
    }

    fn regular_path(&self, _a: NodeId, _b: NodeId, _expr: &str) -> Result<bool> {
        self.unsupported("regular path queries")
    }

    fn shortest_path(&self, _a: NodeId, _b: NodeId) -> Result<Option<Vec<NodeId>>> {
        self.unsupported("shortest path queries")
    }

    fn pattern_match(&self, _pattern: &gdm_algo::pattern::Pattern) -> Result<usize> {
        self.unsupported("pattern matching queries")
    }

    fn snapshot(&self) -> Result<gdm_algo::FrozenGraph> {
        let fz = gdm_algo::FrozenGraph::freeze_attributed(&self.atoms.two_section());
        self.delta.borrow_mut().reset(fz.epoch());
        Ok(fz)
    }

    fn pending_changes(&self) -> u64 {
        self.delta.borrow().peek().pending_hint()
    }

    fn refreeze(&self, prev: &gdm_algo::FrozenGraph) -> Result<gdm_algo::FrozenGraph> {
        let delta = self.delta.borrow().peek().clone();
        let next = gdm_algo::incremental_refreeze(&self.atoms.two_section(), prev, &delta);
        self.delta.borrow_mut().reset(next.epoch());
        Ok(next)
    }

    fn default_limits(&self) -> gdm_govern::Limits {
        // A graph database over a generic backend; the two-section
        // expansion of hyperedges inflates visit counts, so the edge
        // budget is the binding one.
        gdm_govern::Limits::none()
            .with_deadline(std::time::Duration::from_secs(30))
            .with_node_visits(10_000_000)
            .with_edge_visits(50_000_000)
    }

    fn summarize(&self, func: SummaryFunc) -> Result<Value> {
        let view = self.atoms.two_section();
        Ok(match func {
            SummaryFunc::Order => Value::Int(self.atoms.node_count() as i64),
            SummaryFunc::Size => Value::Int(self.atoms.link_count() as i64),
            SummaryFunc::Degree(n) => Value::Int(view.degree(n) as i64),
            SummaryFunc::MinDegree => match summary::degree_stats(&view) {
                Some((min, _, _)) => Value::Int(min as i64),
                None => Value::Null,
            },
            SummaryFunc::MaxDegree => match summary::degree_stats(&view) {
                Some((_, max, _)) => Value::Int(max as i64),
                None => Value::Null,
            },
            SummaryFunc::AvgDegree => match summary::degree_stats(&view) {
                Some((_, _, avg)) => Value::Float(avg),
                None => Value::Null,
            },
            SummaryFunc::Distance(a, b) => match summary::distance_between(&view, a, b) {
                Some(d) => Value::Int(d as i64),
                None => Value::Null,
            },
            SummaryFunc::Diameter => match summary::diameter(&view, Direction::Outgoing) {
                Some(d) => Value::Int(d as i64),
                None => Value::Null,
            },
            SummaryFunc::PropertyAggregate(agg, key) => {
                let values: Vec<Value> = self
                    .atoms
                    .node_ids()
                    .into_iter()
                    .filter_map(|a| self.atoms.property(a, key).cloned())
                    .collect();
                summary::aggregate(agg, &values)?
            }
        })
    }

    fn begin_transaction(&mut self) -> Result<()> {
        if self.tx_snapshot.is_some() {
            return Err(GdmError::InvalidArgument("transaction already open".into()));
        }
        self.tx_snapshot = Some(self.atoms.clone());
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<()> {
        self.tx_snapshot
            .take()
            .map(|_| ())
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))
    }

    fn rollback_transaction(&mut self) -> Result<()> {
        let snapshot = self
            .tx_snapshot
            .take()
            .ok_or_else(|| GdmError::InvalidArgument("no open transaction".into()))?;
        self.atoms = snapshot;
        // The rollback rewinds past everything tracked in the open
        // transaction; the tracker cannot un-record, so degrade.
        self.delta.get_mut().mark_all();
        Ok(())
    }

    fn persist(&mut self) -> Result<()> {
        std::fs::write(&self.snapshot_path, self.atoms.to_snapshot())?;
        Ok(())
    }

    fn create_index(&mut self, property: &str) -> Result<()> {
        let mut index = HashIndex::new();
        for id in self
            .atoms
            .node_ids()
            .into_iter()
            .chain(self.atoms.link_ids())
        {
            if let Some(v) = self.atoms.property(id, property) {
                index.insert(v, id.raw());
            }
        }
        self.indexes.insert(property.to_owned(), index);
        Ok(())
    }

    fn lookup_by_property(&self, key: &str, value: &Value) -> Result<Vec<NodeId>> {
        match self.indexes.get(key) {
            Some(index) => Ok(index.lookup(value).into_iter().map(NodeId).collect()),
            None => {
                // Unindexed scan (the API allows it; just slower).
                let mut out = Vec::new();
                for id in self.atoms.node_ids() {
                    if self.atoms.property(id, key) == Some(value) {
                        out.push(NodeId(id.raw()));
                    }
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;
    use gdm_schema::{PropertyType, ValueType};

    fn temp_engine(tag: &str) -> HyperGraphDbEngine {
        let dir = std::env::temp_dir().join(format!("gdm-hgdb-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        HyperGraphDbEngine::open(&dir).unwrap()
    }

    #[test]
    fn hyperedges_and_links_on_links() {
        let mut e = temp_engine("hyper");
        let a = e.create_node(Some("gene"), props! {}).unwrap();
        let b = e.create_node(Some("gene"), props! {}).unwrap();
        let c = e.create_node(Some("protein"), props! {}).unwrap();
        let h = e
            .create_hyperedge("regulates", &[a, b, c], props! {})
            .unwrap();
        assert_eq!(GraphEngine::edge_count(&e), 1);
        let annotation = e.create_edge_on_edge(h, a, "source").unwrap();
        assert_ne!(annotation, h);
        assert!(e.adjacent(a, b).unwrap());
    }

    #[test]
    fn type_checking_constraint() {
        let mut e = temp_engine("types");
        let mut schema = Schema::new();
        schema
            .add_node_type(
                NodeTypeDef::new("protein").with(PropertyType::required("name", ValueType::Str)),
            )
            .unwrap();
        e.install_constraint(Constraint::TypeChecking(schema))
            .unwrap();
        assert!(e
            .create_node(Some("alien"), props! {})
            .unwrap_err()
            .to_string()
            .contains("not declared"));
        assert!(e.create_node(Some("protein"), props! {}).is_err());
        assert!(e
            .create_node(Some("protein"), props! { "name" => "p53" })
            .is_ok());
    }

    #[test]
    fn identity_constraint() {
        let mut e = temp_engine("identity");
        e.install_constraint(Constraint::Identity {
            type_name: "protein".into(),
            property: "name".into(),
        })
        .unwrap();
        e.create_node(Some("protein"), props! { "name" => "p53" })
            .unwrap();
        let err = e
            .create_node(Some("protein"), props! { "name" => "p53" })
            .unwrap_err();
        assert!(err.to_string().contains("already taken"));
        assert!(e
            .create_node(Some("protein"), props! {})
            .unwrap_err()
            .to_string()
            .contains("lacks identity"));
    }

    #[test]
    fn indexes_and_lookup() {
        let mut e = temp_engine("index");
        let a = e.create_node(Some("n"), props! { "name" => "x" }).unwrap();
        e.create_index("name").unwrap();
        let b = e.create_node(Some("n"), props! { "name" => "y" }).unwrap();
        assert_eq!(
            e.lookup_by_property("name", &Value::from("x")).unwrap(),
            vec![a]
        );
        assert_eq!(
            e.lookup_by_property("name", &Value::from("y")).unwrap(),
            vec![b]
        );
    }

    #[test]
    fn profile_refusals() {
        let mut e = temp_engine("refuse");
        let a = e.create_node(None, props! {}).unwrap();
        let b = e.create_node(None, props! {}).unwrap();
        assert!(e.k_neighborhood(a, 2).unwrap_err().is_unsupported());
        assert!(e.shortest_path(a, b).unwrap_err().is_unsupported());
        assert!(e.execute_query("x").unwrap_err().is_unsupported());
        assert!(e.reason("", "").unwrap_err().is_unsupported());
    }

    #[test]
    fn persistence() {
        let dir = std::env::temp_dir().join(format!("gdm-hgdb-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b);
        {
            let mut e = HyperGraphDbEngine::open(&dir).unwrap();
            a = e.create_node(Some("x"), props! { "v" => 1 }).unwrap();
            b = e.create_node(Some("x"), props! {}).unwrap();
            let c = e.create_node(Some("x"), props! {}).unwrap();
            e.create_hyperedge("rel", &[a, b, c], props! {}).unwrap();
            e.persist().unwrap();
        }
        {
            let e = HyperGraphDbEngine::open(&dir).unwrap();
            assert_eq!(GraphEngine::node_count(&e), 3);
            assert_eq!(GraphEngine::edge_count(&e), 1);
            assert!(e.adjacent(a, b).unwrap());
            assert_eq!(e.node_attribute(a, "v").unwrap(), Some(Value::from(1)));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summarization() {
        let mut e = temp_engine("summ");
        let a = e.create_node(None, props! { "w" => 2 }).unwrap();
        let b = e.create_node(None, props! { "w" => 4 }).unwrap();
        e.create_edge(a, b, None, props! {}).unwrap();
        assert_eq!(e.summarize(SummaryFunc::Order).unwrap(), Value::Int(2));
        assert_eq!(
            e.summarize(SummaryFunc::PropertyAggregate(
                gdm_algo::summary::Aggregate::Sum,
                "w"
            ))
            .unwrap(),
            Value::Int(6)
        );
    }
}
