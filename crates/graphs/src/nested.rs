//! Nested graphs (hypernodes).
//!
//! "A nested graph is a graph whose nodes can be themselves graphs
//! (called hypernodes)." The paper observes that **no surveyed engine
//! supports them**, yet they are the most expressive structure of
//! Table III: "hypergraphs and attributed graphs can be modeled by
//! nested graphs. In contrast, the multilevel nesting provided by
//! nested graphs cannot be modeled by any of the other structures."
//!
//! [`translate`] makes that claim executable: structure-preserving
//! embeddings of hypergraphs and attributed graphs into nested graphs,
//! with exact inverses (property-tested round-trips live in the
//! integration suite).

use crate::hyper::{AtomId, HyperGraph};
use crate::property::PropertyGraph;
use gdm_core::{
    EdgeId, EdgeRef, GdmError, GraphView, Interner, NodeId, PropertyMap, Result, Symbol, Value,
};

#[derive(Debug, Clone)]
struct NNode {
    label: Symbol,
    props: PropertyMap,
    subgraph: Option<Box<NestedGraph>>,
}

#[derive(Debug, Clone, Copy)]
struct NEdge {
    from: NodeId,
    to: NodeId,
    label: Symbol,
}

/// A directed labeled graph whose nodes may contain subgraphs.
#[derive(Debug, Clone, Default)]
pub struct NestedGraph {
    nodes: Vec<Option<NNode>>,
    edges: Vec<Option<NEdge>>,
    node_count: usize,
    edge_count: usize,
    interner: Interner,
}

impl NestedGraph {
    /// Creates an empty nested graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a (flat) node.
    pub fn add_node(&mut self, label: &str, props: PropertyMap) -> NodeId {
        let sym = self.interner.intern(label);
        let id = NodeId(self.nodes.len() as u64);
        self.nodes.push(Some(NNode {
            label: sym,
            props,
            subgraph: None,
        }));
        self.node_count += 1;
        id
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, label: &str) -> Result<EdgeId> {
        self.node(from)?;
        self.node(to)?;
        let sym = self.interner.intern(label);
        let id = EdgeId(self.edges.len() as u64);
        self.edges.push(Some(NEdge {
            from,
            to,
            label: sym,
        }));
        self.edge_count += 1;
        Ok(id)
    }

    /// Turns `n` into a hypernode by nesting `subgraph` inside it.
    /// Fails if `n` already contains a subgraph.
    pub fn nest(&mut self, n: NodeId, subgraph: NestedGraph) -> Result<()> {
        let node = self.node_mut(n)?;
        if node.subgraph.is_some() {
            return Err(GdmError::InvalidArgument(format!(
                "node {n} is already a hypernode"
            )));
        }
        node.subgraph = Some(Box::new(subgraph));
        Ok(())
    }

    /// Removes and returns the subgraph nested inside `n`.
    pub fn unnest(&mut self, n: NodeId) -> Result<NestedGraph> {
        let node = self.node_mut(n)?;
        node.subgraph
            .take()
            .map(|b| *b)
            .ok_or_else(|| GdmError::InvalidArgument(format!("node {n} is not a hypernode")))
    }

    /// The subgraph inside hypernode `n`, if any.
    pub fn subgraph(&self, n: NodeId) -> Option<&NestedGraph> {
        self.nodes.get(n.index())?.as_ref()?.subgraph.as_deref()
    }

    /// Mutable access to the subgraph inside hypernode `n`.
    pub fn subgraph_mut(&mut self, n: NodeId) -> Option<&mut NestedGraph> {
        self.nodes
            .get_mut(n.index())?
            .as_mut()?
            .subgraph
            .as_deref_mut()
    }

    /// True when node `n` contains a subgraph.
    pub fn is_hypernode(&self, n: NodeId) -> bool {
        self.subgraph(n).is_some()
    }

    /// Node label text.
    pub fn node_label_text(&self, n: NodeId) -> Result<&str> {
        let sym = self.node(n)?.label;
        Ok(self.interner.resolve(sym).expect("interned"))
    }

    /// Node properties.
    pub fn node_properties(&self, n: NodeId) -> Result<&PropertyMap> {
        Ok(&self.node(n)?.props)
    }

    /// Edge descriptor `(from, to, label)`.
    pub fn edge(&self, e: EdgeId) -> Result<(NodeId, NodeId, &str)> {
        let edge = self
            .edges
            .get(e.index())
            .and_then(|x| x.as_ref())
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        Ok((
            edge.from,
            edge.to,
            self.interner.resolve(edge.label).expect("interned"),
        ))
    }

    /// Maximum nesting depth: 1 for a flat graph, 1 + max over
    /// hypernode subgraphs otherwise. An empty graph has depth 0.
    pub fn depth(&self) -> usize {
        let mut max_sub = 0;
        let mut any = false;
        for node in self.nodes.iter().flatten() {
            any = true;
            if let Some(sub) = &node.subgraph {
                max_sub = max_sub.max(sub.depth());
            }
        }
        if any {
            1 + max_sub
        } else {
            0
        }
    }

    /// Total nodes including all nesting levels.
    pub fn total_node_count(&self) -> usize {
        self.node_count
            + self
                .nodes
                .iter()
                .flatten()
                .filter_map(|n| n.subgraph.as_ref())
                .map(|s| s.total_node_count())
                .sum::<usize>()
    }

    /// Finds nodes (at this level) by label.
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        let Some(sym) = self.interner.get(label) else {
            return Vec::new();
        };
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                n.as_ref()
                    .filter(|d| d.label == sym)
                    .map(|_| NodeId(i as u64))
            })
            .collect()
    }

    /// Looks up an existing label's symbol.
    pub fn label_symbol(&self, label: &str) -> Option<Symbol> {
        self.interner.get(label)
    }

    fn node(&self, n: NodeId) -> Result<&NNode> {
        self.nodes
            .get(n.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| GdmError::NotFound(format!("node {n}")))
    }

    fn node_mut(&mut self, n: NodeId) -> Result<&mut NNode> {
        self.nodes
            .get_mut(n.index())
            .and_then(Option::as_mut)
            .ok_or_else(|| GdmError::NotFound(format!("node {n}")))
    }
}

impl GraphView for NestedGraph {
    fn is_directed(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(Option::is_some)
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        for (i, slot) in self.nodes.iter().enumerate() {
            if slot.is_some() {
                f(NodeId(i as u64));
            }
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        for (i, edge) in self.edges.iter().enumerate() {
            if let Some(e) = edge {
                if e.from == n {
                    f(EdgeRef {
                        id: EdgeId(i as u64),
                        from: n,
                        to: e.to,
                        label: Some(e.label),
                    });
                }
            }
        }
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        for (i, edge) in self.edges.iter().enumerate() {
            if let Some(e) = edge {
                if e.to == n {
                    f(EdgeRef {
                        id: EdgeId(i as u64),
                        from: n,
                        to: e.from,
                        label: Some(e.label),
                    });
                }
            }
        }
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.interner.resolve(sym)
    }
}

/// Executable versions of the paper's modeling claims.
pub mod translate {
    use super::*;

    const MEMBER_LABEL: &str = "member";
    const ATTR_LABEL: &str = "attr";
    const EDGE_PREFIX: &str = "edge:";
    const NODE_PREFIX: &str = "node:";
    const LINK_PREFIX: &str = "link:";

    /// Embeds a hypergraph into a nested graph: every atom becomes a
    /// top-level node; every link becomes a *hypernode* whose subgraph
    /// holds one `member` node per target position, recording the
    /// target's atom id and tuple position.
    pub fn hyper_to_nested(h: &HyperGraph) -> NestedGraph {
        let mut g = NestedGraph::new();
        let mut map: Vec<(AtomId, NodeId)> = Vec::new();
        for atom in h.node_ids() {
            let label = format!("{NODE_PREFIX}{}", h.label(atom_ok(h, atom)).unwrap_or(""));
            let mut props = PropertyMap::new();
            props.set("atom", atom.raw() as i64);
            let n = g.add_node(&label, props);
            map.push((atom, n));
        }
        for link in h.link_ids() {
            let label = format!("{LINK_PREFIX}{}", h.label(atom_ok(h, link)).unwrap_or(""));
            let mut props = PropertyMap::new();
            props.set("atom", link.raw() as i64);
            let n = g.add_node(&label, props);
            map.push((link, n));
        }
        // Fill each link hypernode's subgraph with its member tuple.
        for link in h.link_ids() {
            let targets = h.targets(link).expect("live link");
            let mut sub = NestedGraph::new();
            for (pos, t) in targets.iter().enumerate() {
                let mut props = PropertyMap::new();
                props.set("target", t.raw() as i64);
                props.set("pos", pos as i64);
                sub.add_node(MEMBER_LABEL, props);
            }
            let n = lookup(&map, link);
            g.nest(n, sub).expect("fresh hypernode");
        }
        g
    }

    /// Inverse of [`hyper_to_nested`]; fails when the nested graph does
    /// not follow the embedding shape.
    pub fn nested_to_hyper(g: &NestedGraph) -> Result<HyperGraph> {
        let mut h = HyperGraph::new();
        let mut map: Vec<(i64, AtomId)> = Vec::new();
        let mut links: Vec<(NodeId, i64, String)> = Vec::new();
        for n in g.node_ids() {
            let label = g.node_label_text(n)?.to_owned();
            let orig = g
                .node_properties(n)?
                .get("atom")
                .and_then(Value::as_int)
                .ok_or_else(|| GdmError::InvalidArgument("missing atom id".into()))?;
            if let Some(node_label) = label.strip_prefix(NODE_PREFIX) {
                let atom = h.add_node(node_label, PropertyMap::new());
                map.push((orig, atom));
            } else if let Some(link_label) = label.strip_prefix(LINK_PREFIX) {
                links.push((n, orig, link_label.to_owned()));
            } else {
                return Err(GdmError::InvalidArgument(format!(
                    "node {n} does not follow the embedding shape"
                )));
            }
        }
        // Links may target other links; resolve in passes.
        let mut pending = links;
        while !pending.is_empty() {
            let before = pending.len();
            let mut still = Vec::new();
            for (n, orig, label) in pending {
                let sub = g
                    .subgraph(n)
                    .ok_or_else(|| GdmError::InvalidArgument("link without subgraph".into()))?;
                let mut members: Vec<(i64, i64)> = Vec::new();
                let mut ok = true;
                for m in sub.node_ids() {
                    let props = sub.node_properties(m)?;
                    let target = props.get("target").and_then(Value::as_int);
                    let pos = props.get("pos").and_then(Value::as_int);
                    match (target, pos) {
                        (Some(t), Some(p)) => members.push((p, t)),
                        _ => {
                            return Err(GdmError::InvalidArgument(
                                "member without target/pos".into(),
                            ))
                        }
                    }
                }
                members.sort_unstable();
                let targets: Option<Vec<AtomId>> = members
                    .iter()
                    .map(|(_, t)| map.iter().find(|(o, _)| o == t).map(|(_, a)| *a))
                    .collect();
                match targets {
                    Some(ts) => {
                        let atom = h.add_link(&label, &ts, PropertyMap::new())?;
                        map.push((orig, atom));
                    }
                    None => {
                        ok = false;
                    }
                }
                if !ok {
                    still.push((n, orig, label));
                }
            }
            if still.len() == before {
                return Err(GdmError::InvalidArgument(
                    "unresolvable link targets (cycle or dangling reference)".into(),
                ));
            }
            pending = still;
        }
        Ok(h)
    }

    /// Embeds an attributed graph into a nested graph: nodes become
    /// hypernodes whose subgraphs hold one `attr` node per attribute;
    /// attributed edges are reified as hypernodes wired with `from` /
    /// `to` edges.
    pub fn property_to_nested(p: &PropertyGraph) -> NestedGraph {
        let mut g = NestedGraph::new();
        let mut map: Vec<(NodeId, NodeId)> = Vec::new();
        let mut ids: Vec<NodeId> = Vec::new();
        p.visit_nodes(&mut |n| ids.push(n));
        for n in ids {
            let label = format!("{NODE_PREFIX}{}", p.node_label_text(n).expect("live"));
            let node = g.add_node(&label, PropertyMap::new());
            let sub = attrs_subgraph(p.node_properties(n).expect("live"));
            g.nest(node, sub).expect("fresh");
            map.push((n, node));
        }
        for e in p.edge_ids() {
            let (from, to) = p.edge_endpoints(e).expect("live");
            let label = format!("{EDGE_PREFIX}{}", p.edge_label_text(e).expect("live"));
            let enode = g.add_node(&label, PropertyMap::new());
            let sub = attrs_subgraph(p.edge_properties(e).expect("live"));
            g.nest(enode, sub).expect("fresh");
            g.add_edge(lookup_node(&map, from), enode, "from")
                .expect("live");
            g.add_edge(enode, lookup_node(&map, to), "to")
                .expect("live");
        }
        g
    }

    /// Inverse of [`property_to_nested`].
    pub fn nested_to_property(g: &NestedGraph) -> Result<PropertyGraph> {
        let mut p = PropertyGraph::new();
        let mut map: Vec<(NodeId, NodeId)> = Vec::new();
        let mut edge_nodes: Vec<(NodeId, String)> = Vec::new();
        for n in g.node_ids() {
            let label = g.node_label_text(n)?.to_owned();
            if let Some(node_label) = label.strip_prefix(NODE_PREFIX) {
                let sub = g
                    .subgraph(n)
                    .ok_or_else(|| GdmError::InvalidArgument("node without attrs".into()))?;
                let node = p.add_node(node_label, subgraph_attrs(sub)?);
                map.push((n, node));
            } else if let Some(edge_label) = label.strip_prefix(EDGE_PREFIX) {
                edge_nodes.push((n, edge_label.to_owned()));
            } else {
                return Err(GdmError::InvalidArgument(format!(
                    "node {n} does not follow the embedding shape"
                )));
            }
        }
        for (enode, label) in edge_nodes {
            let mut from = None;
            let mut to = None;
            g.visit_in_edges(enode, &mut |e| {
                // in_edges orient from == enode; e.to is the neighbor.
                if g.label_text(e.label.expect("labeled")) == Some("from") {
                    from = Some(e.to);
                }
            });
            g.visit_out_edges(enode, &mut |e| {
                if g.label_text(e.label.expect("labeled")) == Some("to") {
                    to = Some(e.to);
                }
            });
            let (from, to) = match (from, to) {
                (Some(f), Some(t)) => (f, t),
                _ => {
                    return Err(GdmError::InvalidArgument(
                        "reified edge missing endpoints".into(),
                    ))
                }
            };
            let sub = g
                .subgraph(enode)
                .ok_or_else(|| GdmError::InvalidArgument("edge without attrs".into()))?;
            let props = subgraph_attrs(sub)?;
            p.add_edge(
                lookup_node(&map, from),
                lookup_node(&map, to),
                &label,
                props,
            )?;
        }
        Ok(p)
    }

    fn attrs_subgraph(props: &PropertyMap) -> NestedGraph {
        let mut sub = NestedGraph::new();
        for (k, v) in props {
            let mut ap = PropertyMap::new();
            ap.set("key", k.as_str());
            ap.set("value", v.clone());
            sub.add_node(ATTR_LABEL, ap);
        }
        sub
    }

    fn subgraph_attrs(sub: &NestedGraph) -> Result<PropertyMap> {
        let mut props = PropertyMap::new();
        for a in sub.node_ids() {
            let ap = sub.node_properties(a)?;
            let key = ap
                .get("key")
                .and_then(|v| v.as_str().map(str::to_owned))
                .ok_or_else(|| GdmError::InvalidArgument("attr without key".into()))?;
            let value = ap
                .get("value")
                .cloned()
                .ok_or_else(|| GdmError::InvalidArgument("attr without value".into()))?;
            props.set(key, value);
        }
        Ok(props)
    }

    fn lookup(map: &[(AtomId, NodeId)], atom: AtomId) -> NodeId {
        map.iter().find(|(a, _)| *a == atom).expect("mapped").1
    }

    fn lookup_node(map: &[(NodeId, NodeId)], n: NodeId) -> NodeId {
        map.iter().find(|(a, _)| *a == n).expect("mapped").1
    }

    fn atom_ok(_h: &HyperGraph, a: AtomId) -> AtomId {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;

    #[test]
    fn flat_graph_depth_one() {
        let mut g = NestedGraph::new();
        let a = g.add_node("a", props! {});
        let b = g.add_node("b", props! {});
        g.add_edge(a, b, "rel").unwrap();
        assert_eq!(g.depth(), 1);
        assert_eq!(g.total_node_count(), 2);
        assert!(!g.is_hypernode(a));
    }

    #[test]
    fn nesting_and_unnesting() {
        let mut inner = NestedGraph::new();
        inner.add_node("x", props! {});
        let mut g = NestedGraph::new();
        let h = g.add_node("container", props! {});
        g.nest(h, inner).unwrap();
        assert!(g.is_hypernode(h));
        assert_eq!(g.depth(), 2);
        assert_eq!(g.total_node_count(), 2);
        // Double nesting on the same node is rejected.
        assert!(g.nest(h, NestedGraph::new()).is_err());
        let back = g.unnest(h).unwrap();
        assert_eq!(back.node_count(), 1);
        assert!(!g.is_hypernode(h));
        assert!(g.unnest(h).is_err());
    }

    #[test]
    fn multilevel_nesting() {
        // The structure no other model of Table III can express.
        let mut level3 = NestedGraph::new();
        level3.add_node("leaf", props! {});
        let mut level2 = NestedGraph::new();
        let h2 = level2.add_node("mid", props! {});
        level2.nest(h2, level3).unwrap();
        let mut level1 = NestedGraph::new();
        let h1 = level1.add_node("top", props! {});
        level1.nest(h1, level2).unwrap();
        assert_eq!(level1.depth(), 3);
        assert_eq!(level1.total_node_count(), 3);
    }

    #[test]
    fn hyper_round_trip() {
        let mut h = HyperGraph::new();
        let a = h.add_node("gene", props! {});
        let b = h.add_node("gene", props! {});
        let c = h.add_node("protein", props! {});
        let l = h.add_link("regulates", &[a, b, c], props! {}).unwrap();
        h.add_link("annotated", &[l, a], props! {}).unwrap(); // link on link
        let nested = translate::hyper_to_nested(&h);
        assert_eq!(nested.depth(), 2);
        let back = translate::nested_to_hyper(&nested).unwrap();
        assert_eq!(back.node_count(), h.node_count());
        assert_eq!(back.link_count(), h.link_count());
        // The ternary link structure survives.
        let links = back.link_ids();
        let arities: Vec<usize> = links.iter().map(|&l| back.arity(l).unwrap()).collect();
        assert!(arities.contains(&3) && arities.contains(&2));
    }

    #[test]
    fn property_round_trip() {
        let mut p = PropertyGraph::new();
        let a = p.add_node("person", props! { "name" => "ada", "age" => 36 });
        let b = p.add_node("person", props! { "name" => "bob" });
        p.add_edge(a, b, "knows", props! { "since" => 1840 })
            .unwrap();
        let nested = translate::property_to_nested(&p);
        assert_eq!(nested.depth(), 2);
        let back = translate::nested_to_property(&nested).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        let people = back.nodes_with_label("person");
        assert_eq!(people.len(), 2);
        let names: Vec<Option<Value>> = people
            .iter()
            .map(|&n| gdm_core::AttributedView::node_property(&back, n, "name"))
            .collect();
        assert!(names.contains(&Some(Value::from("ada"))));
        let e = back.edge_ids()[0];
        assert_eq!(
            back.edge_properties(e).unwrap().get("since"),
            Some(&Value::from(1840))
        );
    }

    #[test]
    fn malformed_embeddings_are_rejected() {
        let mut g = NestedGraph::new();
        g.add_node("unprefixed", props! {});
        assert!(translate::nested_to_hyper(&g).is_err());
        assert!(translate::nested_to_property(&g).is_err());
    }

    #[test]
    fn graph_view_on_top_level() {
        let mut g = NestedGraph::new();
        let a = g.add_node("a", props! {});
        let b = g.add_node("b", props! {});
        g.add_edge(a, b, "r").unwrap();
        assert_eq!(g.out_neighbors(a), vec![b]);
        assert_eq!(g.in_degree(b), 1);
    }
}
