//! # gdm-graphs
//!
//! The graph data structures of the paper's Table III, plus the two
//! structures its engines additionally need:
//!
//! * [`simple::SimpleGraph`] — flat graphs: nodes and binary edges,
//!   directed or undirected, optionally labeled (Filament, G-Store,
//!   VertexDB model their data this way),
//! * [`property::PropertyGraph`] — attributed directed multigraphs
//!   (DEX, InfiniteGraph, Neo4j, Sones),
//! * [`hyper::HyperGraph`] — HyperGraphDB-style atom spaces where a
//!   link may target any atoms, *including other links* (the paper's
//!   "edges between edges are possible"),
//! * [`nested::NestedGraph`] — graphs whose nodes may contain whole
//!   subgraphs (hypernodes). No surveyed engine supports these; the
//!   paper's modeling claim — hypergraphs and attributed graphs *can*
//!   be modeled by nested graphs, but not vice versa — is implemented
//!   as executable translations in [`nested::translate`],
//! * [`rdf::RdfGraph`] — triple storage with SPO/POS/OSP indexes
//!   (AllegroGraph),
//! * [`partitioned::PartitionedGraph`] — a property graph with an
//!   explicit partition assignment and remote-hop accounting, the
//!   simulation stand-in for InfiniteGraph's distributed store.
//!
//! All structures expose [`gdm_core::GraphView`], so every essential
//! query in `gdm-algo` runs against every model. [`graphml`] adds the
//! exchange format the paper notes the 2012 systems lacked.

pub mod graphml;
pub mod hyper;
pub mod nested;
pub mod partitioned;
pub mod property;
pub mod rdf;
pub mod simple;
pub mod views;

pub use hyper::{AtomId, HyperGraph};
pub use nested::NestedGraph;
pub use partitioned::PartitionedGraph;
pub use property::PropertyGraph;
pub use rdf::{RdfGraph, Term};
pub use simple::SimpleGraph;
