//! Supplementary view-trait implementations.
//!
//! The essential-query algorithms in `gdm-algo` are generic over
//! [`AttributedView`] (pattern matching) and [`WeightedView`]
//! (weighted shortest paths). `PropertyGraph` implements both in its
//! own module; the remaining structures pick up their implementations
//! here so every model of Table III can run every essential query.

use crate::hyper::{AtomId, TwoSection};
use crate::nested::NestedGraph;
use crate::partitioned::PartitionedGraph;
use crate::rdf::RdfGraph;
use crate::simple::SimpleGraph;
use gdm_core::{AttributedView, EdgeId, NodeId, Symbol, Value, WeightedView};

impl AttributedView for SimpleGraph {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        // SimpleGraph stores labels as interned symbols internally;
        // surface them through the label text lookup.
        self.node_label(n).and_then(|text| self.label_symbol(text))
    }

    fn node_property(&self, _n: NodeId, _key: &str) -> Option<Value> {
        None // simple graphs carry no attributes (Table III)
    }

    fn edge_property(&self, _e: EdgeId, _key: &str) -> Option<Value> {
        None
    }
}

impl WeightedView for SimpleGraph {}

impl AttributedView for NestedGraph {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        let text = self.node_label_text(n).ok()?;
        self.label_symbol(text)
    }

    fn node_property(&self, n: NodeId, key: &str) -> Option<Value> {
        self.node_properties(n).ok()?.get(key).cloned()
    }

    fn edge_property(&self, _e: EdgeId, _key: &str) -> Option<Value> {
        None
    }

    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        // Without this hook a frozen snapshot would keep the labels but
        // silently drop the attributes `node_property` can see.
        if let Ok(props) = self.node_properties(n) {
            for (k, v) in props {
                f(k, v);
            }
        }
    }
}

impl WeightedView for NestedGraph {}

impl AttributedView for TwoSection<'_> {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        let h = self.hypergraph();
        let text = h.label(AtomId(n.raw())).ok()?;
        h.label_symbol(text)
    }

    fn node_property(&self, n: NodeId, key: &str) -> Option<Value> {
        self.hypergraph().property(AtomId(n.raw()), key).cloned()
    }

    fn edge_property(&self, e: EdgeId, key: &str) -> Option<Value> {
        // Edge ids in the 2-section are link atom ids.
        self.hypergraph().property(AtomId(e.raw()), key).cloned()
    }

    // Enumeration hooks: HyperGraphDB and Sones freeze this view for
    // their serving snapshots, so without these the snapshot would
    // carry labels but no attributes — a property predicate that
    // matches live data would silently return nothing when served.
    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(props) = self.hypergraph().properties(AtomId(n.raw())) {
            for (k, v) in props {
                f(k, v);
            }
        }
    }

    fn visit_edge_properties(&self, e: EdgeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(props) = self.hypergraph().properties(AtomId(e.raw())) {
            for (k, v) in props {
                f(k, v);
            }
        }
    }
}

impl WeightedView for TwoSection<'_> {}

impl AttributedView for RdfGraph {
    // This profile *legitimately* lacks properties, as opposed to a
    // view that loses them: RDF expresses every value as a triple with
    // a literal object, and literals are nodes of this view, so a
    // frozen snapshot preserves exactly what the live view exposes.
    // (Contrast `TwoSection`, whose atoms do carry attributes and
    // therefore needs the enumeration hooks above.)
    fn node_label(&self, _n: NodeId) -> Option<Symbol> {
        None // RDF terms are identities, not typed labels
    }

    fn node_property(&self, _n: NodeId, _key: &str) -> Option<Value> {
        None // attribute access happens at the triple level (SPARQL)
    }

    fn edge_property(&self, _e: EdgeId, _key: &str) -> Option<Value> {
        None
    }
}

impl WeightedView for RdfGraph {}

impl WeightedView for PartitionedGraph {
    fn edge_weight(&self, e: &gdm_core::EdgeRef) -> f64 {
        self.inner().edge_weight(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;
    use gdm_core::GraphView;

    #[test]
    fn simple_graph_attributed_view() {
        let mut g = SimpleGraph::directed();
        let a = g.add_labeled_node("city");
        let view: &dyn AttributedView = &g;
        let sym = view.node_label(a).unwrap();
        assert_eq!(g.label_text(sym), Some("city"));
        assert_eq!(view.node_property(a, "x"), None);
    }

    #[test]
    fn nested_graph_attributed_view() {
        let mut g = NestedGraph::new();
        let a = g.add_node("box", props! { "x" => 7 });
        let view: &dyn AttributedView = &g;
        let sym = view.node_label(a).unwrap();
        assert_eq!(g.label_text(sym), Some("box"));
        assert_eq!(view.node_property(a, "x"), Some(Value::from(7)));
    }

    #[test]
    fn two_section_attributed_view() {
        let mut h = crate::hyper::HyperGraph::new();
        let a = h.add_node("gene", props! { "name" => "tp53" });
        let b = h.add_node("gene", props! {});
        h.add_link("binds", &[a, b], props! { "score" => 0.8 })
            .unwrap();
        let view = h.two_section();
        let n = NodeId(a.raw());
        let sym = AttributedView::node_label(&view, n).unwrap();
        assert_eq!(GraphView::label_text(&view, sym), Some("gene"));
        assert_eq!(
            AttributedView::node_property(&view, n, "name"),
            Some(Value::from("tp53"))
        );
        let e = view.out_edges(n)[0];
        assert_eq!(
            AttributedView::edge_property(&view, e.id, "score"),
            Some(Value::from(0.8))
        );
    }
}
