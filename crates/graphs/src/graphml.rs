//! GraphML import/export for property graphs.
//!
//! The paper: "An important feature ... is the support to import and
//! export data in different data formats. Although there exists some
//! data formats for encoding graphs (e.g., GraphML and TGV) none of
//! them has been selected as the standard one. This issue is
//! particularly relevant for data exchange and sharing." This module
//! supplies the exchange path the 2012 systems lacked: a GraphML
//! subset (`<key>`, `<node>`, `<edge>`, `<data>`) sufficient to round-
//! trip every [`PropertyGraph`], written and parsed in-tree (the
//! dependency policy of DESIGN.md §6 — no XML crate).
//!
//! Supported subset: one `<graph>` per document, `directed`
//! edgedefault, attribute keys declared with `attr.name` and
//! `attr.type ∈ {string, int, long, double, float, boolean}`, node
//! labels carried in the reserved key `labelV`, edge labels in
//! `labelE` (the convention several GraphML producers use).

use crate::property::PropertyGraph;
use gdm_core::{GdmError, GraphView, NodeId, PropertyMap, Result, Value};
use std::collections::HashMap;
use std::fmt::Write as _;

const LABEL_V: &str = "labelV";
const LABEL_E: &str = "labelE";

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn type_name(v: &Value) -> Option<&'static str> {
    match v {
        Value::Bool(_) => Some("boolean"),
        Value::Int(_) => Some("long"),
        Value::Float(_) => Some("double"),
        Value::Str(_) => Some("string"),
        // Lists and nulls are outside the GraphML attribute model.
        Value::Null | Value::List(_) => None,
    }
}

/// Serializes `g` as a GraphML document. Properties holding lists or
/// nulls are rejected (outside the GraphML attribute model).
pub fn export(g: &PropertyGraph) -> Result<String> {
    // Collect attribute keys and their types from the data.
    let mut node_keys: HashMap<String, &'static str> = HashMap::new();
    let mut edge_keys: HashMap<String, &'static str> = HashMap::new();
    let mut nodes = Vec::new();
    g.visit_nodes(&mut |n| nodes.push(n));
    let register = |keys: &mut HashMap<String, &'static str>, props: &PropertyMap| -> Result<()> {
        for (k, v) in props {
            let t = type_name(v).ok_or_else(|| {
                GdmError::InvalidArgument(format!(
                    "property {k:?} has type {}, not representable in GraphML",
                    v.type_name()
                ))
            })?;
            match keys.get(k.as_str()) {
                Some(existing) if *existing != t => {
                    // Widen mixed int/double to double; otherwise string.
                    let widened = if (*existing == "long" && t == "double")
                        || (*existing == "double" && t == "long")
                    {
                        "double"
                    } else {
                        "string"
                    };
                    keys.insert(k.clone(), widened);
                }
                Some(_) => {}
                None => {
                    keys.insert(k.clone(), t);
                }
            }
        }
        Ok(())
    };
    for &n in &nodes {
        register(&mut node_keys, g.node_properties(n)?)?;
    }
    for e in g.edge_ids() {
        register(&mut edge_keys, g.edge_properties(e)?)?;
    }

    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n");
    let _ = writeln!(
        out,
        "  <key id=\"{LABEL_V}\" for=\"node\" attr.name=\"{LABEL_V}\" attr.type=\"string\"/>"
    );
    let _ = writeln!(
        out,
        "  <key id=\"{LABEL_E}\" for=\"edge\" attr.name=\"{LABEL_E}\" attr.type=\"string\"/>"
    );
    let mut sorted_node_keys: Vec<_> = node_keys.iter().collect();
    sorted_node_keys.sort();
    for (k, t) in &sorted_node_keys {
        let _ = writeln!(
            out,
            "  <key id=\"n_{k}\" for=\"node\" attr.name=\"{}\" attr.type=\"{t}\"/>",
            xml_escape(k)
        );
    }
    let mut sorted_edge_keys: Vec<_> = edge_keys.iter().collect();
    sorted_edge_keys.sort();
    for (k, t) in &sorted_edge_keys {
        let _ = writeln!(
            out,
            "  <key id=\"e_{k}\" for=\"edge\" attr.name=\"{}\" attr.type=\"{t}\"/>",
            xml_escape(k)
        );
    }
    out.push_str("  <graph id=\"G\" edgedefault=\"directed\">\n");
    for &n in &nodes {
        let _ = writeln!(out, "    <node id=\"n{}\">", n.raw());
        let _ = writeln!(
            out,
            "      <data key=\"{LABEL_V}\">{}</data>",
            xml_escape(g.node_label_text(n)?)
        );
        for (k, v) in g.node_properties(n)? {
            let _ = writeln!(
                out,
                "      <data key=\"n_{}\">{}</data>",
                xml_escape(k),
                xml_escape(&v.to_string())
            );
        }
        out.push_str("    </node>\n");
    }
    for e in g.edge_ids() {
        let (from, to) = g.edge_endpoints(e)?;
        let _ = writeln!(
            out,
            "    <edge id=\"e{}\" source=\"n{}\" target=\"n{}\">",
            e.raw(),
            from.raw(),
            to.raw()
        );
        let _ = writeln!(
            out,
            "      <data key=\"{LABEL_E}\">{}</data>",
            xml_escape(g.edge_label_text(e)?)
        );
        for (k, v) in g.edge_properties(e)? {
            let _ = writeln!(
                out,
                "      <data key=\"e_{}\">{}</data>",
                xml_escape(k),
                xml_escape(&v.to_string())
            );
        }
        out.push_str("    </edge>\n");
    }
    out.push_str("  </graph>\n</graphml>\n");
    Ok(out)
}

// ---------------------------------------------------------------------
// Import (a small event parser for the subset we emit / accept)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Event {
    Open(String, HashMap<String, String>),
    Close(String),
    /// Self-closing tag.
    Empty(String, HashMap<String, String>),
    Text(String),
}

fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn parse_events(src: &str) -> Result<Vec<Event>> {
    let mut events = Vec::new();
    let mut rest = src;
    while let Some(lt) = rest.find('<') {
        let text = rest[..lt].trim();
        if !text.is_empty() {
            events.push(Event::Text(xml_unescape(text)));
        }
        let Some(gt) = rest[lt..].find('>') else {
            return Err(GdmError::Parse {
                dialect: "graphml",
                message: "unterminated tag".into(),
                position: lt,
            });
        };
        let tag = &rest[lt + 1..lt + gt];
        rest = &rest[lt + gt + 1..];
        if tag.starts_with('?') || tag.starts_with('!') {
            continue; // declaration / comment
        }
        if let Some(name) = tag.strip_prefix('/') {
            events.push(Event::Close(name.trim().to_owned()));
            continue;
        }
        let self_closing = tag.ends_with('/');
        let tag = tag.trim_end_matches('/');
        let mut parts = tag.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or_default().to_owned();
        let mut attrs = HashMap::new();
        if let Some(attr_text) = parts.next() {
            let mut remaining = attr_text.trim();
            while !remaining.is_empty() {
                let Some(eq) = remaining.find('=') else { break };
                let key = remaining[..eq].trim().to_owned();
                let after = remaining[eq + 1..].trim_start();
                let Some(quote) = after.chars().next() else {
                    break;
                };
                if quote != '"' && quote != '\'' {
                    return Err(GdmError::Parse {
                        dialect: "graphml",
                        message: format!("unquoted attribute value for {key}"),
                        position: 0,
                    });
                }
                let Some(end) = after[1..].find(quote) else {
                    return Err(GdmError::Parse {
                        dialect: "graphml",
                        message: format!("unterminated attribute value for {key}"),
                        position: 0,
                    });
                };
                attrs.insert(key, xml_unescape(&after[1..1 + end]));
                remaining = after[end + 2..].trim_start();
            }
        }
        if self_closing {
            events.push(Event::Empty(name, attrs));
        } else {
            events.push(Event::Open(name, attrs));
        }
    }
    Ok(events)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum KeyType {
    Str,
    Int,
    Float,
    Bool,
}

fn parse_value(t: KeyType, text: &str) -> Result<Value> {
    Ok(match t {
        KeyType::Str => Value::Str(text.to_owned()),
        KeyType::Int => Value::Int(text.trim().parse().map_err(|_| GdmError::Parse {
            dialect: "graphml",
            message: format!("bad integer {text:?}"),
            position: 0,
        })?),
        KeyType::Float => Value::Float(text.trim().parse().map_err(|_| GdmError::Parse {
            dialect: "graphml",
            message: format!("bad float {text:?}"),
            position: 0,
        })?),
        KeyType::Bool => match text.trim() {
            "true" | "1" => Value::Bool(true),
            "false" | "0" => Value::Bool(false),
            other => {
                return Err(GdmError::Parse {
                    dialect: "graphml",
                    message: format!("bad boolean {other:?}"),
                    position: 0,
                })
            }
        },
    })
}

/// Parses a GraphML document (the subset documented on this module)
/// into a [`PropertyGraph`].
pub fn import(src: &str) -> Result<PropertyGraph> {
    let events = parse_events(src)?;
    // key id → (attr.name, type)
    let mut keys: HashMap<String, (String, KeyType)> = HashMap::new();
    let mut g = PropertyGraph::new();
    let mut node_ids: HashMap<String, NodeId> = HashMap::new();

    #[derive(Default)]
    struct Pending {
        xml_id: String,
        source: String,
        target: String,
        is_edge: bool,
        label: Option<String>,
        props: PropertyMap,
    }
    let mut current: Option<Pending> = None;
    let mut current_data_key: Option<String> = None;
    let mut current_text = String::new();

    let finish =
        |g: &mut PropertyGraph, node_ids: &mut HashMap<String, NodeId>, p: Pending| -> Result<()> {
            if p.is_edge {
                let from = *node_ids.get(&p.source).ok_or_else(|| GdmError::Parse {
                    dialect: "graphml",
                    message: format!("edge references unknown node {:?}", p.source),
                    position: 0,
                })?;
                let to = *node_ids.get(&p.target).ok_or_else(|| GdmError::Parse {
                    dialect: "graphml",
                    message: format!("edge references unknown node {:?}", p.target),
                    position: 0,
                })?;
                g.add_edge(from, to, p.label.as_deref().unwrap_or("edge"), p.props)?;
            } else {
                let id = g.add_node(p.label.as_deref().unwrap_or("node"), p.props);
                node_ids.insert(p.xml_id, id);
            }
            Ok(())
        };

    for event in events {
        match event {
            Event::Empty(name, attrs) | Event::Open(name, attrs) if name == "key" => {
                let id = attrs.get("id").cloned().unwrap_or_default();
                let attr_name = attrs
                    .get("attr.name")
                    .cloned()
                    .unwrap_or_else(|| id.clone());
                let t = match attrs.get("attr.type").map(String::as_str) {
                    Some("int") | Some("long") => KeyType::Int,
                    Some("double") | Some("float") => KeyType::Float,
                    Some("boolean") => KeyType::Bool,
                    _ => KeyType::Str,
                };
                keys.insert(id, (attr_name, t));
            }
            Event::Open(name, attrs) if name == "node" || name == "edge" => {
                current = Some(Pending {
                    xml_id: attrs.get("id").cloned().unwrap_or_default(),
                    source: attrs.get("source").cloned().unwrap_or_default(),
                    target: attrs.get("target").cloned().unwrap_or_default(),
                    is_edge: name == "edge",
                    label: None,
                    props: PropertyMap::new(),
                });
            }
            Event::Empty(name, attrs) if name == "node" || name == "edge" => {
                let p = Pending {
                    xml_id: attrs.get("id").cloned().unwrap_or_default(),
                    source: attrs.get("source").cloned().unwrap_or_default(),
                    target: attrs.get("target").cloned().unwrap_or_default(),
                    is_edge: name == "edge",
                    label: None,
                    props: PropertyMap::new(),
                };
                finish(&mut g, &mut node_ids, p)?;
            }
            Event::Close(name) if name == "node" || name == "edge" => {
                if let Some(p) = current.take() {
                    finish(&mut g, &mut node_ids, p)?;
                }
            }
            Event::Open(name, attrs) if name == "data" => {
                current_data_key = attrs.get("key").cloned();
                current_text.clear();
            }
            Event::Text(text) => {
                current_text.push_str(&text);
            }
            Event::Close(name) if name == "data" => {
                let Some(key_id) = current_data_key.take() else {
                    continue;
                };
                let Some(p) = current.as_mut() else { continue };
                if key_id == LABEL_V || key_id == LABEL_E {
                    p.label = Some(current_text.clone());
                    continue;
                }
                let (attr_name, t) = keys
                    .get(&key_id)
                    .cloned()
                    .unwrap_or((key_id.clone(), KeyType::Str));
                p.props.set(attr_name, parse_value(t, &current_text)?);
            }
            _ => {}
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::{props, AttributedView};

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_node("person", props! { "name" => "ada <3", "age" => 36 });
        let b = g.add_node("person", props! { "name" => "bob & co", "score" => 0.5 });
        let c = g.add_node("company", props! { "active" => true });
        g.add_edge(a, b, "knows", props! { "since" => 2001 })
            .unwrap();
        g.add_edge(a, c, "works_at", props! {}).unwrap();
        g
    }

    #[test]
    fn export_emits_wellformed_subset() {
        let xml = export(&sample()).unwrap();
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("edgedefault=\"directed\""));
        assert!(xml.contains("ada &lt;3"), "escaping applied");
        assert!(xml.contains("bob &amp; co"));
        assert!(xml.contains("attr.type=\"long\""));
        assert!(xml.contains("attr.type=\"boolean\""));
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let back = import(&export(&g).unwrap()).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        let people = back.nodes_with_label("person");
        assert_eq!(people.len(), 2);
        let names: Vec<Option<Value>> = people
            .iter()
            .map(|&n| back.node_property(n, "name"))
            .collect();
        assert!(names.contains(&Some(Value::from("ada <3"))));
        assert!(names.contains(&Some(Value::from("bob & co"))));
        let e = back.edge_ids();
        let since: Vec<Option<Value>> = e.iter().map(|&e| back.edge_property(e, "since")).collect();
        assert!(since.contains(&Some(Value::from(2001))));
        // Types survive: int stays int, float float, bool bool.
        let company = back.nodes_with_label("company")[0];
        assert_eq!(
            back.node_property(company, "active"),
            Some(Value::from(true))
        );
    }

    #[test]
    fn imports_foreign_graphml() {
        // A document with formatting quirks: self-closing nodes,
        // unknown keys without declarations, single-quoted attributes.
        let xml = r#"<?xml version='1.0'?>
<graphml>
  <key id="w" for="edge" attr.name="weight" attr.type="double"/>
  <graph id="G" edgedefault="directed">
    <node id="alpha"/>
    <node id="beta">
      <data key="labelV">City</data>
      <data key="undeclared">hello</data>
    </node>
    <edge id="x" source="alpha" target="beta">
      <data key="w">2.5</data>
    </edge>
  </graph>
</graphml>"#;
        let g = import(xml).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.nodes_with_label("City").len(), 1);
        assert_eq!(g.nodes_with_label("node").len(), 1, "default label");
        let e = g.edge_ids()[0];
        assert_eq!(g.edge_property(e, "weight"), Some(Value::from(2.5)));
        let city = g.nodes_with_label("City")[0];
        assert_eq!(
            g.node_property(city, "undeclared"),
            Some(Value::from("hello"))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(import("<graphml><graph><node id='a'").is_err());
        assert!(import(
            "<graphml><graph><edge source='ghost' target='ghost2'></edge></graph></graphml>"
        )
        .is_err());
        let mut g = PropertyGraph::new();
        g.add_node("n", props! { "bad" => Value::List(vec![]) });
        assert!(export(&g).is_err(), "lists are outside the GraphML model");
    }

    #[test]
    fn mixed_numeric_key_types_widen() {
        let mut g = PropertyGraph::new();
        g.add_node("n", props! { "x" => 1 });
        g.add_node("n", props! { "x" => 1.5 });
        let xml = export(&g).unwrap();
        assert!(xml.contains("attr.name=\"x\" attr.type=\"double\""));
        let back = import(&xml).unwrap();
        let nodes = back.nodes_with_label("n");
        let mut values: Vec<f64> = nodes
            .iter()
            .filter_map(|&n| back.node_property(n, "x").and_then(|v| v.as_f64()))
            .collect();
        values.sort_by(f64::total_cmp);
        assert_eq!(values, vec![1.0, 1.5]);
    }
}
