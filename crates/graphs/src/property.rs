//! Attributed (property) graphs.
//!
//! Table III's most featureful row family: directed multigraphs whose
//! nodes and edges carry a type label *and* a set of attributes. The
//! paper singles this out as the distinguishing trait of the current
//! (2012) generation: "the inclusion of attributes for nodes and edges
//! is a particular feature in current proposals ... oriented to improve
//! the speed of retrieval for the data directly related to a given
//! node". DEX, InfiniteGraph, Neo4j, and Sones model data this way.

use gdm_core::{
    AttributedView, EdgeId, EdgeRef, FxHashMap, FxHashSet, GdmError, GraphView, Interner, NodeId,
    PropertyMap, Result, Symbol, Value, WeightedView,
};
use gdm_storage::index::{BTreeIndex, ValueIndex};

#[derive(serde::Serialize, serde::Deserialize)]
struct SnapshotDto {
    nodes: Vec<Option<(String, PropertyMap)>>,
    edges: Vec<Option<(u64, u64, String, PropertyMap)>>,
}

#[derive(Debug, Clone)]
struct NodeData {
    label: Symbol,
    props: PropertyMap,
    out: Vec<(EdgeId, NodeId)>,
    inc: Vec<(EdgeId, NodeId)>,
}

#[derive(Debug, Clone)]
struct EdgeData {
    from: NodeId,
    to: NodeId,
    label: Symbol,
    props: PropertyMap,
}

/// A directed, labeled, attributed multigraph.
#[derive(Debug, Clone)]
pub struct PropertyGraph {
    nodes: Vec<Option<NodeData>>,
    edges: Vec<Option<EdgeData>>,
    node_count: usize,
    edge_count: usize,
    interner: Interner,
    /// label → node ids, the built-in type index every attributed
    /// engine maintains.
    label_index: FxHashMap<Symbol, FxHashSet<u64>>,
    /// key → ordered secondary index over node attribute values,
    /// auto-maintained on every insert/remove/update. Ordered (rather
    /// than hash) so number-family point probes and future range
    /// predicates both route through the same structure.
    prop_indexes: FxHashMap<String, BTreeIndex>,
    /// key → ordered secondary index over *edge* attribute values,
    /// maintained the same way; range probes feed the planner's
    /// edge-range seeding ([`AttributedView::edge_range_candidates`]).
    edge_prop_indexes: FxHashMap<String, BTreeIndex>,
}

impl Default for PropertyGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl PropertyGraph {
    /// Creates an empty property graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            edges: Vec::new(),
            node_count: 0,
            edge_count: 0,
            interner: Interner::new(),
            label_index: FxHashMap::default(),
            prop_indexes: FxHashMap::default(),
            edge_prop_indexes: FxHashMap::default(),
        }
    }

    /// Adds a node with label `label` and attributes `props`.
    pub fn add_node(&mut self, label: &str, props: PropertyMap) -> NodeId {
        let sym = self.interner.intern(label);
        let id = NodeId(self.nodes.len() as u64);
        for (key, value) in &props {
            self.prop_indexes
                .entry(key.to_owned())
                .or_default()
                .insert(value, id.raw());
        }
        self.nodes.push(Some(NodeData {
            label: sym,
            props,
            out: Vec::new(),
            inc: Vec::new(),
        }));
        self.label_index.entry(sym).or_default().insert(id.raw());
        self.node_count += 1;
        id
    }

    /// Adds an edge `from -[label]-> to` with attributes `props`.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: &str,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        self.node_data(from)?;
        self.node_data(to)?;
        let sym = self.interner.intern(label);
        let id = EdgeId(self.edges.len() as u64);
        for (key, value) in &props {
            self.edge_prop_indexes
                .entry(key.to_owned())
                .or_default()
                .insert(value, id.raw());
        }
        self.edges.push(Some(EdgeData {
            from,
            to,
            label: sym,
            props,
        }));
        self.node_mut(from).out.push((id, to));
        self.node_mut(to).inc.push((id, from));
        self.edge_count += 1;
        Ok(id)
    }

    /// Removes edge `e`.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<()> {
        let data = self
            .edges
            .get(e.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        let (from, to) = (data.from, data.to);
        let data = self.edges[e.index()].take().expect("checked");
        for (key, value) in &data.props {
            if let Some(idx) = self.edge_prop_indexes.get_mut(key) {
                idx.remove(value, e.raw());
            }
        }
        self.node_mut(from).out.retain(|(id, _)| *id != e);
        self.node_mut(to).inc.retain(|(id, _)| *id != e);
        self.edge_count -= 1;
        Ok(())
    }

    /// Removes node `n` and all incident edges.
    pub fn remove_node(&mut self, n: NodeId) -> Result<()> {
        let label = self.node_data(n)?.label;
        let incident: Vec<EdgeId> = {
            let d = self.nodes[n.index()].as_ref().expect("checked");
            d.out.iter().chain(d.inc.iter()).map(|(e, _)| *e).collect()
        };
        for e in incident {
            if self.edges.get(e.index()).is_some_and(Option::is_some) {
                self.remove_edge(e)?;
            }
        }
        let data = self.nodes[n.index()].take().expect("checked");
        for (key, value) in &data.props {
            if let Some(idx) = self.prop_indexes.get_mut(key) {
                idx.remove(value, n.raw());
            }
        }
        if let Some(set) = self.label_index.get_mut(&label) {
            set.remove(&n.raw());
        }
        self.node_count -= 1;
        Ok(())
    }

    /// All nodes labeled `label`, ascending by id.
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        let Some(sym) = self.interner.get(label) else {
            return Vec::new();
        };
        let mut ids: Vec<u64> = self
            .label_index
            .get(&sym)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids.into_iter().map(NodeId).collect()
    }

    /// Sets a node attribute; returns the previous value.
    pub fn set_node_property(
        &mut self,
        n: NodeId,
        key: &str,
        value: impl Into<Value>,
    ) -> Result<Option<Value>> {
        self.node_data(n)?;
        let value = value.into();
        let idx = self.prop_indexes.entry(key.to_owned()).or_default();
        idx.insert(&value, n.raw());
        let previous = self.node_mut(n).props.set(key, value);
        if let Some(old) = &previous {
            // `insert` before `remove`: if old == new the pair simply
            // stays put instead of bouncing out and back in.
            let node = self.nodes[n.index()].as_ref().expect("validated node id");
            let current = node.props.get(key).expect("just set");
            if old != current {
                self.prop_indexes
                    .get_mut(key)
                    .expect("just created")
                    .remove(old, n.raw());
            }
        }
        Ok(previous)
    }

    /// All nodes whose attribute `key` is loosely equal to `value`,
    /// ascending by id — answered from the auto-maintained secondary
    /// index, never by scanning.
    pub fn nodes_with_property(&self, key: &str, value: &Value) -> Vec<NodeId> {
        self.prop_indexes
            .get(key)
            .map(|idx| idx.lookup_loose(value))
            .unwrap_or_default()
            .into_iter()
            .map(NodeId)
            .collect()
    }

    /// Distinct attribute keys with at least one indexed pair, sorted —
    /// the keys a planner may probe without scanning.
    pub fn indexed_property_keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self
            .prop_indexes
            .iter()
            .filter(|(_, idx)| !idx.is_empty())
            .map(|(k, _)| k.as_str())
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Sets an edge attribute; returns the previous value.
    pub fn set_edge_property(
        &mut self,
        e: EdgeId,
        key: &str,
        value: impl Into<Value>,
    ) -> Result<Option<Value>> {
        let data = self
            .edges
            .get_mut(e.index())
            .and_then(Option::as_mut)
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        let value = value.into();
        self.edge_prop_indexes
            .entry(key.to_owned())
            .or_default()
            .insert(&value, e.raw());
        let previous = data.props.set(key, value);
        if let Some(old) = &previous {
            // `insert` before `remove`, as in `set_node_property`: an
            // unchanged value stays put instead of bouncing.
            let current = self.edges[e.index()]
                .as_ref()
                .expect("validated edge id")
                .props
                .get(key)
                .expect("just set");
            if old != current {
                self.edge_prop_indexes
                    .get_mut(key)
                    .expect("just created")
                    .remove(old, e.raw());
            }
        }
        Ok(previous)
    }

    /// All attributes of node `n`.
    pub fn node_properties(&self, n: NodeId) -> Result<&PropertyMap> {
        Ok(&self.node_data(n)?.props)
    }

    /// All attributes of edge `e`.
    pub fn edge_properties(&self, e: EdgeId) -> Result<&PropertyMap> {
        self.edges
            .get(e.index())
            .and_then(Option::as_ref)
            .map(|d| &d.props)
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))
    }

    /// Node label text.
    pub fn node_label_text(&self, n: NodeId) -> Result<&str> {
        let sym = self.node_data(n)?.label;
        Ok(self.interner.resolve(sym).expect("interned"))
    }

    /// Edge label text.
    pub fn edge_label_text(&self, e: EdgeId) -> Result<&str> {
        let sym = self
            .edges
            .get(e.index())
            .and_then(Option::as_ref)
            .map(|d| d.label)
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        Ok(self.interner.resolve(sym).expect("interned"))
    }

    /// Edge endpoints `(from, to)`.
    pub fn edge_endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId)> {
        self.edges
            .get(e.index())
            .and_then(Option::as_ref)
            .map(|d| (d.from, d.to))
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))
    }

    /// Interns a label for query construction.
    pub fn intern(&mut self, label: &str) -> Symbol {
        self.interner.intern(label)
    }

    /// Looks up an existing label's symbol.
    pub fn label_symbol(&self, label: &str) -> Option<Symbol> {
        self.interner.get(label)
    }

    /// Every edge id currently live, ascending.
    pub fn edge_ids(&self) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().map(|_| EdgeId(i as u64)))
            .collect()
    }

    /// Distinct node labels in use.
    pub fn labels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .label_index
            .iter()
            .filter(|(_, set)| !set.is_empty())
            .filter_map(|(sym, _)| self.interner.resolve(*sym))
            .collect();
        out.sort_unstable();
        out
    }

    /// Serializes the graph — including tombstoned slots, so node and
    /// edge ids survive a save/load cycle — to a JSON snapshot. The
    /// attributed engines (DEX, InfiniteGraph) persist through this.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let dto = SnapshotDto {
            nodes: self
                .nodes
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|d| {
                        (
                            self.interner.resolve(d.label).expect("interned").to_owned(),
                            d.props.clone(),
                        )
                    })
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|d| {
                        (
                            d.from.raw(),
                            d.to.raw(),
                            self.interner.resolve(d.label).expect("interned").to_owned(),
                            d.props.clone(),
                        )
                    })
                })
                .collect(),
        };
        serde_json::to_vec(&dto).expect("snapshot serialization cannot fail")
    }

    /// Restores a graph from [`PropertyGraph::to_snapshot`] bytes.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self> {
        let dto: SnapshotDto = serde_json::from_slice(bytes)
            .map_err(|e| GdmError::Storage(format!("bad property-graph snapshot: {e}")))?;
        let mut g = PropertyGraph::new();
        for slot in dto.nodes {
            match slot {
                Some((label, props)) => {
                    g.add_node(&label, props);
                }
                None => {
                    let n = g.add_node("__tombstone__", PropertyMap::new());
                    g.remove_node(n)?;
                }
            }
        }
        for slot in dto.edges {
            match slot {
                Some((from, to, label, props)) => {
                    g.add_edge(NodeId(from), NodeId(to), &label, props)?;
                }
                None => {
                    // Consume an edge slot: attach a throwaway self-loop
                    // to any live node, then remove it.
                    let anchor = g
                        .nodes
                        .iter()
                        .position(Option::is_some)
                        .map(|i| NodeId(i as u64))
                        .ok_or_else(|| {
                            GdmError::Storage(
                                "snapshot has edge tombstones but no live nodes".into(),
                            )
                        })?;
                    let e = g.add_edge(anchor, anchor, "__tombstone__", PropertyMap::new())?;
                    g.remove_edge(e)?;
                }
            }
        }
        Ok(g)
    }

    fn node_data(&self, n: NodeId) -> Result<&NodeData> {
        self.nodes
            .get(n.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| GdmError::NotFound(format!("node {n}")))
    }

    fn node_mut(&mut self, n: NodeId) -> &mut NodeData {
        self.nodes[n.index()].as_mut().expect("validated node id")
    }
}

impl GraphView for PropertyGraph {
    fn is_directed(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(Option::is_some)
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        for (i, slot) in self.nodes.iter().enumerate() {
            if slot.is_some() {
                f(NodeId(i as u64));
            }
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(Some(data)) = self.nodes.get(n.index()) else {
            return;
        };
        for &(e, other) in &data.out {
            let label = self.edges[e.index()].as_ref().map(|d| d.label);
            f(EdgeRef {
                id: e,
                from: n,
                to: other,
                label,
            });
        }
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(Some(data)) = self.nodes.get(n.index()) else {
            return;
        };
        for &(e, other) in &data.inc {
            let label = self.edges[e.index()].as_ref().map(|d| d.label);
            f(EdgeRef {
                id: e,
                from: n,
                to: other,
                label,
            });
        }
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.interner.resolve(sym)
    }
}

impl AttributedView for PropertyGraph {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        self.nodes.get(n.index())?.as_ref().map(|d| d.label)
    }

    fn node_property(&self, n: NodeId, key: &str) -> Option<Value> {
        self.nodes.get(n.index())?.as_ref()?.props.get(key).cloned()
    }

    fn edge_property(&self, e: EdgeId, key: &str) -> Option<Value> {
        self.edges.get(e.index())?.as_ref()?.props.get(key).cloned()
    }

    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(Some(data)) = self.nodes.get(n.index()) {
            for (k, v) in &data.props {
                f(k, v);
            }
        }
    }

    fn visit_edge_properties(&self, e: EdgeId, f: &mut dyn FnMut(&str, &Value)) {
        if let Some(Some(data)) = self.edges.get(e.index()) {
            for (k, v) in &data.props {
                f(k, v);
            }
        }
    }

    /// Index-backed candidate enumeration: seed from the smallest of
    /// the label set and the per-key value-index probes, then verify
    /// the remaining constraints per member. Never scans.
    fn candidates(&self, label: Option<&str>, props: &[(String, Value)]) -> Vec<NodeId> {
        if label.is_none() && props.is_empty() {
            return self.node_ids();
        }
        // An unknown label or a never-seen key means no node matches.
        let label_sym = match label {
            Some(text) => match self.interner.get(text) {
                Some(sym) => Some(sym),
                None => return Vec::new(),
            },
            None => None,
        };
        let mut seed: Option<Vec<u64>> = label_sym.map(|sym| {
            let mut ids: Vec<u64> = self
                .label_index
                .get(&sym)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            ids.sort_unstable();
            ids
        });
        for (key, value) in props {
            let ids = self
                .prop_indexes
                .get(key)
                .map(|idx| idx.lookup_loose(value))
                .unwrap_or_default();
            if seed.as_ref().is_none_or(|s| ids.len() < s.len()) {
                seed = Some(ids);
            }
        }
        let seed = seed.expect("at least one constraint");
        seed.into_iter()
            .map(NodeId)
            .filter(|&n| {
                let Some(Some(data)) = self.nodes.get(n.index()) else {
                    return false;
                };
                if label_sym.is_some_and(|sym| data.label != sym) {
                    return false;
                }
                props
                    .iter()
                    .all(|(key, want)| data.props.get(key).is_some_and(|got| got.loose_eq(want)))
            })
            .collect()
    }

    fn candidate_estimate(&self, label: Option<&str>, props: &[(String, Value)]) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut shrink = |n: usize| best = Some(best.map_or(n, |b| b.min(n)));
        if let Some(text) = label {
            shrink(
                self.interner
                    .get(text)
                    .and_then(|sym| self.label_index.get(&sym))
                    .map_or(0, FxHashSet::len),
            );
        }
        for (key, value) in props {
            shrink(
                self.prop_indexes
                    .get(key)
                    .map_or(0, |idx| idx.lookup_loose(value).len()),
            );
        }
        best
    }

    /// Range probes route through the same ordered secondary indexes
    /// as point probes; [`ValueIndex::range`] already returns ids
    /// ascending and deduplicated.
    fn range_candidates(
        &self,
        key: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<NodeId>> {
        let idx = self.prop_indexes.get(key)?;
        idx.range(low, high)
            .ok()
            .map(|ids| ids.into_iter().map(NodeId).collect())
    }

    /// Edge-attribute range probes route through the edge secondary
    /// indexes; each hit reports its endpoints so a planner can seed
    /// the endpoint variables' domains.
    fn edge_range_candidates(
        &self,
        key: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<(NodeId, NodeId)>> {
        let idx = self.edge_prop_indexes.get(key)?;
        idx.range(low, high).ok().map(|ids| {
            ids.into_iter()
                .filter_map(|id| self.edge_endpoints(EdgeId(id)).ok())
                .collect()
        })
    }
}

impl WeightedView for PropertyGraph {
    fn edge_weight(&self, e: &EdgeRef) -> f64 {
        self.edge_property(e.id, "weight")
            .and_then(|v| v.as_f64())
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;

    fn social() -> (PropertyGraph, NodeId, NodeId, NodeId) {
        let mut g = PropertyGraph::new();
        let alice = g.add_node("person", props! { "name" => "alice", "age" => 30 });
        let bob = g.add_node("person", props! { "name" => "bob", "age" => 25 });
        let acme = g.add_node("company", props! { "name" => "acme" });
        g.add_edge(alice, bob, "knows", props! { "since" => 2001 })
            .unwrap();
        g.add_edge(alice, acme, "works_at", props! {}).unwrap();
        (g, alice, bob, acme)
    }

    #[test]
    fn labels_and_properties() {
        let (g, alice, _, acme) = social();
        assert_eq!(g.node_label_text(alice).unwrap(), "person");
        assert_eq!(g.node_label_text(acme).unwrap(), "company");
        assert_eq!(g.node_property(alice, "name"), Some(Value::from("alice")));
        assert_eq!(g.node_property(alice, "nope"), None);
    }

    #[test]
    fn label_index_tracks_membership() {
        let (mut g, alice, bob, _) = social();
        assert_eq!(g.nodes_with_label("person"), vec![alice, bob]);
        g.remove_node(bob).unwrap();
        assert_eq!(g.nodes_with_label("person"), vec![alice]);
        assert_eq!(g.nodes_with_label("unknown"), vec![]);
    }

    #[test]
    fn edge_attributes() {
        let (g, alice, bob, _) = social();
        let e = g.out_edges(alice)[0];
        assert_eq!(e.to, bob);
        assert_eq!(g.edge_property(e.id, "since"), Some(Value::from(2001)));
        assert_eq!(g.edge_label_text(e.id).unwrap(), "knows");
    }

    #[test]
    fn set_properties_after_creation() {
        let (mut g, alice, _, _) = social();
        let old = g.set_node_property(alice, "age", 31).unwrap();
        assert_eq!(old, Some(Value::from(30)));
        assert_eq!(g.node_property(alice, "age"), Some(Value::from(31)));
        let e = g.out_edges(alice)[0].id;
        g.set_edge_property(e, "weight", 0.5).unwrap();
        assert_eq!(g.edge_property(e, "weight"), Some(Value::from(0.5)));
    }

    #[test]
    fn weighted_view_defaults_to_one() {
        let (mut g, alice, _, _) = social();
        let edges = g.out_edges(alice);
        assert_eq!(g.edge_weight(&edges[0]), 1.0);
        g.set_edge_property(edges[0].id, "weight", 2.5).unwrap();
        assert_eq!(g.edge_weight(&edges[0]), 2.5);
    }

    #[test]
    fn remove_node_cleans_edges_and_index() {
        let (mut g, alice, bob, acme) = social();
        g.remove_node(alice).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.in_degree(bob), 0);
        assert_eq!(g.in_degree(acme), 0);
        assert!(g.node_properties(alice).is_err());
    }

    #[test]
    fn labels_listing() {
        let (g, ..) = social();
        assert_eq!(g.labels(), vec!["company", "person"]);
    }

    #[test]
    fn property_index_tracks_insert_update_remove() {
        let (mut g, alice, bob, acme) = social();
        assert_eq!(
            g.nodes_with_property("name", &Value::from("alice")),
            vec![alice]
        );
        assert_eq!(g.nodes_with_property("age", &Value::from(25)), vec![bob]);
        // Loose number probe: int-valued property found by float probe.
        assert_eq!(g.nodes_with_property("age", &Value::from(25.0)), vec![bob]);
        // Update moves the entry.
        g.set_node_property(bob, "age", 26).unwrap();
        assert!(g.nodes_with_property("age", &Value::from(25)).is_empty());
        assert_eq!(g.nodes_with_property("age", &Value::from(26)), vec![bob]);
        // Removal drops all of the node's entries.
        g.remove_node(bob).unwrap();
        assert!(g.nodes_with_property("age", &Value::from(26)).is_empty());
        assert_eq!(
            g.nodes_with_property("name", &Value::from("acme")),
            vec![acme]
        );
        assert_eq!(g.indexed_property_keys(), vec!["age", "name"]);
    }

    #[test]
    fn candidates_route_through_indexes() {
        let (g, alice, bob, _) = social();
        assert_eq!(
            g.candidates(Some("person"), &[]),
            vec![alice, bob],
            "label only"
        );
        assert_eq!(
            g.candidates(Some("person"), &[("age".into(), Value::from(30))]),
            vec![alice]
        );
        assert_eq!(
            g.candidates(None, &[("name".into(), Value::from("bob"))]),
            vec![bob]
        );
        assert!(g.candidates(Some("alien"), &[]).is_empty());
        assert!(g
            .candidates(None, &[("no_such_key".into(), Value::from(1))])
            .is_empty());
        // Estimates are upper bounds from the indexes.
        assert_eq!(g.candidate_estimate(Some("person"), &[]), Some(2));
        assert_eq!(
            g.candidate_estimate(Some("person"), &[("name".into(), Value::from("bob"))]),
            Some(1)
        );
        assert_eq!(g.candidate_estimate(None, &[]), None, "no constraint");
    }

    #[test]
    fn edge_property_index_tracks_insert_update_remove() {
        let (mut g, alice, bob, _) = social();
        let e = g.out_edges(alice)[0].id;
        // Range probe over the auto-maintained edge index.
        let hits = g
            .edge_range_candidates("since", Some(&Value::from(2000)), Some(&Value::from(2005)))
            .unwrap();
        assert_eq!(hits, vec![(alice, bob)]);
        // Update moves the entry out of the old range.
        g.set_edge_property(e, "since", 2010).unwrap();
        assert!(g
            .edge_range_candidates("since", Some(&Value::from(2000)), Some(&Value::from(2005)))
            .unwrap()
            .is_empty());
        let hits = g
            .edge_range_candidates("since", Some(&Value::from(2006)), None)
            .unwrap();
        assert_eq!(hits, vec![(alice, bob)]);
        // Removing the edge (here via node cascade) drops its entries.
        g.remove_node(bob).unwrap();
        assert!(g
            .edge_range_candidates("since", None, None)
            .unwrap()
            .is_empty());
        // A never-indexed key reports "no index", not "empty range".
        assert!(g.edge_range_candidates("nope", None, None).is_none());
    }

    #[test]
    fn attributed_view_through_trait_object() {
        let (g, alice, ..) = social();
        let view: &dyn AttributedView = &g;
        let sym = view.node_label(alice).unwrap();
        assert_eq!(view.label_text(sym), Some("person"));
    }
}
