//! Partitioned property graphs — the simulation stand-in for
//! InfiniteGraph's distributed store.
//!
//! InfiniteGraph's pitch in the paper is "efficient traversal of
//! relations across massive and distributed data stores". Without a
//! cluster, the behaviour that matters at the logical level is the
//! *cost model*: traversing an edge whose endpoints live on different
//! partitions is a remote hop. [`PartitionedGraph`] wraps a
//! [`PropertyGraph`] with an explicit partition assignment and counts
//! remote hops during traversal, so the partition-count and
//! partition-strategy ablations measure exactly the effect a
//! distributed deployment would see.

use crate::property::PropertyGraph;
use gdm_core::{
    AttributedView, EdgeId, EdgeRef, FxHashMap, GraphView, NodeId, Result, Symbol, Value,
};
use std::cell::Cell;
use std::collections::VecDeque;

/// Partition assignment strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// `node id mod n` — what a naive distributed loader does.
    Hash,
    /// Greedy BFS clustering: fill one partition at a time with a BFS
    /// frontier, so neighborhoods co-locate.
    BfsCluster,
}

/// A property graph with a partition assignment and remote-hop
/// accounting.
pub struct PartitionedGraph {
    inner: PropertyGraph,
    partitions: u32,
    assignment: FxHashMap<u64, u32>,
    remote_hops: Cell<u64>,
    local_hops: Cell<u64>,
}

impl PartitionedGraph {
    /// Partitions `graph` into `partitions` parts using `strategy`.
    pub fn new(graph: PropertyGraph, partitions: u32, strategy: Strategy) -> Self {
        let partitions = partitions.max(1);
        let assignment = match strategy {
            Strategy::Hash => hash_assign(&graph, partitions),
            Strategy::BfsCluster => bfs_assign(&graph, partitions),
        };
        Self {
            inner: graph,
            partitions,
            assignment,
            remote_hops: Cell::new(0),
            local_hops: Cell::new(0),
        }
    }

    /// The wrapped property graph.
    pub fn inner(&self) -> &PropertyGraph {
        &self.inner
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Which partition `n` lives on.
    pub fn partition_of(&self, n: NodeId) -> Option<u32> {
        self.assignment.get(&n.raw()).copied()
    }

    /// Remote (cross-partition) edge visits since the last reset.
    pub fn remote_hops(&self) -> u64 {
        self.remote_hops.get()
    }

    /// Local (same-partition) edge visits since the last reset.
    pub fn local_hops(&self) -> u64 {
        self.local_hops.get()
    }

    /// Zeroes the hop counters.
    pub fn reset_hops(&self) {
        self.remote_hops.set(0);
        self.local_hops.set(0);
    }

    /// Static edge cut: number of edges whose endpoints live on
    /// different partitions.
    pub fn edge_cut(&self) -> usize {
        let mut cut = 0;
        let mut nodes = Vec::new();
        self.inner.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            self.inner.visit_out_edges(n, &mut |e| {
                if self.assignment.get(&e.from.raw()) != self.assignment.get(&e.to.raw()) {
                    cut += 1;
                }
            });
        }
        cut
    }

    /// Nodes per partition.
    pub fn partition_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.partitions as usize];
        for &p in self.assignment.values() {
            sizes[p as usize] += 1;
        }
        sizes
    }

    fn account(&self, e: &EdgeRef) {
        let a = self.assignment.get(&e.from.raw());
        let b = self.assignment.get(&e.to.raw());
        if a == b {
            self.local_hops.set(self.local_hops.get() + 1);
        } else {
            self.remote_hops.set(self.remote_hops.get() + 1);
        }
    }
}

fn hash_assign(graph: &PropertyGraph, partitions: u32) -> FxHashMap<u64, u32> {
    let mut map = FxHashMap::default();
    graph.visit_nodes(&mut |n| {
        // Multiplicative scramble so sequential ids spread.
        let h = n.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        map.insert(n.raw(), (h % u64::from(partitions)) as u32);
    });
    map
}

fn bfs_assign(graph: &PropertyGraph, partitions: u32) -> FxHashMap<u64, u32> {
    let mut map = FxHashMap::default();
    let mut order = Vec::new();
    graph.visit_nodes(&mut |n| order.push(n));
    let total = order.len();
    if total == 0 {
        return map;
    }
    let per_part = total.div_ceil(partitions as usize);
    let mut current: u32 = 0;
    let mut filled = 0usize;
    let mut queue = VecDeque::new();
    for &seed in &order {
        if map.contains_key(&seed.raw()) {
            continue;
        }
        queue.push_back(seed);
        while let Some(n) = queue.pop_front() {
            if map.contains_key(&n.raw()) {
                continue;
            }
            map.insert(n.raw(), current);
            filled += 1;
            if filled >= per_part && current + 1 < partitions {
                current += 1;
                filled = 0;
                queue.clear();
                break;
            }
            graph.visit_out_edges(n, &mut |e| {
                if !map.contains_key(&e.to.raw()) {
                    queue.push_back(e.to);
                }
            });
            graph.visit_in_edges(n, &mut |e| {
                if !map.contains_key(&e.to.raw()) {
                    queue.push_back(e.to);
                }
            });
        }
    }
    map
}

impl GraphView for PartitionedGraph {
    fn is_directed(&self) -> bool {
        self.inner.is_directed()
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn edge_count(&self) -> usize {
        self.inner.edge_count()
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.inner.contains_node(n)
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        self.inner.visit_nodes(f);
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        self.inner.visit_out_edges(n, &mut |e| {
            self.account(&e);
            f(e);
        });
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        self.inner.visit_in_edges(n, &mut |e| {
            self.account(&e);
            f(e);
        });
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.inner.label_text(sym)
    }
}

impl AttributedView for PartitionedGraph {
    fn node_label(&self, n: NodeId) -> Option<Symbol> {
        self.inner.node_label(n)
    }

    fn node_property(&self, n: NodeId, key: &str) -> Option<Value> {
        self.inner.node_property(n, key)
    }

    fn edge_property(&self, e: EdgeId, key: &str) -> Option<Value> {
        self.inner.edge_property(e, key)
    }

    // Delegate the enumeration hooks too: freezing a partitioned view
    // must not silently drop the attributes the inner graph carries.
    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        self.inner.visit_node_properties(n, f);
    }

    fn visit_edge_properties(&self, e: EdgeId, f: &mut dyn FnMut(&str, &Value)) {
        self.inner.visit_edge_properties(e, f);
    }
}

/// Builds a ring graph of `n` nodes, used by tests and benches to show
/// the clustered-vs-hash gap deterministically.
pub fn ring_graph(n: usize) -> Result<PropertyGraph> {
    let mut g = PropertyGraph::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            let mut props = gdm_core::PropertyMap::new();
            props.set("i", i as i64);
            g.add_node("v", props)
        })
        .collect();
    for i in 0..n {
        g.add_edge(
            nodes[i],
            nodes[(i + 1) % n],
            "next",
            gdm_core::PropertyMap::new(),
        )?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_is_assigned() {
        let g = ring_graph(100).unwrap();
        for strategy in [Strategy::Hash, Strategy::BfsCluster] {
            let pg = PartitionedGraph::new(g.clone(), 4, strategy);
            let sizes = pg.partition_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 100, "{strategy:?}");
            assert!(sizes.iter().all(|&s| s > 0), "{strategy:?}: {sizes:?}");
        }
    }

    #[test]
    fn bfs_clustering_cuts_fewer_edges_than_hash() {
        let g = ring_graph(256).unwrap();
        let hash = PartitionedGraph::new(g.clone(), 8, Strategy::Hash);
        let bfs = PartitionedGraph::new(g, 8, Strategy::BfsCluster);
        // A ring partitioned into 8 contiguous arcs cuts ~8 edges;
        // hashing cuts a constant fraction of all 256.
        assert!(
            bfs.edge_cut() * 4 < hash.edge_cut(),
            "bfs cut {} vs hash cut {}",
            bfs.edge_cut(),
            hash.edge_cut()
        );
    }

    #[test]
    fn hop_accounting_tracks_traversal() {
        let g = ring_graph(64).unwrap();
        let pg = PartitionedGraph::new(g, 4, Strategy::BfsCluster);
        pg.reset_hops();
        // Walk the whole ring.
        let mut nodes = Vec::new();
        pg.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            pg.visit_out_edges(n, &mut |_| {});
        }
        assert_eq!(pg.remote_hops() + pg.local_hops(), 64);
        assert!(pg.remote_hops() < pg.local_hops());
    }

    #[test]
    fn single_partition_has_no_remote_hops() {
        let g = ring_graph(32).unwrap();
        let pg = PartitionedGraph::new(g, 1, Strategy::Hash);
        let mut nodes = Vec::new();
        pg.visit_nodes(&mut |n| nodes.push(n));
        for n in nodes {
            pg.visit_out_edges(n, &mut |_| {});
        }
        assert_eq!(pg.remote_hops(), 0);
        assert_eq!(pg.edge_cut(), 0);
    }

    #[test]
    fn view_delegates_attributes() {
        let g = ring_graph(4).unwrap();
        let pg = PartitionedGraph::new(g, 2, Strategy::Hash);
        let n = pg.node_ids()[0];
        assert!(pg.node_property(n, "i").is_some());
        let sym = pg.node_label(n).unwrap();
        assert_eq!(pg.label_text(sym), Some("v"));
    }
}
