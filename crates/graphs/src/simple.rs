//! Simple flat graphs.
//!
//! The paper's baseline structure: "a set of nodes (or vertices)
//! connected by edges (i.e., a binary relation over the set of nodes)".
//! Nodes and edges may optionally carry a label; edges are directed or
//! undirected per graph; parallel edges and self-loops are allowed
//! (several surveyed stores are multigraphs at this level).

use gdm_core::{EdgeId, EdgeRef, GdmError, GraphView, Interner, NodeId, Result, Symbol};

#[derive(Debug, Clone)]
struct NodeData {
    label: Option<Symbol>,
    /// Incident edges: `(edge, other endpoint, this node is the source)`.
    out: Vec<(EdgeId, NodeId)>,
    inc: Vec<(EdgeId, NodeId)>,
}

#[derive(Debug, Clone, Copy)]
struct EdgeData {
    from: NodeId,
    to: NodeId,
    label: Option<Symbol>,
}

/// A flat (simple or multi) graph with optional node/edge labels.
#[derive(Debug, Clone)]
pub struct SimpleGraph {
    directed: bool,
    nodes: Vec<Option<NodeData>>,
    edges: Vec<Option<EdgeData>>,
    node_count: usize,
    edge_count: usize,
    interner: Interner,
}

impl SimpleGraph {
    /// Creates an empty directed graph.
    pub fn directed() -> Self {
        Self::new(true)
    }

    /// Creates an empty undirected graph.
    pub fn undirected() -> Self {
        Self::new(false)
    }

    fn new(directed: bool) -> Self {
        Self {
            directed,
            nodes: Vec::new(),
            edges: Vec::new(),
            node_count: 0,
            edge_count: 0,
            interner: Interner::new(),
        }
    }

    /// Adds an unlabeled node.
    pub fn add_node(&mut self) -> NodeId {
        self.push_node(None)
    }

    /// Adds a node labeled `label`.
    pub fn add_labeled_node(&mut self, label: &str) -> NodeId {
        let sym = self.interner.intern(label);
        self.push_node(Some(sym))
    }

    fn push_node(&mut self, label: Option<Symbol>) -> NodeId {
        let id = NodeId(self.nodes.len() as u64);
        self.nodes.push(Some(NodeData {
            label,
            out: Vec::new(),
            inc: Vec::new(),
        }));
        self.node_count += 1;
        id
    }

    /// Adds an unlabeled edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<EdgeId> {
        self.push_edge(from, to, None)
    }

    /// Adds an edge labeled `label`.
    pub fn add_labeled_edge(&mut self, from: NodeId, to: NodeId, label: &str) -> Result<EdgeId> {
        let sym = self.interner.intern(label);
        self.push_edge(from, to, Some(sym))
    }

    fn push_edge(&mut self, from: NodeId, to: NodeId, label: Option<Symbol>) -> Result<EdgeId> {
        self.node_data(from)?;
        self.node_data(to)?;
        let id = EdgeId(self.edges.len() as u64);
        self.edges.push(Some(EdgeData { from, to, label }));
        self.node_mut(from).out.push((id, to));
        if self.directed {
            self.node_mut(to).inc.push((id, from));
        } else if from != to {
            // Undirected: both endpoints see the edge as outgoing.
            self.node_mut(to).out.push((id, from));
        }
        self.edge_count += 1;
        Ok(id)
    }

    /// Removes edge `e`.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<()> {
        let data = self
            .edges
            .get(e.index())
            .and_then(|d| *d)
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))?;
        self.edges[e.index()] = None;
        self.node_mut(data.from).out.retain(|(id, _)| *id != e);
        if self.directed {
            self.node_mut(data.to).inc.retain(|(id, _)| *id != e);
        } else if data.from != data.to {
            self.node_mut(data.to).out.retain(|(id, _)| *id != e);
        }
        self.edge_count -= 1;
        Ok(())
    }

    /// Removes node `n` and every incident edge.
    pub fn remove_node(&mut self, n: NodeId) -> Result<()> {
        self.node_data(n)?;
        let incident: Vec<EdgeId> = {
            let data = self.nodes[n.index()].as_ref().expect("checked");
            data.out
                .iter()
                .chain(data.inc.iter())
                .map(|(e, _)| *e)
                .collect()
        };
        for e in incident {
            // Parallel edges appear once per endpoint list; the first
            // removal already detached both sides.
            if self.edges.get(e.index()).is_some_and(Option::is_some) {
                self.remove_edge(e)?;
            }
        }
        self.nodes[n.index()] = None;
        self.node_count -= 1;
        Ok(())
    }

    /// Node label text, if labeled.
    pub fn node_label(&self, n: NodeId) -> Option<&str> {
        let sym = self.nodes.get(n.index())?.as_ref()?.label?;
        self.interner.resolve(sym)
    }

    /// Edge label text, if labeled.
    pub fn edge_label(&self, e: EdgeId) -> Option<&str> {
        let sym = self.edges.get(e.index())?.as_ref()?.label?;
        self.interner.resolve(sym)
    }

    /// Edge endpoints `(from, to)`.
    pub fn edge_endpoints(&self, e: EdgeId) -> Result<(NodeId, NodeId)> {
        self.edges
            .get(e.index())
            .and_then(|d| *d)
            .map(|d| (d.from, d.to))
            .ok_or_else(|| GdmError::NotFound(format!("edge {e}")))
    }

    /// Interns `label` (for building queries against this graph).
    pub fn intern(&mut self, label: &str) -> Symbol {
        self.interner.intern(label)
    }

    /// Looks up the symbol of an existing label.
    pub fn label_symbol(&self, label: &str) -> Option<Symbol> {
        self.interner.get(label)
    }

    fn node_data(&self, n: NodeId) -> Result<&NodeData> {
        self.nodes
            .get(n.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| GdmError::NotFound(format!("node {n}")))
    }

    fn node_mut(&mut self, n: NodeId) -> &mut NodeData {
        self.nodes[n.index()].as_mut().expect("validated node id")
    }
}

impl GraphView for SimpleGraph {
    fn is_directed(&self) -> bool {
        self.directed
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(Option::is_some)
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        for (i, slot) in self.nodes.iter().enumerate() {
            if slot.is_some() {
                f(NodeId(i as u64));
            }
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(Some(data)) = self.nodes.get(n.index()) else {
            return;
        };
        for &(e, other) in &data.out {
            let label = self.edges[e.index()].as_ref().and_then(|d| d.label);
            f(EdgeRef {
                id: e,
                from: n,
                to: other,
                label,
            });
        }
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let Some(Some(data)) = self.nodes.get(n.index()) else {
            return;
        };
        let list = if self.directed { &data.inc } else { &data.out };
        for &(e, other) in list {
            let label = self.edges[e.index()].as_ref().and_then(|d| d.label);
            f(EdgeRef {
                id: e,
                from: n,
                to: other,
                label,
            });
        }
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.interner.resolve(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_adjacency() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_neighbors(a), vec![b, c]);
        assert_eq!(g.out_neighbors(c), vec![]);
        assert_eq!(g.in_degree(c), 2);
    }

    #[test]
    fn undirected_edges_are_symmetric() {
        let mut g = SimpleGraph::undirected();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.out_neighbors(a), vec![b]);
        assert_eq!(g.out_neighbors(b), vec![a]);
        assert_eq!(g.degree(a), 1);
        // in_edges mirrors out for undirected graphs.
        assert_eq!(g.in_edges(a).len(), 1);
    }

    #[test]
    fn labels_resolve() {
        let mut g = SimpleGraph::directed();
        let a = g.add_labeled_node("paper");
        let b = g.add_labeled_node("author");
        let e = g.add_labeled_edge(b, a, "wrote").unwrap();
        assert_eq!(g.node_label(a), Some("paper"));
        assert_eq!(g.edge_label(e), Some("wrote"));
        assert_eq!(g.node_label(NodeId(99)), None);
        let out = g.out_edges(b);
        assert_eq!(g.label_text(out[0].label.unwrap()), Some("wrote"));
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, a).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.out_neighbors(a), vec![b, a]); // deduped
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b).unwrap();
        g.remove_edge(e).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.in_degree(b), 0);
        assert!(g.remove_edge(e).is_err());
    }

    #[test]
    fn remove_node_cascades() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        g.remove_node(b).unwrap();
        assert!(!g.contains_node(b));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1); // only c -> a survives
        assert_eq!(g.out_neighbors(c), vec![a]);
    }

    #[test]
    fn undirected_self_loop_counts_once() {
        let mut g = SimpleGraph::undirected();
        let a = g.add_node();
        g.add_edge(a, a).unwrap();
        assert_eq!(g.out_degree(a), 1);
        g.remove_node(a).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edges_into_missing_nodes_fail() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        assert!(g.add_edge(a, NodeId(9)).is_err());
        assert!(g.add_edge(NodeId(9), a).is_err());
    }

    #[test]
    fn removed_node_ids_are_not_reused() {
        let mut g = SimpleGraph::directed();
        let a = g.add_node();
        g.remove_node(a).unwrap();
        let b = g.add_node();
        assert_ne!(a, b);
    }
}
