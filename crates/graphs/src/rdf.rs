//! RDF triple graphs.
//!
//! AllegroGraph's model: "statements of the form
//! subject-predicate-object". Terms are IRIs, literals, or blank
//! nodes; triples are indexed three ways (SPO, POS, OSP) so any
//! pattern with bound positions resolves through an index scan — the
//! classic triple-store layout.
//!
//! As a [`GraphView`], every term is a node (literals are the paper's
//! *value nodes*), every triple is a directed labeled edge, and the
//! predicate term doubles as the edge label symbol.

use gdm_core::{EdgeId, EdgeRef, FxHashMap, GdmError, GraphView, NodeId, Result, Symbol};
use std::collections::BTreeSet;

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A resource identifier.
    Iri(String),
    /// A literal value (plain, no datatype machinery).
    Literal(String),
    /// An anonymous node.
    Blank(u64),
}

impl Term {
    /// Convenience IRI constructor.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Convenience literal constructor.
    pub fn lit(s: impl Into<String>) -> Self {
        Term::Literal(s.into())
    }

    /// Text form used for display and edge labels.
    pub fn text(&self) -> String {
        match self {
            Term::Iri(s) => s.clone(),
            Term::Literal(s) => format!("\"{s}\""),
            Term::Blank(n) => format!("_:b{n}"),
        }
    }

    /// True for terms allowed in subject position (no literals).
    pub fn is_resource(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text())
    }
}

/// A triple pattern position: bound to a term or a wildcard.
pub type TermPattern<'a> = Option<&'a Term>;

/// A stored triple identifier.
pub type TripleId = EdgeId;

/// An indexed set of RDF triples.
#[derive(Debug, Clone, Default)]
pub struct RdfGraph {
    terms: Vec<Term>,
    term_ids: FxHashMap<Term, u32>,
    /// Triple storage; `None` marks removed triples.
    triples: Vec<Option<(u32, u32, u32)>>,
    count: usize,
    /// Indexes carry the triple id as the last tuple element.
    spo: BTreeSet<(u32, u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32, u32)>,
    next_blank: u64,
}

impl RdfGraph {
    /// Creates an empty triple store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id.
    pub fn intern(&mut self, term: &Term) -> u32 {
        if let Some(&id) = self.term_ids.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.clone());
        self.term_ids.insert(term.clone(), id);
        id
    }

    /// Returns the term stored under `id`.
    pub fn term(&self, id: u32) -> Option<&Term> {
        self.terms.get(id as usize)
    }

    /// Looks up a term's id without interning.
    pub fn term_id(&self, term: &Term) -> Option<u32> {
        self.term_ids.get(term).copied()
    }

    /// Mints a fresh blank node.
    pub fn fresh_blank(&mut self) -> Term {
        let t = Term::Blank(self.next_blank);
        self.next_blank += 1;
        t
    }

    /// Adds the triple `(s, p, o)`. Subjects and predicates must be
    /// resources. Duplicate triples are ignored (returns the existing
    /// id).
    pub fn add(&mut self, s: &Term, p: &Term, o: &Term) -> Result<TripleId> {
        if !s.is_resource() {
            return Err(GdmError::InvalidArgument(
                "literal in subject position".into(),
            ));
        }
        if !matches!(p, Term::Iri(_)) {
            return Err(GdmError::InvalidArgument("predicate must be an IRI".into()));
        }
        let si = self.intern(s);
        let pi = self.intern(p);
        let oi = self.intern(o);
        // Duplicate check through SPO.
        let existing = self
            .spo
            .range((si, pi, oi, 0)..=(si, pi, oi, u32::MAX))
            .next();
        if let Some(&(_, _, _, tid)) = existing {
            return Ok(EdgeId(u64::from(tid)));
        }
        let tid = self.triples.len() as u32;
        self.triples.push(Some((si, pi, oi)));
        self.spo.insert((si, pi, oi, tid));
        self.pos.insert((pi, oi, si, tid));
        self.osp.insert((oi, si, pi, tid));
        self.count += 1;
        Ok(EdgeId(u64::from(tid)))
    }

    /// Removes the triple `(s, p, o)` if present.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(si), Some(pi), Some(oi)) = (self.term_id(s), self.term_id(p), self.term_id(o))
        else {
            return false;
        };
        let found = self
            .spo
            .range((si, pi, oi, 0)..=(si, pi, oi, u32::MAX))
            .next()
            .copied();
        let Some((_, _, _, tid)) = found else {
            return false;
        };
        self.spo.remove(&(si, pi, oi, tid));
        self.pos.remove(&(pi, oi, si, tid));
        self.osp.remove(&(oi, si, pi, tid));
        self.triples[tid as usize] = None;
        self.count -= 1;
        true
    }

    /// True when the exact triple is stored.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.term_id(s), self.term_id(p), self.term_id(o)) {
            (Some(si), Some(pi), Some(oi)) => self
                .spo
                .range((si, pi, oi, 0)..=(si, pi, oi, u32::MAX))
                .next()
                .is_some(),
            _ => false,
        }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Matches a triple pattern, choosing the best index for the bound
    /// positions, and returns matching triples as term-id tuples.
    pub fn match_pattern(
        &self,
        s: TermPattern<'_>,
        p: TermPattern<'_>,
        o: TermPattern<'_>,
    ) -> Vec<(u32, u32, u32)> {
        // Resolve bound terms; an unknown bound term matches nothing.
        let resolve = |t: TermPattern<'_>| -> std::result::Result<Option<u32>, ()> {
            match t {
                None => Ok(None),
                Some(term) => match self.term_id(term) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()),
                },
            }
        };
        let (Ok(s), Ok(p), Ok(o)) = (resolve(s), resolve(p), resolve(o)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        match (s, p, o) {
            (Some(si), Some(pi), Some(oi)) => {
                if self
                    .spo
                    .range((si, pi, oi, 0)..=(si, pi, oi, u32::MAX))
                    .next()
                    .is_some()
                {
                    out.push((si, pi, oi));
                }
            }
            (Some(si), Some(pi), None) => {
                for &(a, b, c, _) in self
                    .spo
                    .range((si, pi, 0, 0)..=(si, pi, u32::MAX, u32::MAX))
                {
                    out.push((a, b, c));
                }
            }
            (Some(si), None, Some(oi)) => {
                for &(a, b, c, _) in self
                    .osp
                    .range((oi, si, 0, 0)..=(oi, si, u32::MAX, u32::MAX))
                {
                    out.push((b, c, a));
                }
            }
            (Some(si), None, None) => {
                for &(a, b, c, _) in self
                    .spo
                    .range((si, 0, 0, 0)..=(si, u32::MAX, u32::MAX, u32::MAX))
                {
                    out.push((a, b, c));
                }
            }
            (None, Some(pi), Some(oi)) => {
                for &(a, b, c, _) in self
                    .pos
                    .range((pi, oi, 0, 0)..=(pi, oi, u32::MAX, u32::MAX))
                {
                    out.push((c, a, b));
                }
            }
            (None, Some(pi), None) => {
                for &(a, b, c, _) in self
                    .pos
                    .range((pi, 0, 0, 0)..=(pi, u32::MAX, u32::MAX, u32::MAX))
                {
                    out.push((c, a, b));
                }
            }
            (None, None, Some(oi)) => {
                for &(a, b, c, _) in self
                    .osp
                    .range((oi, 0, 0, 0)..=(oi, u32::MAX, u32::MAX, u32::MAX))
                {
                    out.push((b, c, a));
                }
            }
            (None, None, None) => {
                for &(a, b, c, _) in &self.spo {
                    out.push((a, b, c));
                }
            }
        }
        out
    }

    /// Matches a pattern and returns term triples (convenience).
    pub fn match_terms(
        &self,
        s: TermPattern<'_>,
        p: TermPattern<'_>,
        o: TermPattern<'_>,
    ) -> Vec<(Term, Term, Term)> {
        self.match_pattern(s, p, o)
            .into_iter()
            .map(|(a, b, c)| {
                (
                    self.terms[a as usize].clone(),
                    self.terms[b as usize].clone(),
                    self.terms[c as usize].clone(),
                )
            })
            .collect()
    }

    /// Distinct predicates in use.
    pub fn predicates(&self) -> Vec<&Term> {
        let mut last = None;
        let mut out = Vec::new();
        for &(p, ..) in &self.pos {
            if last != Some(p) {
                out.push(&self.terms[p as usize]);
                last = Some(p);
            }
        }
        out
    }
}

impl GraphView for RdfGraph {
    fn is_directed(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        // Terms appearing as subject or object.
        let mut seen = vec![false; self.terms.len()];
        for t in self.triples.iter().flatten() {
            seen[t.0 as usize] = true;
            seen[t.2 as usize] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }

    fn edge_count(&self) -> usize {
        self.count
    }

    fn contains_node(&self, n: NodeId) -> bool {
        (n.raw() as usize) < self.terms.len()
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        let mut seen = vec![false; self.terms.len()];
        for t in self.triples.iter().flatten() {
            seen[t.0 as usize] = true;
            seen[t.2 as usize] = true;
        }
        for (i, s) in seen.iter().enumerate() {
            if *s {
                f(NodeId(i as u64));
            }
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let si = n.raw() as u32;
        for &(s, p, o, tid) in self
            .spo
            .range((si, 0, 0, 0)..=(si, u32::MAX, u32::MAX, u32::MAX))
        {
            debug_assert_eq!(s, si);
            f(EdgeRef {
                id: EdgeId(u64::from(tid)),
                from: n,
                to: NodeId(u64::from(o)),
                label: Some(Symbol(p)),
            });
        }
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        let oi = n.raw() as u32;
        for &(o, s, p, tid) in self
            .osp
            .range((oi, 0, 0, 0)..=(oi, u32::MAX, u32::MAX, u32::MAX))
        {
            debug_assert_eq!(o, oi);
            f(EdgeRef {
                id: EdgeId(u64::from(tid)),
                from: n,
                to: NodeId(u64::from(s)),
                label: Some(Symbol(p)),
            });
        }
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        match self.terms.get(sym.raw() as usize) {
            Some(Term::Iri(s)) => Some(s.as_str()),
            Some(Term::Literal(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> RdfGraph {
        let mut g = RdfGraph::new();
        let parent = Term::iri("parent");
        g.add(&Term::iri("ana"), &parent, &Term::iri("ben"))
            .unwrap();
        g.add(&Term::iri("ben"), &parent, &Term::iri("cleo"))
            .unwrap();
        g.add(&Term::iri("ana"), &Term::iri("name"), &Term::lit("Ana"))
            .unwrap();
        g
    }

    #[test]
    fn add_contains_remove() {
        let mut g = family();
        assert_eq!(g.len(), 3);
        let parent = Term::iri("parent");
        assert!(g.contains(&Term::iri("ana"), &parent, &Term::iri("ben")));
        assert!(g.remove(&Term::iri("ana"), &parent, &Term::iri("ben")));
        assert!(!g.contains(&Term::iri("ana"), &parent, &Term::iri("ben")));
        assert!(!g.remove(&Term::iri("ana"), &parent, &Term::iri("ben")));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut g = RdfGraph::new();
        let t1 = g
            .add(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"))
            .unwrap();
        let t2 = g
            .add(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"))
            .unwrap();
        assert_eq!(t1, t2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn pattern_matching_uses_all_shapes() {
        let g = family();
        let parent = Term::iri("parent");
        // (?, p, ?)
        assert_eq!(g.match_terms(None, Some(&parent), None).len(), 2);
        // (s, ?, ?)
        assert_eq!(g.match_terms(Some(&Term::iri("ana")), None, None).len(), 2);
        // (?, ?, o)
        assert_eq!(g.match_terms(None, None, Some(&Term::iri("cleo"))).len(), 1);
        // (s, p, ?)
        assert_eq!(
            g.match_terms(Some(&Term::iri("ben")), Some(&parent), None)
                .len(),
            1
        );
        // (s, ?, o)
        assert_eq!(
            g.match_terms(Some(&Term::iri("ana")), None, Some(&Term::iri("ben")))
                .len(),
            1
        );
        // (?, p, o)
        assert_eq!(
            g.match_terms(None, Some(&parent), Some(&Term::iri("ben")))
                .len(),
            1
        );
        // full scan
        assert_eq!(g.match_terms(None, None, None).len(), 3);
        // unknown bound term
        assert_eq!(g.match_terms(Some(&Term::iri("zoe")), None, None).len(), 0);
    }

    #[test]
    fn literals_cannot_be_subjects_or_predicates() {
        let mut g = RdfGraph::new();
        assert!(g
            .add(&Term::lit("x"), &Term::iri("p"), &Term::iri("y"))
            .is_err());
        assert!(g
            .add(&Term::iri("x"), &Term::lit("p"), &Term::iri("y"))
            .is_err());
        assert!(g
            .add(&Term::iri("x"), &Term::Blank(0), &Term::iri("y"))
            .is_err());
    }

    #[test]
    fn graph_view_over_triples() {
        let g = family();
        let ana = NodeId(u64::from(g.term_id(&Term::iri("ana")).unwrap()));
        let ben = NodeId(u64::from(g.term_id(&Term::iri("ben")).unwrap()));
        let out = g.out_edges(ana);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|e| e.to == ben));
        // Predicate doubles as label.
        let parent_edge = out
            .iter()
            .find(|e| g.label_text(e.label.unwrap()) == Some("parent"))
            .unwrap();
        assert_eq!(parent_edge.to, ben);
        assert_eq!(g.in_degree(ben), 1);
        // Literals are value nodes.
        assert_eq!(g.node_count(), 4); // ana, ben, cleo, "Ana"
    }

    #[test]
    fn predicates_listing() {
        let g = family();
        let names: Vec<String> = g.predicates().iter().map(|t| t.text()).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"parent".to_string()));
    }

    #[test]
    fn blank_nodes_are_fresh() {
        let mut g = RdfGraph::new();
        let b1 = g.fresh_blank();
        let b2 = g.fresh_blank();
        assert_ne!(b1, b2);
        g.add(&b1, &Term::iri("p"), &b2).unwrap();
        assert_eq!(g.len(), 1);
    }
}
