//! Hypergraphs, HyperGraphDB-style.
//!
//! The paper: "HyperGraphDB implements the hypergraph data model where
//! the notion of edge is extended to connect more than two nodes",
//! useful for "knowledge representation, artificial intelligence and
//! bio-informatics". HyperGraphDB's actual model is an *atom space*:
//! every entity is an atom, and a **link** is an atom whose target set
//! may contain any atoms — including other links. That last property is
//! exactly Table III's "edges between edges" column, so we reproduce
//! the atom-space formulation rather than plain set-hyperedges.
//!
//! [`HyperGraph::two_section`] exposes the standard binary projection
//! (each k-ary link induces edges between its targets in tuple order)
//! as a [`GraphView`], which is how the essential queries run over the
//! hypergraph model.

use gdm_core::{
    EdgeId, EdgeRef, GdmError, GraphView, Interner, NodeId, PropertyMap, Result, Symbol, Value,
};

/// Identifier of an atom (node or link) in one hypergraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(pub u64);

impl AtomId {
    /// Raw numeric form.
    pub fn raw(self) -> u64 {
        self.0
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AtomId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[derive(Debug, Clone)]
enum AtomKind {
    Node,
    Link { targets: Vec<AtomId> },
}

#[derive(Debug, Clone)]
struct Atom {
    label: Symbol,
    props: PropertyMap,
    kind: AtomKind,
    /// Links whose target tuple contains this atom.
    incidence: Vec<AtomId>,
}

/// Snapshot row: `(label, props, link targets)` — `None` targets mean
/// a node atom; a `None` row is a tombstoned slot.
type SnapshotDto = Vec<Option<(String, PropertyMap, Option<Vec<u64>>)>>;

/// An atom-space hypergraph.
#[derive(Debug, Clone, Default)]
pub struct HyperGraph {
    atoms: Vec<Option<Atom>>,
    node_count: usize,
    link_count: usize,
    interner: Interner,
}

impl HyperGraph {
    /// Creates an empty hypergraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node atom.
    pub fn add_node(&mut self, label: &str, props: PropertyMap) -> AtomId {
        let sym = self.interner.intern(label);
        let id = AtomId(self.atoms.len() as u64);
        self.atoms.push(Some(Atom {
            label: sym,
            props,
            kind: AtomKind::Node,
            incidence: Vec::new(),
        }));
        self.node_count += 1;
        id
    }

    /// Adds a link atom targeting `targets` (nodes or links; at least
    /// one target).
    pub fn add_link(
        &mut self,
        label: &str,
        targets: &[AtomId],
        props: PropertyMap,
    ) -> Result<AtomId> {
        if targets.is_empty() {
            return Err(GdmError::InvalidArgument("link with no targets".into()));
        }
        for &t in targets {
            self.atom(t)?;
        }
        let sym = self.interner.intern(label);
        let id = AtomId(self.atoms.len() as u64);
        self.atoms.push(Some(Atom {
            label: sym,
            props,
            kind: AtomKind::Link {
                targets: targets.to_vec(),
            },
            incidence: Vec::new(),
        }));
        let mut seen = Vec::new();
        for &t in targets {
            // Record incidence once per distinct target.
            if !seen.contains(&t) {
                self.atoms[t.index()]
                    .as_mut()
                    .expect("validated")
                    .incidence
                    .push(id);
                seen.push(t);
            }
        }
        self.link_count += 1;
        Ok(id)
    }

    /// Removes atom `id`. Refuses while links still reference it unless
    /// `cascade` is set, in which case every referencing link is
    /// removed recursively.
    pub fn remove_atom(&mut self, id: AtomId, cascade: bool) -> Result<()> {
        let incident = self.atom(id)?.incidence.clone();
        if !incident.is_empty() {
            if !cascade {
                return Err(GdmError::Constraint(format!(
                    "atom {id} is referenced by {} link(s)",
                    incident.len()
                )));
            }
            for link in incident {
                if self.atoms.get(link.index()).is_some_and(Option::is_some) {
                    self.remove_atom(link, true)?;
                }
            }
        }
        let atom = self.atoms[id.index()].take().expect("validated");
        match atom.kind {
            AtomKind::Node => self.node_count -= 1,
            AtomKind::Link { targets } => {
                self.link_count -= 1;
                for t in targets {
                    if let Some(Some(ta)) = self.atoms.get_mut(t.index()) {
                        ta.incidence.retain(|&l| l != id);
                    }
                }
            }
        }
        Ok(())
    }

    /// True when `id` exists and is a link.
    pub fn is_link(&self, id: AtomId) -> bool {
        matches!(
            self.atoms.get(id.index()).and_then(Option::as_ref),
            Some(Atom {
                kind: AtomKind::Link { .. },
                ..
            })
        )
    }

    /// True when `id` exists.
    pub fn contains(&self, id: AtomId) -> bool {
        self.atoms.get(id.index()).is_some_and(Option::is_some)
    }

    /// The target tuple of link `id`.
    pub fn targets(&self, id: AtomId) -> Result<&[AtomId]> {
        match &self.atom(id)?.kind {
            AtomKind::Link { targets } => Ok(targets),
            AtomKind::Node => Err(GdmError::InvalidArgument(format!("{id} is a node"))),
        }
    }

    /// Arity (number of targets) of link `id`.
    pub fn arity(&self, id: AtomId) -> Result<usize> {
        Ok(self.targets(id)?.len())
    }

    /// Links whose target tuple contains `id`.
    pub fn incidence(&self, id: AtomId) -> Result<&[AtomId]> {
        Ok(&self.atom(id)?.incidence)
    }

    /// Label text of atom `id`.
    pub fn label(&self, id: AtomId) -> Result<&str> {
        let sym = self.atom(id)?.label;
        Ok(self.interner.resolve(sym).expect("interned"))
    }

    /// Looks up an existing label's symbol.
    pub fn label_symbol(&self, label: &str) -> Option<Symbol> {
        self.interner.get(label)
    }

    /// A property of atom `id`.
    pub fn property(&self, id: AtomId, key: &str) -> Option<&Value> {
        self.atoms.get(id.index())?.as_ref()?.props.get(key)
    }

    /// All properties of atom `id` (None for a dead or unknown atom).
    pub fn properties(&self, id: AtomId) -> Option<&PropertyMap> {
        self.atoms.get(id.index())?.as_ref().map(|a| &a.props)
    }

    /// Sets a property on atom `id`.
    pub fn set_property(&mut self, id: AtomId, key: &str, value: impl Into<Value>) -> Result<()> {
        self.atom(id)?;
        self.atoms[id.index()]
            .as_mut()
            .expect("validated")
            .props
            .set(key, value);
        Ok(())
    }

    /// Number of node atoms.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of link atoms.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// All node atoms, ascending.
    pub fn node_ids(&self) -> Vec<AtomId> {
        self.atom_ids(false)
    }

    /// All link atoms, ascending.
    pub fn link_ids(&self) -> Vec<AtomId> {
        self.atom_ids(true)
    }

    fn atom_ids(&self, links: bool) -> Vec<AtomId> {
        self.atoms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                a.as_ref().and_then(|atom| {
                    (matches!(atom.kind, AtomKind::Link { .. }) == links)
                        .then_some(AtomId(i as u64))
                })
            })
            .collect()
    }

    /// Atoms co-occurring with `id` in at least one link.
    pub fn neighbors(&self, id: AtomId) -> Result<Vec<AtomId>> {
        let mut out = Vec::new();
        for &link in &self.atom(id)?.incidence {
            for &t in self.targets(link)? {
                if t != id && !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        Ok(out)
    }

    /// The binary projection of the hypergraph as a [`GraphView`].
    pub fn two_section(&self) -> TwoSection<'_> {
        TwoSection { graph: self }
    }

    /// Serializes the atom space (tombstones included, so atom ids
    /// survive) to a JSON snapshot.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let dto: SnapshotDto = self
            .atoms
            .iter()
            .map(|slot| {
                slot.as_ref().map(|a| {
                    let label = self.interner.resolve(a.label).expect("interned").to_owned();
                    let targets = match &a.kind {
                        AtomKind::Node => None,
                        AtomKind::Link { targets } => {
                            Some(targets.iter().map(|t| t.raw()).collect())
                        }
                    };
                    (label, a.props.clone(), targets)
                })
            })
            .collect();
        serde_json::to_vec(&dto).expect("snapshot serialization cannot fail")
    }

    /// Restores an atom space from [`HyperGraph::to_snapshot`] bytes.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self> {
        let dto: SnapshotDto = serde_json::from_slice(bytes)
            .map_err(|e| GdmError::Storage(format!("bad hypergraph snapshot: {e}")))?;
        let mut g = HyperGraph::new();
        // Two passes: nodes (and slot reservation) first, then links —
        // a link may target an atom with a higher id.
        let mut pending: Vec<(usize, String, PropertyMap, Vec<u64>)> = Vec::new();
        for (i, slot) in dto.iter().enumerate() {
            match slot {
                Some((label, props, None)) => {
                    g.add_node(label, props.clone());
                }
                Some((label, props, Some(targets))) => {
                    // Reserve the slot with a placeholder node.
                    g.add_node("__pending__", PropertyMap::new());
                    pending.push((i, label.clone(), props.clone(), targets.clone()));
                }
                None => {
                    let a = g.add_node("__tombstone__", PropertyMap::new());
                    g.remove_atom(a, false)?;
                }
            }
        }
        for (slot, label, props, targets) in pending {
            let id = AtomId(slot as u64);
            g.remove_atom(id, false)?;
            g.node_count += 1; // re-occupy the slot as a link
            let sym = g.interner.intern(&label);
            let tids: Vec<AtomId> = targets.into_iter().map(AtomId).collect();
            for &t in &tids {
                g.atom(t)?;
            }
            g.node_count -= 1;
            g.link_count += 1;
            g.atoms[slot] = Some(Atom {
                label: sym,
                props,
                kind: AtomKind::Link {
                    targets: tids.clone(),
                },
                incidence: Vec::new(),
            });
            let mut seen = Vec::new();
            for t in tids {
                if !seen.contains(&t) {
                    g.atoms[t.index()]
                        .as_mut()
                        .expect("validated")
                        .incidence
                        .push(id);
                    seen.push(t);
                }
            }
        }
        Ok(g)
    }

    fn atom(&self, id: AtomId) -> Result<&Atom> {
        self.atoms
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or_else(|| GdmError::NotFound(format!("atom {id}")))
    }
}

/// Binary projection of a [`HyperGraph`]: every *node atom* is a view
/// node and each k-ary link contributes directed edges between its
/// targets in tuple order (`t_i → t_j` for `i < j`), all sharing the
/// link's id and label. Link atoms are not listed as view nodes (the
/// classical 2-section has only vertices), but links that appear as
/// targets of other links still traverse correctly —
/// `contains_node` accepts any live atom.
pub struct TwoSection<'a> {
    graph: &'a HyperGraph,
}

impl GraphView for TwoSection<'_> {
    fn is_directed(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.graph.node_count
    }

    fn edge_count(&self) -> usize {
        self.graph
            .link_ids()
            .into_iter()
            .map(|l| {
                let k = self.graph.arity(l).expect("live link");
                k * (k.saturating_sub(1)) / 2
            })
            .sum()
    }

    fn contains_node(&self, n: NodeId) -> bool {
        self.graph.contains(AtomId(n.raw()))
    }

    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
        for (i, slot) in self.graph.atoms.iter().enumerate() {
            if matches!(slot, Some(atom) if matches!(atom.kind, AtomKind::Node)) {
                f(NodeId(i as u64));
            }
        }
    }

    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        self.visit_pairs(n, true, f);
    }

    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
        self.visit_pairs(n, false, f);
    }

    fn label_text(&self, sym: Symbol) -> Option<&str> {
        self.graph.interner.resolve(sym)
    }
}

impl TwoSection<'_> {
    /// The underlying hypergraph.
    pub fn hypergraph(&self) -> &HyperGraph {
        self.graph
    }

    fn visit_pairs(&self, n: NodeId, forward: bool, f: &mut dyn FnMut(EdgeRef)) {
        let atom_id = AtomId(n.raw());
        let Ok(atom) = self.graph.atom(atom_id) else {
            return;
        };
        for &link in &atom.incidence {
            let Ok(targets) = self.graph.targets(link) else {
                continue;
            };
            let label = self.graph.atom(link).map(|a| a.label).ok();
            for (i, &a) in targets.iter().enumerate() {
                if a != atom_id {
                    continue;
                }
                let range: Box<dyn Iterator<Item = &AtomId>> = if forward {
                    Box::new(targets[i + 1..].iter())
                } else {
                    Box::new(targets[..i].iter())
                };
                for &other in range {
                    if other == atom_id {
                        continue; // repeated occurrences handled per position
                    }
                    f(EdgeRef {
                        id: EdgeId(link.raw()),
                        from: n,
                        to: NodeId(other.raw()),
                        label,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdm_core::props;

    #[test]
    fn nodes_and_binary_links() {
        let mut h = HyperGraph::new();
        let a = h.add_node("person", props! { "name" => "ana" });
        let b = h.add_node("person", props! { "name" => "ben" });
        let l = h.add_link("knows", &[a, b], props! {}).unwrap();
        assert_eq!(h.node_count(), 2);
        assert_eq!(h.link_count(), 1);
        assert!(h.is_link(l));
        assert_eq!(h.targets(l).unwrap(), &[a, b]);
        assert_eq!(h.neighbors(a).unwrap(), vec![b]);
    }

    #[test]
    fn higher_order_relation() {
        // The paper motivates hypergraphs with higher-order relations:
        // a ternary "reaction" relating enzyme, substrate, product.
        let mut h = HyperGraph::new();
        let enzyme = h.add_node("protein", props! { "name" => "kinase" });
        let substrate = h.add_node("molecule", props! { "name" => "atp" });
        let product = h.add_node("molecule", props! { "name" => "adp" });
        let r = h
            .add_link("reaction", &[enzyme, substrate, product], props! {})
            .unwrap();
        assert_eq!(h.arity(r).unwrap(), 3);
        let n = h.neighbors(substrate).unwrap();
        assert!(n.contains(&enzyme) && n.contains(&product));
    }

    #[test]
    fn links_on_links() {
        // Table III's "edges between edges": annotate a relation.
        let mut h = HyperGraph::new();
        let a = h.add_node("n", props! {});
        let b = h.add_node("n", props! {});
        let knows = h.add_link("knows", &[a, b], props! {}).unwrap();
        let src = h.add_node("source", props! { "name" => "survey" });
        let provenance = h
            .add_link("derived_from", &[knows, src], props! {})
            .unwrap();
        assert!(h.is_link(provenance));
        assert_eq!(h.incidence(knows).unwrap(), &[provenance]);
    }

    #[test]
    fn remove_refuses_then_cascades() {
        let mut h = HyperGraph::new();
        let a = h.add_node("n", props! {});
        let b = h.add_node("n", props! {});
        let l = h.add_link("rel", &[a, b], props! {}).unwrap();
        let meta = h.add_link("meta", &[l], props! {}).unwrap();
        assert!(h.remove_atom(a, false).is_err());
        h.remove_atom(a, true).unwrap();
        assert!(!h.contains(a));
        assert!(!h.contains(l), "referencing link removed");
        assert!(!h.contains(meta), "cascade is transitive");
        assert!(h.contains(b));
        assert_eq!(h.incidence(b).unwrap().len(), 0);
    }

    #[test]
    fn two_section_projects_links_to_edges() {
        let mut h = HyperGraph::new();
        let a = h.add_node("n", props! {});
        let b = h.add_node("n", props! {});
        let c = h.add_node("n", props! {});
        h.add_link("team", &[a, b, c], props! {}).unwrap();
        let view = h.two_section();
        assert_eq!(view.edge_count(), 3); // 3 choose 2
        let out_a: Vec<_> = view.out_edges(NodeId(a.raw()));
        assert_eq!(out_a.len(), 2); // a→b, a→c
        assert_eq!(view.in_degree(NodeId(c.raw())), 2);
    }

    #[test]
    fn two_section_resolves_labels() {
        let mut h = HyperGraph::new();
        let a = h.add_node("n", props! {});
        let b = h.add_node("n", props! {});
        h.add_link("collab", &[a, b], props! {}).unwrap();
        let view = h.two_section();
        let e = view.out_edges(NodeId(a.raw()));
        assert_eq!(view.label_text(e[0].label.unwrap()), Some("collab"));
    }

    #[test]
    fn properties_on_atoms() {
        let mut h = HyperGraph::new();
        let a = h.add_node("n", props! { "x" => 1 });
        h.set_property(a, "x", 2).unwrap();
        assert_eq!(h.property(a, "x"), Some(&Value::from(2)));
        assert_eq!(h.label(a).unwrap(), "n");
    }

    #[test]
    fn empty_links_are_rejected() {
        let mut h = HyperGraph::new();
        assert!(h.add_link("empty", &[], props! {}).is_err());
        let missing = AtomId(99);
        let a = h.add_node("n", props! {});
        assert!(h.add_link("dangling", &[a, missing], props! {}).is_err());
    }
}
