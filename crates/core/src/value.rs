//! The attribute value model shared by every graph structure and query
//! dialect.
//!
//! The paper's attributed graphs attach property values to nodes and
//! edges; its query languages filter and aggregate over those values.
//! [`Value`] is the common currency: a small dynamically typed scalar
//! (plus lists, used for paths and multi-valued attributes).

use crate::error::{GdmError, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed attribute or query value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a value. `Null` compares equal only to itself here;
    /// query dialects implement their own null semantics on top.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list, used for multi-valued attributes and query results
    /// such as paths.
    List(Vec<Value>),
}

impl Value {
    /// Short name of the value's type, for error messages and the type
    /// checking integrity constraint.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
        }
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interprets the value as an integer if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats, everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interprets the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as a list slice if it is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// A total order over all values, used by index keys and `ORDER BY`.
    ///
    /// Values of different types order by a fixed type rank
    /// (null < bool < numbers < string < list); numbers of both kinds
    /// compare numerically; floats use IEEE `total_cmp` so `NaN` has a
    /// stable position instead of poisoning sorts.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                List(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Partial comparison with numeric coercion, used by query filters
    /// (`a.age > 30`). Cross-type comparisons other than int/float are
    /// not defined and return `None`.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Loose equality with int/float coercion, used by query filters.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) => (*a as f64) == *b,
            (Value::Float(a), Value::Int(b)) => *a == (*b as f64),
            (a, b) => a == b,
        }
    }

    /// Addition for query expressions: numeric addition, string
    /// concatenation, list concatenation.
    pub fn add(&self, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Ok(Int(a.wrapping_add(*b))),
            (Str(a), Str(b)) => Ok(Str(format!("{a}{b}"))),
            (List(a), List(b)) => {
                let mut v = a.clone();
                v.extend(b.iter().cloned());
                Ok(List(v))
            }
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Float(a + b)),
                _ => Err(type_err("number, string, or list", self, other)),
            },
        }
    }

    /// Subtraction for query expressions.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, i64::wrapping_sub, |a, b| a - b)
    }

    /// Multiplication for query expressions.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, i64::wrapping_mul, |a, b| a * b)
    }

    /// Division for query expressions; integer division by zero is an
    /// error, float division follows IEEE.
    pub fn div(&self, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Int(_), Int(0)) => Err(GdmError::InvalidArgument("division by zero".into())),
            (Int(a), Int(b)) => Ok(Int(a / b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Float(a / b)),
                _ => Err(type_err("number", self, other)),
            },
        }
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: fn(i64, i64) -> i64,
    float_op: fn(f64, f64) -> f64,
) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(int_op(*x, *y))),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Value::Float(float_op(x, y))),
            _ => Err(type_err("number", a, b)),
        },
    }
}

fn type_err(expected: &'static str, a: &Value, b: &Value) -> GdmError {
    GdmError::Type {
        expected,
        got: format!("{} and {}", a.type_name(), b.type_name()),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::from(1).type_name(), "int");
        assert_eq!(Value::from(1.5).type_name(), "float");
        assert_eq!(Value::from("x").type_name(), "string");
    }

    #[test]
    fn total_cmp_orders_across_types() {
        let mut vs = vec![
            Value::from("b"),
            Value::Null,
            Value::from(2),
            Value::from(true),
            Value::from(1.5),
        ];
        vs.sort_by(Value::total_cmp);
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::from(true),
                Value::from(1.5),
                Value::from(2),
                Value::from("b"),
            ]
        );
    }

    #[test]
    fn total_cmp_handles_nan() {
        let nan = Value::Float(f64::NAN);
        // total_cmp is antisymmetric and reflexive even for NaN.
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_ne!(nan.total_cmp(&Value::from(0.0)), Ordering::Equal);
    }

    #[test]
    fn compare_coerces_numerics() {
        assert_eq!(
            Value::from(1).compare(&Value::from(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::from(2).compare(&Value::from(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::from(1).compare(&Value::from("x")), None);
    }

    #[test]
    fn loose_eq_coerces() {
        assert!(Value::from(3).loose_eq(&Value::from(3.0)));
        assert!(!Value::from(3).loose_eq(&Value::from("3")));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::from(2).add(&Value::from(3)).unwrap(), Value::from(5));
        assert_eq!(
            Value::from("a").add(&Value::from("b")).unwrap(),
            Value::from("ab")
        );
        assert_eq!(
            Value::from(2).mul(&Value::from(2.5)).unwrap(),
            Value::from(5.0)
        );
        assert_eq!(Value::from(7).sub(&Value::from(2)).unwrap(), Value::from(5));
        assert_eq!(Value::from(7).div(&Value::from(2)).unwrap(), Value::from(3));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(Value::from(1).div(&Value::from(0)).is_err());
        // Float division by zero is IEEE infinity, not an error.
        let v = Value::from(1.0).div(&Value::from(0.0)).unwrap();
        assert_eq!(v.as_f64(), Some(f64::INFINITY));
    }

    #[test]
    fn adding_incompatible_types_is_a_type_error() {
        let err = Value::from(true).add(&Value::from(1)).unwrap_err();
        assert!(matches!(err, GdmError::Type { .. }));
    }

    #[test]
    fn display_is_human_readable() {
        let v = Value::List(vec![Value::from(1), Value::from("a")]);
        assert_eq!(v.to_string(), "[1, a]");
    }

    #[test]
    fn list_total_cmp_is_lexicographic() {
        let a = Value::List(vec![Value::from(1), Value::from(2)]);
        let b = Value::List(vec![Value::from(1), Value::from(3)]);
        let c = Value::List(vec![Value::from(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }
}
