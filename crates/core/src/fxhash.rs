//! An in-tree implementation of the Fx hash algorithm (the hasher used
//! throughout rustc), so maps keyed by dense ids avoid SipHash overhead
//! without adding a dependency outside the approved set.
//!
//! The algorithm folds each 8-byte chunk into the state with a rotate,
//! xor, and multiply by a fixed odd constant. It is *not* HashDoS
//! resistant; every use in this workspace keys on internally generated
//! ids or interned symbols, never on attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state. Construct through `FxHashMap::default()`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_hash() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello graph databases");
        b.write(b"hello graph databases");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_contribute() {
        // Inputs that differ only in the non-8-aligned tail must hash
        // differently.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"12345678abc");
        b.write(b"12345678abd");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // Sanity check that sequential ids do not all collide mod a
        // small power of two once hashed.
        let mut buckets = [0usize; 16];
        for i in 0..1600u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 16) as usize] += 1;
        }
        // Perfectly uniform would be 100 per bucket; accept a wide band.
        assert!(buckets.iter().all(|&c| c > 20 && c < 400), "{buckets:?}");
    }
}
