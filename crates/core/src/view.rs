//! The read abstraction the essential-query algorithms are generic over.
//!
//! Section IV of the paper evaluates every database against the same
//! essential queries; to mirror that, `gdm-algo` implements each query
//! once, generically over [`GraphView`], and every structure — simple,
//! attributed, RDF, hypergraph (via its 2-section), nested (via its
//! flattening), partitioned — exposes this view.
//!
//! The primitive operations are callback visitors rather than returned
//! iterators so implementations need neither boxed iterators (an
//! allocation per node visited) nor generic associated types; traversal
//! inner loops stay allocation-free.

use crate::id::{EdgeId, NodeId};
use crate::intern::Symbol;
use crate::value::Value;

/// Direction of traversal relative to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges from source to target.
    Outgoing,
    /// Follow edges from target to source.
    Incoming,
    /// Follow edges both ways.
    Both,
}

/// A lightweight edge descriptor flowing through traversals.
///
/// `from` is always the endpoint the traversal came from, and `to` the
/// endpoint it leads to — for undirected graphs and incoming-direction
/// visits, implementations orient the pair accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// The edge's identity.
    pub id: EdgeId,
    /// Endpoint the visit started from.
    pub from: NodeId,
    /// Endpoint the edge leads to.
    pub to: NodeId,
    /// Interned edge label, if the structure labels edges.
    pub label: Option<Symbol>,
}

impl EdgeRef {
    /// Constructs an unlabeled edge reference.
    pub fn new(id: EdgeId, from: NodeId, to: NodeId) -> Self {
        Self {
            id,
            from,
            to,
            label: None,
        }
    }

    /// Constructs a labeled edge reference.
    pub fn labeled(id: EdgeId, from: NodeId, to: NodeId, label: Symbol) -> Self {
        Self {
            id,
            from,
            to,
            label: Some(label),
        }
    }
}

/// Minimal read view of a graph: enough for adjacency, reachability,
/// pattern matching, and summarization queries.
pub trait GraphView {
    /// True when edges are directed.
    fn is_directed(&self) -> bool;

    /// Number of nodes — the paper's *order* of the graph.
    fn node_count(&self) -> usize;

    /// Number of edges — the paper's *size* of the graph.
    fn edge_count(&self) -> usize;

    /// True when `n` exists.
    fn contains_node(&self, n: NodeId) -> bool;

    /// Visits every node id.
    fn visit_nodes(&self, f: &mut dyn FnMut(NodeId));

    /// Visits the edges leaving `n` (for undirected graphs: all
    /// incident edges, oriented with `from == n`).
    fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef));

    /// Visits the edges arriving at `n` (for undirected graphs: all
    /// incident edges, oriented with `from == n`), oriented with
    /// `from == n` so traversal code can always step to `to`.
    fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef));

    /// Resolves an interned label to text.
    fn label_text(&self, sym: Symbol) -> Option<&str>;

    // ---- provided conveniences ------------------------------------

    /// Visits edges in the given `direction`. For undirected graphs all
    /// directions visit the same incident set.
    fn visit_edges_dir(&self, n: NodeId, direction: Direction, f: &mut dyn FnMut(EdgeRef)) {
        match direction {
            Direction::Outgoing => self.visit_out_edges(n, f),
            Direction::Incoming => self.visit_in_edges(n, f),
            Direction::Both => {
                if self.is_directed() {
                    self.visit_out_edges(n, f);
                    self.visit_in_edges(n, f);
                } else {
                    // Undirected: out already covers every incident edge.
                    self.visit_out_edges(n, f);
                }
            }
        }
    }

    /// Collects all node ids (allocates; convenience for non-hot paths).
    fn node_ids(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.node_count());
        self.visit_nodes(&mut |n| v.push(n));
        v
    }

    /// Collects the outgoing edges of `n`.
    fn out_edges(&self, n: NodeId) -> Vec<EdgeRef> {
        let mut v = Vec::new();
        self.visit_out_edges(n, &mut |e| v.push(e));
        v
    }

    /// Collects the incoming edges of `n`.
    fn in_edges(&self, n: NodeId) -> Vec<EdgeRef> {
        let mut v = Vec::new();
        self.visit_in_edges(n, &mut |e| v.push(e));
        v
    }

    /// Collects the distinct forward neighbors of `n` (duplicates from
    /// parallel edges removed, order preserved).
    fn out_neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut v = Vec::new();
        self.visit_out_edges(n, &mut |e| {
            if !v.contains(&e.to) {
                v.push(e.to);
            }
        });
        v
    }

    /// Out-degree of `n` counting parallel edges.
    fn out_degree(&self, n: NodeId) -> usize {
        let mut d = 0;
        self.visit_out_edges(n, &mut |_| d += 1);
        d
    }

    /// In-degree of `n` counting parallel edges.
    fn in_degree(&self, n: NodeId) -> usize {
        let mut d = 0;
        self.visit_in_edges(n, &mut |_| d += 1);
        d
    }

    /// Total degree: in + out for directed graphs, incident count for
    /// undirected ones.
    fn degree(&self, n: NodeId) -> usize {
        if self.is_directed() {
            self.out_degree(n) + self.in_degree(n)
        } else {
            self.out_degree(n)
        }
    }
}

/// Structures whose nodes/edges carry labels and attribute values —
/// what pattern matching needs beyond raw adjacency.
pub trait AttributedView: GraphView {
    /// Primary label of a node, if the structure labels nodes.
    fn node_label(&self, n: NodeId) -> Option<Symbol>;

    /// Value of a node property.
    fn node_property(&self, n: NodeId, key: &str) -> Option<Value>;

    /// Value of an edge property.
    fn edge_property(&self, e: EdgeId, key: &str) -> Option<Value>;

    // ---- optional enumeration -------------------------------------

    /// Visits every property of node `n`. Structures that can enumerate
    /// their property maps override this so snapshot builders can copy
    /// attributes without knowing key names; the default visits nothing
    /// (point lookups via [`AttributedView::node_property`] still work).
    fn visit_node_properties(&self, n: NodeId, f: &mut dyn FnMut(&str, &Value)) {
        let _ = (n, f);
    }

    /// Visits every property of edge `e` (see
    /// [`AttributedView::visit_node_properties`]).
    fn visit_edge_properties(&self, e: EdgeId, f: &mut dyn FnMut(&str, &Value)) {
        let _ = (e, f);
    }

    // ---- candidate enumeration (query planning) -------------------

    /// All nodes satisfying a label constraint and a conjunction of
    /// property equality constraints (loose equality, missing
    /// properties never match), ascending by id — the candidate set a
    /// pattern variable with these constraints may bind.
    ///
    /// The default implementation is a full scan; structures with
    /// label or property value indexes override it (and
    /// [`AttributedView::candidate_estimate`]) so the query planner
    /// can seed pattern matching from index lookups instead.
    fn candidates(&self, label: Option<&str>, props: &[(String, Value)]) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.visit_nodes(&mut |n| {
            if let Some(want) = label {
                let ok = self
                    .node_label(n)
                    .and_then(|sym| self.label_text(sym))
                    .is_some_and(|t| t == want);
                if !ok {
                    return;
                }
            }
            let props_ok = props.iter().all(|(key, want)| {
                self.node_property(n, key)
                    .is_some_and(|got| got.loose_eq(want))
            });
            if props_ok {
                out.push(n);
            }
        });
        out
    }

    /// Upper bound on `candidates(label, props).len()` obtainable from
    /// an index, without scanning. `None` means no index covers any of
    /// the constraints and only a full scan can answer — the planner
    /// uses this to choose index seeding vs scanning per variable.
    /// The default (no indexes) is `None`.
    fn candidate_estimate(&self, label: Option<&str>, props: &[(String, Value)]) -> Option<usize> {
        let _ = (label, props);
        None
    }

    /// All nodes whose property `key` lies in the inclusive range
    /// `[low, high]` (either bound optional), ascending by id —
    /// answered from an *ordered* index, never by scanning. `None`
    /// means no ordered index covers `key` and only a scan can answer.
    ///
    /// The bounds are loose the way ordered indexes are: inclusive on
    /// both ends and number-family unified (an integer bound also
    /// bounds floats). Callers seeding candidate domains from this —
    /// the planner's range-predicate pushdown — must therefore
    /// re-apply their exact predicate afterwards; the result only
    /// ever *over*-approximates, it never drops a node whose value
    /// lies strictly inside the range. The default (no ordered
    /// indexes) is `None`.
    fn range_candidates(
        &self,
        key: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<NodeId>> {
        let _ = (key, low, high);
        None
    }

    /// The `(from, to)` endpoint pairs of every edge whose property
    /// `key` lies in the inclusive range `[low, high]`, answered from
    /// an ordered index over *edge* attributes. Bounds are loose the
    /// same way [`AttributedView::range_candidates`]' are (inclusive,
    /// number-family unified), so the result over-approximates and
    /// callers must re-apply the exact predicate per edge. `None`
    /// means no ordered edge index covers `key`. The default (no edge
    /// indexes) is `None`.
    fn edge_range_candidates(
        &self,
        key: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Option<Vec<(NodeId, NodeId)>> {
        let _ = (key, low, high);
        None
    }

    // ---- batch execution (vectorized backend) ---------------------

    /// Downcast hook for batch-at-a-time execution. A view backed by a
    /// dense columnar snapshot returns `Some(self)` here so the query
    /// layer can recover the concrete type (via `Any::downcast_ref`)
    /// and run its vectorized operator pipeline directly against the
    /// snapshot's arrays, bypassing per-node dynamic dispatch. Views
    /// without a columnar backing return `None` (the default) and
    /// execute through the generic row-at-a-time matcher.
    fn batch_backend(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Structures whose edges carry numeric weights, used by the weighted
/// shortest-path query. The default weight of 1.0 makes every
/// `GraphView` usable with Dijkstra.
pub trait WeightedView: GraphView {
    /// Weight of edge `e`; implementations should return 1.0 when the
    /// edge has no explicit weight.
    fn edge_weight(&self, e: &EdgeRef) -> f64 {
        let _ = e;
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    /// A tiny hand-rolled view used to exercise the provided methods.
    struct Diamond {
        interner: Interner,
    }
    // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, plus a parallel 0 -> 1.
    const EDGES: &[(u64, u64)] = &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 1)];

    impl GraphView for Diamond {
        fn is_directed(&self) -> bool {
            true
        }
        fn node_count(&self) -> usize {
            4
        }
        fn edge_count(&self) -> usize {
            EDGES.len()
        }
        fn contains_node(&self, n: NodeId) -> bool {
            n.raw() < 4
        }
        fn visit_nodes(&self, f: &mut dyn FnMut(NodeId)) {
            (0..4).for_each(|i| f(NodeId(i)));
        }
        fn visit_out_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
            for (i, &(a, b)) in EDGES.iter().enumerate() {
                if a == n.raw() {
                    f(EdgeRef::new(EdgeId(i as u64), NodeId(a), NodeId(b)));
                }
            }
        }
        fn visit_in_edges(&self, n: NodeId, f: &mut dyn FnMut(EdgeRef)) {
            for (i, &(a, b)) in EDGES.iter().enumerate() {
                if b == n.raw() {
                    f(EdgeRef::new(EdgeId(i as u64), NodeId(b), NodeId(a)));
                }
            }
        }
        fn label_text(&self, sym: Symbol) -> Option<&str> {
            self.interner.resolve(sym)
        }
    }

    fn diamond() -> Diamond {
        Diamond {
            interner: Interner::new(),
        }
    }

    #[test]
    fn provided_out_neighbors_dedupes_parallel_edges() {
        let g = diamond();
        assert_eq!(g.out_neighbors(NodeId(0)), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn degrees_count_parallel_edges() {
        let g = diamond();
        assert_eq!(g.out_degree(NodeId(0)), 3); // two to n1, one to n2
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.degree(NodeId(1)), 3); // in: 2 parallel, out: 1
    }

    #[test]
    fn node_ids_collects_everything() {
        let g = diamond();
        assert_eq!(g.node_ids().len(), 4);
    }

    #[test]
    fn both_direction_unions_in_and_out() {
        let g = diamond();
        let mut seen = Vec::new();
        g.visit_edges_dir(NodeId(1), Direction::Both, &mut |e| seen.push(e.to));
        // Out: n3. In (oriented from n1): n0 twice (parallel edge).
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&NodeId(3)));
        assert!(seen.contains(&NodeId(0)));
    }

    #[test]
    fn in_edges_are_oriented_from_the_queried_node() {
        let g = diamond();
        for e in g.in_edges(NodeId(3)) {
            assert_eq!(e.from, NodeId(3));
        }
    }
}
