//! Opaque identifiers for nodes, edges, and graphs.
//!
//! The surveyed databases differ in how they identify entities (the
//! paper's Table IV distinguishes *object nodes* identified by an
//! object-ID from *value nodes* identified by a primitive value). The
//! identifier types here are the object-ID half of that story: dense
//! `u64` newtypes handed out by each structure's allocator.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric form of the identifier.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }

            /// Returns the identifier as a usable array/slot index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(v: u64) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a node (vertex) within one graph structure.
    NodeId,
    "n"
);
define_id!(
    /// Identifier of an edge (binary or hyper) within one graph structure.
    EdgeId,
    "e"
);
define_id!(
    /// Identifier of a graph, used by nested graphs (hypernodes own
    /// subgraphs) and by the partitioned store (one graph per shard).
    GraphId,
    "g"
);

/// A monotonically increasing id allocator shared by the in-memory
/// structures. Deleted ids are not reused, which keeps identity stable —
/// the property the paper's *node/edge identity* constraint asks for.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator that starts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator that will hand out ids starting at `next`.
    /// Used when reloading a persisted structure.
    pub fn starting_at(next: u64) -> Self {
        Self { next }
    }

    /// Allocates the next raw id.
    #[inline]
    pub fn allocate(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// The id the next call to [`IdAllocator::allocate`] will return.
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// Informs the allocator that `id` exists, bumping the watermark so
    /// future allocations never collide with it.
    pub fn observe(&mut self, id: u64) {
        if id >= self.next {
            self.next = id + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(EdgeId(0).to_string(), "e0");
        assert_eq!(GraphId(42).to_string(), "g42");
    }

    #[test]
    fn ids_round_trip_raw() {
        let n = NodeId::from(123);
        assert_eq!(n.raw(), 123);
        assert_eq!(n.index(), 123);
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut a = IdAllocator::new();
        assert_eq!(a.allocate(), 0);
        assert_eq!(a.allocate(), 1);
        assert_eq!(a.peek(), 2);
    }

    #[test]
    fn allocator_observe_bumps_watermark() {
        let mut a = IdAllocator::new();
        a.observe(10);
        assert_eq!(a.allocate(), 11);
        a.observe(5); // below watermark: no effect
        assert_eq!(a.allocate(), 12);
    }

    #[test]
    fn allocator_starting_at_resumes() {
        let mut a = IdAllocator::starting_at(100);
        assert_eq!(a.allocate(), 100);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        let mut v = vec![NodeId(3), NodeId(1), NodeId(2)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }
}
