//! The cell values of the paper's comparison tables.
//!
//! The paper renders full support as `•`, partial support as `◦`, and
//! no support as an empty cell (Table V caption: "• indicates support,
//! and ◦ partial support").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Support level of one feature in one system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Support {
    /// Empty cell: the feature is absent.
    None,
    /// `◦`: the feature exists in a restricted or immature form.
    Partial,
    /// `•`: the feature is supported.
    Full,
}

impl Support {
    /// The paper's glyph for this support level.
    pub fn glyph(self) -> &'static str {
        match self {
            Support::Full => "•",
            Support::Partial => "◦",
            Support::None => "",
        }
    }

    /// An ASCII-safe glyph for environments without Unicode.
    pub fn ascii(self) -> &'static str {
        match self {
            Support::Full => "*",
            Support::Partial => "o",
            Support::None => "",
        }
    }

    /// True for [`Support::Full`] or [`Support::Partial`].
    pub fn is_supported(self) -> bool {
        self != Support::None
    }

    /// Collapses a probe outcome to a support level: `Ok` ⇒ full,
    /// unsupported-error ⇒ none. Other errors are surfaced because a
    /// crash is a bug in the harness, not a missing feature.
    pub fn from_probe<T>(result: &crate::error::Result<T>) -> Self {
        match result {
            Ok(_) => Support::Full,
            Err(e) if e.is_unsupported() => Support::None,
            Err(e) => panic!("probe failed with a non-capability error: {e}"),
        }
    }
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.glyph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GdmError;

    #[test]
    fn glyphs_match_the_paper() {
        assert_eq!(Support::Full.glyph(), "•");
        assert_eq!(Support::Partial.glyph(), "◦");
        assert_eq!(Support::None.glyph(), "");
    }

    #[test]
    fn supported_predicate() {
        assert!(Support::Full.is_supported());
        assert!(Support::Partial.is_supported());
        assert!(!Support::None.is_supported());
    }

    #[test]
    fn probe_ok_is_full() {
        let r: crate::error::Result<u32> = Ok(1);
        assert_eq!(Support::from_probe(&r), Support::Full);
    }

    #[test]
    fn probe_unsupported_is_none() {
        let r: crate::error::Result<u32> = Err(GdmError::unsupported("x", "y"));
        assert_eq!(Support::from_probe(&r), Support::None);
    }

    #[test]
    #[should_panic(expected = "non-capability error")]
    fn probe_real_error_panics() {
        let r: crate::error::Result<u32> = Err(GdmError::Storage("corrupt".into()));
        let _ = Support::from_probe(&r);
    }

    #[test]
    fn ordering_none_lt_partial_lt_full() {
        assert!(Support::None < Support::Partial);
        assert!(Support::Partial < Support::Full);
    }
}
