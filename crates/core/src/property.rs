//! Property maps: the `attributes` of the paper's attributed graphs.
//!
//! A [`PropertyMap`] is a small, deterministic (sorted-key) map from
//! property name to [`Value`]. Determinism matters: table rendering and
//! query result ordering must be stable across runs for the
//! reproduction harness to be diffable.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::btree_map::{self, BTreeMap};
use std::fmt;

/// A sorted map from property name to value.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyMap {
    entries: BTreeMap<String, Value>,
}

impl PropertyMap {
    /// Creates an empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value`, returning the previous value if any.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.entries.insert(key.into(), value.into())
    }

    /// Gets the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no properties.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> btree_map::Iter<'_, String, Value> {
        self.entries.iter()
    }

    /// Iterates property names in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Builder-style insertion, for literals in tests and examples.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }
}

impl fmt::Display for PropertyMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for PropertyMap {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a PropertyMap {
    type Item = (&'a String, &'a Value);
    type IntoIter = btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Builds a [`PropertyMap`] from `key => value` pairs.
///
/// ```
/// use gdm_core::{props, Value};
/// let p = props! { "name" => "alice", "age" => 30 };
/// assert_eq!(p.get("age"), Some(&Value::Int(30)));
/// ```
#[macro_export]
macro_rules! props {
    () => { $crate::PropertyMap::new() };
    ($($key:expr => $value:expr),+ $(,)?) => {{
        let mut map = $crate::PropertyMap::new();
        $(map.set($key, $value);)+
        map
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut p = PropertyMap::new();
        assert!(p.set("a", 1).is_none());
        assert_eq!(p.set("a", 2), Some(Value::Int(1)));
        assert_eq!(p.get("a"), Some(&Value::Int(2)));
        assert_eq!(p.remove("a"), Some(Value::Int(2)));
        assert!(p.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let p = props! { "z" => 1, "a" => 2, "m" => 3 };
        let keys: Vec<_> = p.keys().collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn display_format() {
        let p = props! { "name" => "bob", "age" => 4 };
        assert_eq!(p.to_string(), "{age: 4, name: bob}");
    }

    #[test]
    fn builder_style() {
        let p = PropertyMap::new().with("x", 1).with("y", "two");
        assert_eq!(p.len(), 2);
        assert_eq!(p.get("y"), Some(&Value::Str("two".into())));
    }

    #[test]
    fn empty_macro() {
        let p = props! {};
        assert!(p.is_empty());
    }
}
