//! String interning for labels, type names, and property keys.
//!
//! Every graph structure carries an [`Interner`]; labels travel through
//! the system as 4-byte [`Symbol`]s and are resolved back to text only
//! at the edges (query results, table rendering). This keeps `EdgeRef`
//! small and label comparison O(1), which matters because the essential
//! reachability queries compare edge labels in their inner loop.

use crate::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An interned string. Only meaningful together with the [`Interner`]
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index form.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A bidirectional string ↔ [`Symbol`] table.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning its symbol. Repeated calls with equal
    /// text return equal symbols.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&id) = self.lookup.get(text) {
            return Symbol(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        let boxed: Box<str> = text.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, id);
        Symbol(id)
    }

    /// Looks a string up without interning it.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.lookup.get(text).copied().map(Symbol)
    }

    /// Resolves a symbol back to its text. Returns `None` for symbols
    /// from a different interner (index out of range).
    pub fn resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.0 as usize).map(AsRef::as_ref)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("KNOWS");
        let b = i.intern("KNOWS");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("KNOWS");
        let b = i.intern("LIKES");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), Some("KNOWS"));
        assert_eq!(i.resolve(b), Some("LIKES"));
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("X"), None);
        let s = i.intern("X");
        assert_eq!(i.get("X"), Some(s));
    }

    #[test]
    fn resolve_out_of_range_is_none() {
        let i = Interner::new();
        assert_eq!(i.resolve(Symbol(99)), None);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let all: Vec<_> = i.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(all, vec!["a", "b"]);
    }
}
