//! # gdm-core
//!
//! Core vocabulary for the graph-database-model comparison library, the
//! executable reproduction of *"A Comparison of Current Graph Database
//! Models"* (Angles, ICDE/GDM 2012).
//!
//! This crate holds the types every other crate speaks:
//!
//! * [`NodeId`] / [`EdgeId`] / [`GraphId`] — opaque identifiers,
//! * [`Value`] and [`PropertyMap`] — the attribute value model,
//! * [`Symbol`] and [`Interner`] — interned labels and property keys,
//! * [`GraphView`] — the minimal read abstraction all essential-query
//!   algorithms are generic over,
//! * [`GdmError`] — the shared error type, including the
//!   [`GdmError::Unsupported`] variant the comparison harness probes for,
//! * [`Support`] — the `•` / `◦` / blank cell values of the paper's tables,
//! * [`fxhash`] — an in-tree Fx-style hasher so hot maps keyed by ids do
//!   not pay SipHash costs (see DESIGN.md §6).

pub mod delta;
pub mod error;
pub mod fxhash;
pub mod id;
pub mod intern;
pub mod property;
pub mod support;
pub mod value;
pub mod view;

pub use delta::{DeltaTracker, FreezeDelta};
pub use error::{GdmError, InterruptReason, Result};
pub use fxhash::{FxHashMap, FxHashSet};
pub use id::{EdgeId, GraphId, NodeId};
pub use intern::{Interner, Symbol};
pub use property::PropertyMap;
pub use support::Support;
pub use value::Value;
pub use view::{AttributedView, Direction, EdgeRef, GraphView, WeightedView};
