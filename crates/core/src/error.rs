//! The shared error type.
//!
//! The variant that matters most to the reproduction is
//! [`GdmError::Unsupported`]: engine emulations return it for every
//! operation the real 2012-era product did not provide, and the
//! comparison harness in `gdm-compare` turns those refusals into the
//! blank cells of the paper's tables. Features the paper marks `◦`
//! (partial support) succeed but are flagged through
//! [`Support::Partial`](crate::Support) in the engine descriptor.

use std::fmt;
use std::io;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GdmError>;

/// Why a governed execution stopped before completing (see
/// [`GdmError::Interrupted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// The wall-clock deadline elapsed.
    Deadline,
    /// A resource budget (node/edge visits or emitted rows) ran out.
    Budget,
    /// The caller's cancel token was triggered.
    Cancelled,
    /// The query's tenant exhausted its shared-pool credit allowance —
    /// the multi-tenant fairness signal. Unlike [`Self::Budget`] (a
    /// per-query ceiling), this means *other* tenants' traffic is
    /// being protected; retrying after the next refill may succeed.
    Throttled,
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::Deadline => write!(f, "deadline exceeded"),
            InterruptReason::Budget => write!(f, "budget exhausted"),
            InterruptReason::Cancelled => write!(f, "cancelled"),
            InterruptReason::Throttled => write!(f, "tenant allowance exhausted"),
        }
    }
}

/// Errors produced anywhere in the library.
#[derive(Debug)]
pub enum GdmError {
    /// The engine does not implement this feature — the probe signal for
    /// the comparison tables.
    Unsupported {
        /// Name of the engine refusing the operation.
        engine: &'static str,
        /// Human-readable feature description, e.g. `"query language"`.
        feature: String,
    },
    /// A query text failed to parse.
    Parse {
        /// Which dialect's parser rejected the text.
        dialect: &'static str,
        /// What went wrong.
        message: String,
        /// Byte offset in the source text where the error was detected.
        position: usize,
    },
    /// A schema definition was malformed or inconsistent.
    Schema(String),
    /// An integrity constraint rejected an update (Table VI machinery).
    Constraint(String),
    /// A storage substrate failed (page corruption, full page, ...).
    Storage(String),
    /// An underlying I/O failure.
    Io(io::Error),
    /// A referenced entity does not exist.
    NotFound(String),
    /// A caller-supplied argument was invalid.
    InvalidArgument(String),
    /// A value had the wrong type for the requested operation.
    Type {
        /// What the operation required.
        expected: &'static str,
        /// What it was given.
        got: String,
    },
    /// A bounded search (e.g. regular *simple* path enumeration, which
    /// is NP-complete in general) exhausted its budget.
    ///
    /// This is the **legacy alias path** for interruption: it predates
    /// the query governor and is kept for the per-call step budgets of
    /// `fixed_length_paths`/`regular_simple_paths`. Governed execution
    /// reports the structured [`GdmError::Interrupted`] instead;
    /// [`GdmError::normalized`] folds this variant into that form and
    /// [`GdmError::is_interrupted`] matches both.
    BudgetExhausted(String),
    /// The operation is supported by the engine but refused in durable
    /// mode because the write-ahead journal has no stable encoding for
    /// it — replaying it after a crash would be impossible, so durable
    /// engines reject it up front instead of silently losing it.
    /// Distinct from [`GdmError::Unsupported`]: that records a 2012
    /// product's missing feature, this records a limitation of the
    /// reproduction's own journaling subsystem.
    NotJournalable {
        /// Name of the engine refusing the operation.
        engine: &'static str,
        /// The refused facade operation, e.g. `"define_node_type"`.
        op: String,
        /// Which encoding is missing and where that is tracked.
        detail: String,
    },
    /// A governed execution was stopped cooperatively by its
    /// [`ExecutionGuard`](https://docs.rs/gdm-govern) — by deadline,
    /// budget, or cancellation — after producing `partial` results.
    Interrupted {
        /// What tripped the guard.
        reason: InterruptReason,
        /// Number of result rows produced before the interrupt (the
        /// caller may have received them through an output sink).
        partial: u64,
    },
}

impl GdmError {
    /// Convenience constructor for [`GdmError::Unsupported`].
    pub fn unsupported(engine: &'static str, feature: impl Into<String>) -> Self {
        GdmError::Unsupported {
            engine,
            feature: feature.into(),
        }
    }

    /// True when the error means "this engine lacks the feature", which
    /// the table-probing harness maps to an empty cell.
    pub fn is_unsupported(&self) -> bool {
        matches!(self, GdmError::Unsupported { .. })
    }

    /// Convenience constructor for [`GdmError::NotJournalable`].
    pub fn not_journalable(
        engine: &'static str,
        op: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        GdmError::NotJournalable {
            engine,
            op: op.into(),
            detail: detail.into(),
        }
    }

    /// True when the error is a durable-mode journaling limitation
    /// (see [`GdmError::NotJournalable`]).
    pub fn is_not_journalable(&self) -> bool {
        matches!(self, GdmError::NotJournalable { .. })
    }

    /// Convenience constructor for [`GdmError::Interrupted`].
    pub fn interrupted(reason: InterruptReason, partial: u64) -> Self {
        GdmError::Interrupted { reason, partial }
    }

    /// True when the error means "execution was stopped on purpose, the
    /// data is fine" — either the structured [`GdmError::Interrupted`]
    /// or the legacy [`GdmError::BudgetExhausted`] alias.
    pub fn is_interrupted(&self) -> bool {
        matches!(
            self,
            GdmError::Interrupted { .. } | GdmError::BudgetExhausted(_)
        )
    }

    /// The interrupt reason, when the error is an interruption.
    /// [`GdmError::BudgetExhausted`] maps to [`InterruptReason::Budget`].
    pub fn interrupt_reason(&self) -> Option<InterruptReason> {
        match self {
            GdmError::Interrupted { reason, .. } => Some(*reason),
            GdmError::BudgetExhausted(_) => Some(InterruptReason::Budget),
            _ => None,
        }
    }

    /// Folds the legacy [`GdmError::BudgetExhausted`] alias into the
    /// structured [`GdmError::Interrupted`] form (with `partial: 0` —
    /// the legacy path never reports partial counts); every other
    /// error passes through unchanged.
    pub fn normalized(self) -> Self {
        match self {
            GdmError::BudgetExhausted(_) => GdmError::Interrupted {
                reason: InterruptReason::Budget,
                partial: 0,
            },
            other => other,
        }
    }
}

impl fmt::Display for GdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdmError::Unsupported { engine, feature } => {
                write!(f, "{engine} does not support {feature}")
            }
            GdmError::Parse {
                dialect,
                message,
                position,
            } => write!(f, "{dialect} parse error at byte {position}: {message}"),
            GdmError::Schema(m) => write!(f, "schema error: {m}"),
            GdmError::Constraint(m) => write!(f, "integrity constraint violated: {m}"),
            GdmError::Storage(m) => write!(f, "storage error: {m}"),
            GdmError::Io(e) => write!(f, "I/O error: {e}"),
            GdmError::NotFound(m) => write!(f, "not found: {m}"),
            GdmError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            GdmError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            GdmError::NotJournalable { engine, op, detail } => {
                write!(f, "{engine} cannot journal {op} in durable mode: {detail}")
            }
            GdmError::BudgetExhausted(m) => write!(f, "search budget exhausted: {m}"),
            GdmError::Interrupted { reason, partial } => {
                write!(f, "execution interrupted ({reason}) after {partial} rows")
            }
        }
    }
}

impl std::error::Error for GdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GdmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GdmError {
    fn from(e: io::Error) -> Self {
        GdmError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_is_detectable() {
        let e = GdmError::unsupported("neo4j", "nested graphs");
        assert!(e.is_unsupported());
        assert_eq!(e.to_string(), "neo4j does not support nested graphs");
    }

    #[test]
    fn other_errors_are_not_unsupported() {
        assert!(!GdmError::Schema("x".into()).is_unsupported());
        assert!(!GdmError::NotFound("n1".into()).is_unsupported());
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: GdmError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn interrupted_display_covers_every_reason() {
        for (reason, text) in [
            (InterruptReason::Deadline, "deadline exceeded"),
            (InterruptReason::Budget, "budget exhausted"),
            (InterruptReason::Cancelled, "cancelled"),
            (InterruptReason::Throttled, "tenant allowance exhausted"),
        ] {
            let e = GdmError::interrupted(reason, 7);
            let s = e.to_string();
            assert!(s.contains(text) && s.contains('7'), "{s}");
            assert!(e.is_interrupted());
            assert!(!e.is_unsupported());
            assert_eq!(e.interrupt_reason(), Some(reason));
        }
    }

    #[test]
    fn budget_exhausted_is_the_documented_alias() {
        let legacy = GdmError::BudgetExhausted("search exceeded 10 steps".into());
        assert!(legacy.is_interrupted());
        assert_eq!(legacy.interrupt_reason(), Some(InterruptReason::Budget));
        match legacy.normalized() {
            GdmError::Interrupted { reason, partial } => {
                assert_eq!(reason, InterruptReason::Budget);
                assert_eq!(partial, 0);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // Non-interrupt errors pass through normalization unchanged.
        assert!(matches!(
            GdmError::Schema("x".into()).normalized(),
            GdmError::Schema(_)
        ));
        assert_eq!(GdmError::Schema("x".into()).interrupt_reason(), None);
    }

    #[test]
    fn not_journalable_is_structured_and_distinct_from_unsupported() {
        let e = GdmError::not_journalable(
            "Neo4j",
            "define_node_type",
            "gdm-schema types have no stable wire encoding",
        );
        assert!(e.is_not_journalable());
        assert!(!e.is_unsupported());
        let s = e.to_string();
        assert!(s.contains("journal") && s.contains("durable"), "{s}");
    }

    #[test]
    fn parse_error_reports_position() {
        let e = GdmError::Parse {
            dialect: "cypher",
            message: "unexpected token".into(),
            position: 12,
        };
        let s = e.to_string();
        assert!(s.contains("cypher") && s.contains("12"));
    }
}
