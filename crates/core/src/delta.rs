//! Mutation delta overlay for incremental re-freezing.
//!
//! A [`FrozenGraph`](https://docs.rs) snapshot is a point-in-time CSR
//! compilation of a live graph. Rebuilding it from scratch is O(V+E);
//! when only a handful of nodes changed since the last freeze that is
//! almost entirely wasted work. [`DeltaTracker`] is the bookkeeping
//! side of the fix: engines record *which* node ids, edge ids and
//! property sets were touched since the last freeze, and the
//! incremental re-freeze path (in `gdm-algo`) re-reads only those rows
//! from the source view, sharing everything else with the previous
//! snapshot.
//!
//! The tracker is deliberately conservative: any mutation it cannot
//! attribute to specific ids (DDL, rollback, hyperedge rewiring)
//! degrades to [`DeltaTracker::mark_all`], which makes the next
//! re-freeze fall back to a full rebuild. Correctness never depends on
//! precision — precision only buys speed.

use crate::fxhash::FxHashSet;

/// Above this many distinct touched ids the delta stops being "small"
/// and the tracker degrades to a full rebuild; re-reading most of the
/// graph row by row would be slower than one linear freeze anyway.
const SPILL_LIMIT: usize = 1 << 20;

/// The set of mutations recorded since a base snapshot was taken.
///
/// All ids are raw `u64` forms of [`NodeId`](crate::id::NodeId) /
/// [`EdgeId`](crate::id::EdgeId) so the tracker stays independent of
/// any particular engine's id wrapper.
#[derive(Debug, Clone, Default)]
pub struct FreezeDelta {
    /// Epoch of the snapshot this delta is relative to. An incremental
    /// re-freeze must be handed the snapshot with exactly this epoch;
    /// anything else means the delta describes the wrong baseline.
    pub base_epoch: u64,
    /// When set, the delta is unusable and the re-freeze must rebuild
    /// from scratch (untracked mutation, spill, or rollback).
    pub full: bool,
    /// Nodes whose label, properties, or incident edge set changed
    /// (includes newly created nodes and both endpoints of new edges).
    pub dirty_nodes: FxHashSet<u64>,
    /// Nodes deleted since the base snapshot.
    pub removed_nodes: FxHashSet<u64>,
    /// Edges structurally removed since the base snapshot. The
    /// re-freeze resolves their endpoints from the *previous* snapshot,
    /// so the engine does not need to remember them.
    pub dirty_edges: FxHashSet<u64>,
    /// Edges whose property map changed (but whose endpoints did not).
    pub dirty_edge_props: FxHashSet<u64>,
}

impl FreezeDelta {
    /// An empty delta against the given base epoch.
    pub fn empty(base_epoch: u64) -> Self {
        Self {
            base_epoch,
            ..Self::default()
        }
    }

    /// A delta that forces a full rebuild.
    pub fn full(base_epoch: u64) -> Self {
        Self {
            base_epoch,
            full: true,
            ..Self::default()
        }
    }

    /// True when nothing was recorded: the previous snapshot is still
    /// exact and can be served as-is.
    pub fn is_empty(&self) -> bool {
        !self.full
            && self.dirty_nodes.is_empty()
            && self.removed_nodes.is_empty()
            && self.dirty_edges.is_empty()
            && self.dirty_edge_props.is_empty()
    }

    /// Total number of distinct recorded changes — the "O(changes)"
    /// that incremental re-freeze work is proportional to.
    pub fn change_count(&self) -> usize {
        self.dirty_nodes.len()
            + self.removed_nodes.len()
            + self.dirty_edges.len()
            + self.dirty_edge_props.len()
    }

    /// How far behind a snapshot taken at [`FreezeDelta::base_epoch`]
    /// has drifted, for staleness policies: the recorded change count,
    /// or `u64::MAX` when the delta degraded to a full rebuild (the
    /// drift is then unbounded — "everything may have changed").
    pub fn pending_hint(&self) -> u64 {
        if self.full {
            u64::MAX
        } else {
            self.change_count() as u64
        }
    }

    fn over_limit(&self) -> bool {
        self.change_count() > SPILL_LIMIT
    }
}

/// Records mutations between freezes on behalf of an engine.
///
/// Engines keep one of these (behind a `RefCell`, since snapshots are
/// taken through `&self`), call the `touch_*` methods from every
/// mutation path, and hand the accumulated [`FreezeDelta`] to the
/// incremental re-freeze via [`DeltaTracker::take`].
#[derive(Debug, Default)]
pub struct DeltaTracker {
    delta: FreezeDelta,
}

impl DeltaTracker {
    /// A tracker whose delta is relative to epoch 0 (no snapshot yet);
    /// it starts `full` so a re-freeze before any full freeze cannot
    /// pretend to be incremental.
    pub fn new() -> Self {
        Self {
            delta: FreezeDelta::full(0),
        }
    }

    /// Records that a node was created or modified (label, properties,
    /// or incident edge set). A touch cancels an earlier removal of the
    /// same raw id: engines that recycle ids may delete a node and
    /// re-create another under the same id within one delta window, and
    /// the live view is then the only truth worth re-reading.
    pub fn touch_node(&mut self, raw: u64) {
        if self.delta.full {
            return;
        }
        self.delta.removed_nodes.remove(&raw);
        self.delta.dirty_nodes.insert(raw);
        if self.delta.over_limit() {
            self.mark_all();
        }
    }

    /// Records that a node was deleted.
    pub fn remove_node(&mut self, raw: u64) {
        if self.delta.full {
            return;
        }
        self.delta.dirty_nodes.remove(&raw);
        self.delta.removed_nodes.insert(raw);
        if self.delta.over_limit() {
            self.mark_all();
        }
    }

    /// Records that an edge was structurally removed.
    pub fn remove_edge(&mut self, raw: u64) {
        if self.delta.full {
            return;
        }
        self.delta.dirty_edges.insert(raw);
        if self.delta.over_limit() {
            self.mark_all();
        }
    }

    /// Records that an edge's property map changed.
    pub fn touch_edge_props(&mut self, raw: u64) {
        if self.delta.full {
            return;
        }
        self.delta.dirty_edge_props.insert(raw);
        if self.delta.over_limit() {
            self.mark_all();
        }
    }

    /// Degrades the delta to "everything changed". Used for mutations
    /// the engine cannot attribute to specific ids (DDL, rollback,
    /// hyperedge or nested-graph rewiring) and for spill.
    pub fn mark_all(&mut self) {
        let base = self.delta.base_epoch;
        self.delta = FreezeDelta::full(base);
    }

    /// Read-only view of the accumulated delta.
    pub fn peek(&self) -> &FreezeDelta {
        &self.delta
    }

    /// Takes the accumulated delta and resets the tracker so it starts
    /// recording against `next_base` (the epoch of the snapshot that is
    /// about to be produced).
    pub fn take(&mut self, next_base: u64) -> FreezeDelta {
        std::mem::replace(&mut self.delta, FreezeDelta::empty(next_base))
    }

    /// Resets the tracker to an empty delta against `base` without
    /// returning the old contents. Called after a *full* freeze, which
    /// makes any previously recorded delta irrelevant.
    pub fn reset(&mut self, base: u64) {
        self.delta = FreezeDelta::empty(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tracker_starts_full() {
        let t = DeltaTracker::new();
        assert!(t.peek().full);
    }

    #[test]
    fn reset_then_touch_records_ids() {
        let mut t = DeltaTracker::new();
        t.reset(7);
        t.touch_node(1);
        t.touch_node(2);
        t.remove_node(2);
        t.remove_edge(9);
        t.touch_edge_props(11);
        let d = t.take(8);
        assert_eq!(d.base_epoch, 7);
        assert!(!d.full);
        assert!(d.dirty_nodes.contains(&1));
        assert!(!d.dirty_nodes.contains(&2), "removal supersedes dirty");
        assert!(d.removed_nodes.contains(&2));
        assert!(d.dirty_edges.contains(&9));
        assert!(d.dirty_edge_props.contains(&11));
        assert!(t.peek().is_empty());
        assert_eq!(t.peek().base_epoch, 8);
    }

    #[test]
    fn touch_after_remove_revives_recycled_id() {
        let mut t = DeltaTracker::new();
        t.reset(3);
        t.remove_node(5);
        t.touch_node(5);
        let d = t.take(4);
        assert!(d.dirty_nodes.contains(&5));
        assert!(!d.removed_nodes.contains(&5), "touch cancels removal");
    }

    #[test]
    fn mark_all_wins_and_swallows_later_touches() {
        let mut t = DeltaTracker::new();
        t.reset(1);
        t.touch_node(1);
        t.mark_all();
        t.touch_node(2);
        let d = t.take(2);
        assert!(d.full);
        assert!(d.dirty_nodes.is_empty());
        assert_eq!(d.base_epoch, 1);
    }

    #[test]
    fn change_count_sums_all_sets() {
        let mut d = FreezeDelta::empty(0);
        d.dirty_nodes.insert(1);
        d.removed_nodes.insert(2);
        d.dirty_edges.insert(3);
        d.dirty_edge_props.insert(4);
        assert_eq!(d.change_count(), 4);
        assert!(!d.is_empty());
        assert!(FreezeDelta::empty(5).is_empty());
    }
}
