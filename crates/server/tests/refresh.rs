//! Live snapshot refresh over the wire.
//!
//! Two integration proofs:
//!
//! 1. A scripted session shows the whole freshness protocol: a cached
//!    plan serves repeats, a mutation plus [`ServerHandle::refresh_with`]
//!    advances the serving epoch, the very next query of the same text
//!    sees the new data (its stale plan is epoch-evicted, not served),
//!    and `STATS` reports the refresh counters.
//! 2. Sessions hammering queries *while* the snapshot is swapped under
//!    them never observe an error: every response is a complete row
//!    set, and the row counts a session sees only grow — each query
//!    pins the snapshot it started on.

use gdm_core::props;
use gdm_engines::{make_engine, EngineKind, GraphEngine};
use gdm_server::protocol::Response;
use gdm_server::{serve, Client, ServerConfig, ServerHandle, TenantConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = "MATCH (p:person) RETURN p.name";
const PEOPLE: usize = 50;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gdm-refresh-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A Neo4j emulation with `PEOPLE` connected person nodes, served with
/// generous budgets so the test never trips fairness throttling.
fn start(tag: &str) -> (Box<dyn GraphEngine>, ServerHandle, std::path::PathBuf) {
    let dir = temp_dir(tag);
    let mut db = make_engine(EngineKind::Neo4j, &dir).unwrap();
    let mut prev = None;
    for i in 0..PEOPLE {
        let n = db
            .create_node(Some("person"), props! { "name" => format!("p{i}") })
            .unwrap();
        if let Some(p) = prev {
            db.create_edge(p, n, Some("knows"), props! {}).unwrap();
        }
        prev = Some(n);
    }
    let mut config = ServerConfig {
        refill_credits: 500_000,
        ..ServerConfig::default()
    };
    let mut alpha = TenantConfig::new("alpha", 1);
    alpha.burst_cap = 1_000_000;
    config.tenants.push(alpha);
    let handle = serve(db.serving_snapshot().unwrap(), config).unwrap();
    (db, handle, dir)
}

fn rows(resp: Response) -> gdm_server::protocol::Rows {
    match resp {
        Response::Rows(r) => r,
        other => panic!("expected Rows, got {other:?}"),
    }
}

/// Adds one more connected person and refreshes the serving snapshot
/// incrementally; returns the new serving epoch.
fn grow_and_refresh(db: &mut Box<dyn GraphEngine>, handle: &ServerHandle, i: usize) -> u64 {
    let n = db
        .create_node(Some("person"), props! { "name" => format!("new{i}") })
        .unwrap();
    let anchor = gdm_core::NodeId(0);
    db.create_edge(anchor, n, Some("knows"), props! {}).unwrap();
    handle.refresh_with(|prev| db.refreeze(prev)).unwrap()
}

#[test]
fn refresh_protocol_end_to_end() {
    let (mut db, handle, dir) = start("scripted");
    let epoch0 = handle.stats().snapshot_epoch;

    let mut c = Client::connect(handle.addr()).unwrap();
    c.hello("alpha", None).unwrap();
    let first = rows(c.query(QUERY).unwrap());
    assert_eq!(first.rows.len(), PEOPLE);
    assert!(!first.cached_plan, "first run must plan");
    let repeat = rows(c.query(QUERY).unwrap());
    assert!(repeat.cached_plan, "repeat must hit the plan cache");

    let epoch1 = grow_and_refresh(&mut db, &handle, 0);
    assert!(epoch1 > epoch0, "refresh must advance the serving epoch");

    // Same query text, next query: new data, freshly planned (the
    // epoch-tagged cache entry from epoch0 must not serve).
    let after = rows(c.query(QUERY).unwrap());
    assert_eq!(after.rows.len(), PEOPLE + 1, "refresh exposes new data");
    assert!(!after.cached_plan, "stale plan must be evicted, not served");
    let again = rows(c.query(QUERY).unwrap());
    assert!(again.cached_plan, "re-cached under the new epoch");

    let stats = c.stats().unwrap();
    assert_eq!(stats.snapshot_epoch, epoch1);
    assert_eq!(stats.refreshes, 1);
    assert!(stats.plan_cache.epoch_evictions >= 1);
    c.goodbye().ok();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_flight_sessions_survive_refreshes() {
    let (mut db, handle, dir) = start("inflight");
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Two sessions hammer the same query for the whole run. Every
    // response must be a complete row set, and the counts each session
    // observes must never shrink: a query keeps the snapshot it
    // pinned, later queries see equal-or-newer epochs.
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.hello("alpha", None).expect("hello");
                let mut seen = 0usize;
                let mut completed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let r = rows(c.query(QUERY).expect("query io"));
                    assert!(
                        r.rows.len() >= seen,
                        "row count shrank from {seen} to {} across queries",
                        r.rows.len()
                    );
                    seen = r.rows.len();
                    completed += 1;
                }
                c.goodbye().ok();
                (completed, seen)
            })
        })
        .collect();

    // Interleave growth and incremental refreshes with the traffic.
    const REFRESHES: usize = 8;
    for i in 0..REFRESHES {
        std::thread::sleep(Duration::from_millis(30));
        grow_and_refresh(&mut db, &handle, i);
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let mut total = 0;
    for w in workers {
        let (completed, seen) = w.join().expect("worker panicked (a query errored)");
        assert!(completed > 0, "worker never completed a query");
        total += completed;
        assert!(
            seen <= PEOPLE + REFRESHES,
            "worker saw more rows than exist"
        );
    }

    // A fresh session sees all the refreshed data.
    let mut c = Client::connect(addr).unwrap();
    c.hello("alpha", None).unwrap();
    let last = rows(c.query(QUERY).unwrap());
    assert_eq!(last.rows.len(), PEOPLE + REFRESHES);
    let stats = c.stats().unwrap();
    assert_eq!(stats.refreshes, REFRESHES as u64);
    assert!(stats.last_refresh_us > 0);
    assert!(total > 0);
    c.goodbye().ok();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
