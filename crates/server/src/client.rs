//! Blocking clients for tests, benches, and the CI smoke script.
//!
//! Two layers, used for different jobs:
//!
//! - [`Client`] is deliberately thin — one request, one response, over
//!   the same framed protocol the server speaks, with connect/read/
//!   write deadlines so a dead or dripping server produces a timely
//!   error instead of a hang. No retries: the fairness tests need to
//!   *see* sheds, not have them papered over.
//! - [`RetryingClient`] is what an application would actually hold: it
//!   reconnects and re-authenticates transparently, retries transient
//!   transport failures with the [`gdm_govern::RetryPolicy`] backoff
//!   (honoring the server's `retry_after_ms` hint on `Overloaded`),
//!   and distinguishes retryable wounds (torn connection, protocol
//!   error after transport corruption, shed) from fatal ones (bad
//!   credentials, a query the server rejects deterministically).

use crate::protocol::{read_frame, write_frame, Hello, QueryReq, Request, Response, StatsReply};
use gdm_govern::RetryPolicy;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket deadlines a [`Client`] applies at connect time. Defaults are
/// "a few seconds": long enough for any healthy server turn-around,
/// short enough that a wedged one surfaces as `TimedOut` rather than a
/// hung test.
#[derive(Debug, Clone, Copy)]
pub struct Deadlines {
    /// TCP connect timeout.
    pub connect: Duration,
    /// Per-read timeout (covers each response frame's arrival).
    pub read: Duration,
    /// Per-write timeout (a stalled server cannot wedge the sender).
    pub write: Duration,
}

impl Default for Deadlines {
    fn default() -> Self {
        Deadlines {
            connect: Duration::from_secs(3),
            read: Duration::from_secs(10),
            write: Duration::from_secs(10),
        }
    }
}

/// A connected, optionally authenticated session.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects without authenticating; call [`Client::hello`] next.
    /// Applies [`Deadlines::default`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::connect_with(addr, Deadlines::default())
    }

    /// Connects with explicit deadlines.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, deadlines: Deadlines) -> io::Result<Client> {
        let mut last: Option<io::Error> = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, deadlines.connect) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(deadlines.read))?;
                    stream.set_write_timeout(Some(deadlines.write))?;
                    stream.set_nodelay(true).ok();
                    return Ok(Client { stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Sends one request and reads one response. An unexpected EOF
    /// (server shut down mid-session) is an error.
    pub fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the session")
        })
    }

    /// Authenticates the session to `tenant`.
    pub fn hello(&mut self, tenant: &str, secret: Option<&str>) -> io::Result<Response> {
        self.round_trip(&Request::Hello(Hello {
            tenant: tenant.to_owned(),
            secret: secret.map(str::to_owned),
        }))
    }

    /// Runs one query under the session's tenant.
    pub fn query(&mut self, text: &str) -> io::Result<Response> {
        self.round_trip(&Request::Query(QueryReq {
            text: text.to_owned(),
        }))
    }

    /// Fetches server counters, unwrapped to the stats payload.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down (the session closes with it).
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.round_trip(&Request::Shutdown)
    }

    /// Closes this session politely.
    pub fn goodbye(&mut self) -> io::Result<Response> {
        self.round_trip(&Request::Goodbye)
    }
}

/// Whether an I/O failure is worth a reconnect-and-retry: everything
/// that smells like a transport wound, nothing that smells like a
/// caller bug.
fn is_retryable_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WriteZero
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

/// A self-healing session: owns the server address and credentials,
/// lazily (re)connects and re-`Hello`s, and retries transient failures
/// under a [`RetryPolicy`] with deterministic jitter.
///
/// What retries, what doesn't:
///
/// - **Retryable**: connect failures and torn connections (reset,
///   EOF mid-response, deadline trips), `Overloaded` sheds (sleeping
///   at least the server's `retry_after_ms` hint), and `protocol
///   error` replies — the server saying the byte stream went bad,
///   which on a healthy client means the *network* corrupted it.
/// - **Fatal**: bad credentials, and any ordinary query `Error`
///   (parse failure, non-MATCH statement) — re-sending the same bytes
///   would fail the same way, so the caller gets it immediately.
///
/// A `query execution panicked` reply is returned to the caller (the
/// same query would likely panic again) but the session is marked dead
/// so the *next* call reconnects — the server closed it.
pub struct RetryingClient {
    addr: SocketAddr,
    tenant: String,
    secret: Option<String>,
    policy: RetryPolicy,
    deadlines: Deadlines,
    jitter_seed: u64,
    conn: Option<Client>,
    connects: u64,
    retries: u64,
}

impl RetryingClient {
    /// Resolves `addr` and builds a client; the first connection
    /// happens lazily on the first call. Uses
    /// [`RetryPolicy::client_default`] and default [`Deadlines`]; the
    /// jitter seed is derived from the tenant name so concurrent
    /// tenants don't share a backoff schedule.
    pub fn new<A: ToSocketAddrs>(
        addr: A,
        tenant: &str,
        secret: Option<&str>,
    ) -> io::Result<RetryingClient> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let jitter_seed = tenant.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        Ok(RetryingClient {
            addr,
            tenant: tenant.to_owned(),
            secret: secret.map(str::to_owned),
            policy: RetryPolicy::client_default(),
            deadlines: Deadlines::default(),
            jitter_seed,
            conn: None,
            connects: 0,
            retries: 0,
        })
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the socket deadlines used for every (re)connect.
    pub fn with_deadlines(mut self, deadlines: Deadlines) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Overrides the jitter seed (tests pin it for reproducibility).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Connections established over this client's lifetime; anything
    /// above 1 is a reconnect.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Attempts beyond the first, across all calls.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Runs one query, retrying per the policy.
    pub fn query(&mut self, text: &str) -> io::Result<Response> {
        let req = Request::Query(QueryReq {
            text: text.to_owned(),
        });
        self.with_retries(|c| c.round_trip(&req))
    }

    /// Fetches server counters, retrying per the policy.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.with_retries(|c| c.round_trip(&Request::Stats))? {
            Response::Stats(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Probes server health, retrying per the policy.
    pub fn health(&mut self) -> io::Result<crate::protocol::HealthReply> {
        match self.with_retries(|c| c.round_trip(&Request::Health))? {
            Response::Health(h) => Ok(h),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Health, got {other:?}"),
            )),
        }
    }

    /// Closes the current session politely, if one is open. Never
    /// retries: a failed goodbye means the session is already gone.
    pub fn goodbye(&mut self) {
        if let Some(mut c) = self.conn.take() {
            let _ = c.goodbye();
        }
    }

    fn ensure_session(&mut self) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut c = Client::connect_with(self.addr, self.deadlines)?;
        self.connects += 1;
        match c.hello(&self.tenant, self.secret.as_deref())? {
            Response::Welcome(_) => {
                self.conn = Some(c);
                Ok(())
            }
            Response::Error(e) if e.message.starts_with("protocol error") => {
                // The Hello itself got mangled in transit; retryable.
                Err(io::Error::new(io::ErrorKind::ConnectionReset, e.message))
            }
            Response::Error(e) => Err(io::Error::new(io::ErrorKind::PermissionDenied, e.message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            )),
        }
    }

    fn with_retries<F>(&mut self, mut op: F) -> io::Result<Response>
    where
        F: FnMut(&mut Client) -> io::Result<Response>,
    {
        let attempts = self.policy.attempts.max(1);
        let mut shed_hint: Option<Duration> = None;
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                let mut nap = self.policy.backoff(attempt - 1, self.jitter_seed);
                if let Some(hint) = shed_hint.take() {
                    nap = nap.max(hint);
                }
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
            if let Err(e) = self.ensure_session() {
                if is_retryable_io(&e) {
                    last = Some(e);
                    continue;
                }
                return Err(e);
            }
            let conn = self.conn.as_mut().expect("session just ensured");
            match op(conn) {
                Ok(Response::Overloaded(o)) => {
                    // The session is healthy; the server just shed us.
                    shed_hint = Some(Duration::from_millis(o.retry_after_ms));
                    last = Some(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!("overloaded ({}): retry later", o.scope),
                    ));
                }
                Ok(Response::Error(e)) if e.message.starts_with("protocol error") => {
                    // Transport corruption detected server-side; the
                    // session is closing under us. Reconnect, retry.
                    self.conn = None;
                    last = Some(io::Error::new(io::ErrorKind::ConnectionReset, e.message));
                }
                Ok(resp) => {
                    if matches!(&resp, Response::Error(e) if e.message.starts_with("internal error"))
                    {
                        // Poisoned query: the reply is for the caller,
                        // but the server closed this session.
                        self.conn = None;
                    }
                    return Ok(resp);
                }
                Err(e) if is_retryable_io(&e) => {
                    self.conn = None;
                    last = Some(e);
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        let detail = last.map(|e| e.to_string()).unwrap_or_default();
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("gave up after {attempts} attempts: {detail}"),
        ))
    }
}
