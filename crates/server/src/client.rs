//! A blocking client for tests, benches, and the CI smoke script.
//!
//! Deliberately thin: one request, one response, over the same framed
//! protocol the server speaks. Anything smarter (retry on
//! `Overloaded`, pooling) belongs to the caller — the fairness tests
//! need to *see* sheds, not have them papered over.

use crate::protocol::{read_frame, write_frame, Hello, QueryReq, Request, Response, StatsReply};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected, optionally authenticated session.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects without authenticating; call [`Client::hello`] next.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and reads one response. An unexpected EOF
    /// (server shut down mid-session) is an error.
    pub fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the session")
        })
    }

    /// Authenticates the session to `tenant`.
    pub fn hello(&mut self, tenant: &str, secret: Option<&str>) -> io::Result<Response> {
        self.round_trip(&Request::Hello(Hello {
            tenant: tenant.to_owned(),
            secret: secret.map(str::to_owned),
        }))
    }

    /// Runs one query under the session's tenant.
    pub fn query(&mut self, text: &str) -> io::Result<Response> {
        self.round_trip(&Request::Query(QueryReq {
            text: text.to_owned(),
        }))
    }

    /// Fetches server counters, unwrapped to the stats payload.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down (the session closes with it).
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.round_trip(&Request::Shutdown)
    }

    /// Closes this session politely.
    pub fn goodbye(&mut self) -> io::Result<Response> {
        self.round_trip(&Request::Goodbye)
    }
}
