//! Admission control: who may start a query *now*.
//!
//! Two independent limits, checked in order:
//!
//! 1. **Per-tenant in-flight cap.** A tenant at its cap is shed
//!    immediately (`scope: "tenant"`) — queueing would let one tenant
//!    occupy the whole wait queue, defeating the point of the fair
//!    budget pool one layer down.
//! 2. **Global execution slots + bounded wait queue.** Up to `slots`
//!    queries run concurrently; up to `queue` more wait on a condvar.
//!    A request arriving with the queue full is shed
//!    (`scope: "queue"`) rather than waited — *shed-on-full* keeps the
//!    server's latency bounded under overload instead of building an
//!    unbounded convoy.
//!
//! Granted requests hold an RAII [`Permit`]; dropping it releases the
//! slot and wakes one waiter. Shed counters are atomics surfaced
//! through the `STATS` command.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The tenant is already at its in-flight cap.
    TenantCap,
    /// Every execution slot is busy and the wait queue is full.
    QueueFull,
}

impl Shed {
    /// The protocol's `scope` string for this shed reason.
    pub fn scope(self) -> &'static str {
        match self {
            Shed::TenantCap => "tenant",
            Shed::QueueFull => "queue",
        }
    }
}

#[derive(Debug)]
struct TenantSlot {
    name: String,
    cap: usize,
    shed: AtomicU64,
}

#[derive(Debug, Default)]
struct State {
    /// Queries currently executing, per tenant (indexed like `tenants`).
    in_flight: Vec<usize>,
    /// Total queries currently executing.
    running: usize,
    /// Requests currently waiting for a slot.
    waiting: usize,
}

/// The admission controller. Cheap to share (`Arc`); all waiting
/// happens on one mutex + condvar pair.
#[derive(Debug)]
pub struct Admission {
    tenants: Vec<TenantSlot>,
    slots: usize,
    queue: usize,
    queue_shed: AtomicU64,
    state: Mutex<State>,
    cv: Condvar,
}

impl Admission {
    /// A controller with `slots` concurrent executions, a wait queue of
    /// `queue`, and the given `(tenant name, in-flight cap)` pairs.
    pub fn new(slots: usize, queue: usize, tenants: &[(String, usize)]) -> Arc<Self> {
        Arc::new(Admission {
            tenants: tenants
                .iter()
                .map(|(name, cap)| TenantSlot {
                    name: name.clone(),
                    cap: (*cap).max(1),
                    shed: AtomicU64::new(0),
                })
                .collect(),
            slots: slots.max(1),
            queue,
            queue_shed: AtomicU64::new(0),
            state: Mutex::new(State {
                in_flight: vec![0; tenants.len()],
                running: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
        })
    }

    fn tenant_index(&self, tenant: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t.name == tenant)
    }

    /// Tries to admit one query for `tenant`: returns a [`Permit`] to
    /// hold for the query's duration, or the shed reason. Blocks while
    /// a queue position is available and every slot is busy. Unknown
    /// tenants are the caller's bug (sessions authenticate first).
    pub fn admit(self: &Arc<Self>, tenant: &str) -> Result<Permit, Shed> {
        let ti = self.tenant_index(tenant).expect("authenticated tenant");
        let mut state = self.state.lock().expect("admission lock");
        // The tenant cap counts running queries; shed immediately at
        // the cap — a capped tenant must not consume queue positions.
        if state.in_flight[ti] >= self.tenants[ti].cap {
            self.tenants[ti].shed.fetch_add(1, Ordering::Relaxed);
            return Err(Shed::TenantCap);
        }
        if state.running >= self.slots {
            if state.waiting >= self.queue {
                self.queue_shed.fetch_add(1, Ordering::Relaxed);
                return Err(Shed::QueueFull);
            }
            state.waiting += 1;
            while state.running >= self.slots {
                state = self.cv.wait(state).expect("admission lock");
            }
            state.waiting -= 1;
            // Re-check the tenant cap: it may have filled while we
            // waited (another of the tenant's sessions was admitted).
            if state.in_flight[ti] >= self.tenants[ti].cap {
                self.tenants[ti].shed.fetch_add(1, Ordering::Relaxed);
                // Our slot opportunity passes to the next waiter.
                self.cv.notify_one();
                return Err(Shed::TenantCap);
            }
        }
        state.in_flight[ti] += 1;
        state.running += 1;
        Ok(Permit {
            admission: self.clone(),
            tenant: ti,
        })
    }

    /// Lifetime requests shed by `tenant`'s in-flight cap.
    pub fn tenant_shed(&self, tenant: &str) -> u64 {
        self.tenant_index(tenant)
            .map_or(0, |ti| self.tenants[ti].shed.load(Ordering::Relaxed))
    }

    /// Lifetime requests shed by the full global queue.
    pub fn queue_shed(&self) -> u64 {
        self.queue_shed.load(Ordering::Relaxed)
    }

    /// Queries currently executing (all tenants).
    pub fn running(&self) -> usize {
        self.state.lock().expect("admission lock").running
    }

    fn release(&self, tenant: usize) {
        let mut state = self.state.lock().expect("admission lock");
        state.in_flight[tenant] -= 1;
        state.running -= 1;
        drop(state);
        self.cv.notify_one();
    }
}

/// An admitted query's slot. Dropping releases it and wakes a waiter.
#[derive(Debug)]
pub struct Permit {
    admission: Arc<Admission>,
    tenant: usize,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.admission.release(self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn two_tenants(slots: usize, queue: usize) -> Arc<Admission> {
        Admission::new(
            slots,
            queue,
            &[("alpha".to_owned(), 2), ("beta".to_owned(), 1)],
        )
    }

    #[test]
    fn tenant_cap_sheds_immediately() {
        let adm = two_tenants(8, 8);
        let _p1 = adm.admit("beta").expect("first admit");
        let err = adm.admit("beta").expect_err("beta cap is 1");
        assert_eq!(err, Shed::TenantCap);
        assert_eq!(err.scope(), "tenant");
        assert_eq!(adm.tenant_shed("beta"), 1);
        assert_eq!(adm.tenant_shed("alpha"), 0);
    }

    #[test]
    fn queue_full_sheds() {
        // One slot, zero queue: the second concurrent request sheds.
        let adm = two_tenants(1, 0);
        let _p = adm.admit("alpha").expect("slot");
        let err = adm.admit("beta").expect_err("no queue");
        assert_eq!(err, Shed::QueueFull);
        assert_eq!(adm.queue_shed(), 1);
    }

    #[test]
    fn release_admits_a_waiter() {
        let adm = two_tenants(1, 4);
        let p = adm.admit("alpha").expect("slot");
        let adm2 = adm.clone();
        let waiter = std::thread::spawn(move || {
            // Blocks until the permit below drops.
            let _p = adm2.admit("beta").expect("admitted after release");
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(adm.running(), 1);
        drop(p);
        waiter.join().expect("waiter thread");
        assert_eq!(adm.running(), 0);
    }

    #[test]
    fn permits_restore_counts_on_drop() {
        let adm = two_tenants(8, 8);
        {
            let _a = adm.admit("alpha").expect("a");
            let _b = adm.admit("alpha").expect("b");
            assert_eq!(adm.running(), 2);
        }
        assert_eq!(adm.running(), 0);
        // The cap is free again.
        let _c = adm.admit("alpha").expect("c");
    }
}
