//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame: a big-endian `u32` byte length followed
//! by that many bytes of JSON. JSON because the vendored serde stack
//! already serializes [`Value`] (the one interesting payload type) and
//! a text encoding keeps the CI smoke client scriptable; the length
//! prefix because JSON is not self-delimiting over a byte stream.
//!
//! Enum shape note: the vendored `serde_derive` supports unit and
//! newtype enum variants but not struct variants, so every variant
//! with fields wraps a named struct (`Request::Hello(Hello)` rather
//! than `Request::Hello { tenant, .. }`).

use gdm_core::Value;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Frames larger than this are refused — a corrupt length prefix must
/// not make the server try to allocate gigabytes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Frame bodies are read (and buffers grown) in chunks of this size,
/// so a hostile length prefix costs at most one chunk of memory until
/// real bytes actually arrive — the prefix claims, the bytes prove.
pub const READ_CHUNK: usize = 64 * 1024;

/// A client's opening message: which tenant the session acts for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Tenant name, as registered in the server's configuration.
    pub tenant: String,
    /// Shared secret, when the tenant is configured with one.
    pub secret: Option<String>,
}

/// A read query in the engine's shared Cypher-like dialect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryReq {
    /// Query text; also the plan-cache key after whitespace trimming.
    pub text: String,
}

/// Everything a client can send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Authenticate the session to a tenant. Must come first.
    Hello(Hello),
    /// Run a query under the session tenant's allowance.
    Query(QueryReq),
    /// Fetch server counters (per-tenant credits, plan cache, shed).
    Stats,
    /// Fetch the serving health state (ready/degraded/stale). Allowed
    /// *before* `Hello` so load balancers can probe without a tenant.
    Health,
    /// Ask the server to shut down (drains in-flight sessions).
    Shutdown,
    /// Close this session only.
    Goodbye,
}

/// Session accepted; the server identifies itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Welcome {
    /// Engine name the server is fronting.
    pub engine: String,
    /// Tenant the session authenticated to.
    pub tenant: String,
}

/// A completed query result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rows {
    /// Column names, in projection order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// True when the plan came from the shared plan cache.
    pub cached_plan: bool,
}

/// The query was stopped by the governor before completing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interrupted {
    /// Why: `"deadline exceeded"`, `"budget exhausted"`,
    /// `"cancelled"`, or `"tenant allowance exhausted"` (throttled by
    /// the fair budget pool).
    pub reason: String,
    /// Rows produced before the interrupt.
    pub partial: u64,
}

/// Admission control shed the request instead of queueing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Overloaded {
    /// Which limit shed it: `"tenant"` (the tenant's in-flight cap) or
    /// `"queue"` (the global wait queue was full).
    pub scope: String,
    /// How long a well-behaved client should back off before retrying.
    pub retry_after_ms: u64,
}

/// Anything else that went wrong (parse error, unsupported statement,
/// protocol misuse). The session stays open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Human-readable description.
    pub message: String,
}

/// One tenant's counters in a [`StatsReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Fairness weight.
    pub weight: u64,
    /// Credits currently available (negative = overdrawn).
    pub credits: i64,
    /// Lifetime credits charged.
    pub charged: u64,
    /// Lifetime throttle interruptions.
    pub throttled: u64,
    /// Lifetime requests shed by the tenant's in-flight cap.
    pub shed: u64,
}

/// Plan-cache counters in a [`StatsReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lifetime lookup hits.
    pub hits: u64,
    /// Lifetime lookup misses.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: u64,
    /// Lifetime entries dropped because the serving snapshot moved to
    /// a new epoch after the plan was cached.
    pub epoch_evictions: u64,
}

/// The serving health state, answering [`Request::Health`].
///
/// Three states, coarsest first:
/// - `"ready"` — the snapshot is fresh enough and refreshes succeed.
/// - `"stale"` — recorded mutations have crossed the auto-refresh
///   policy's thresholds but no fresh snapshot is serving yet; results
///   are consistent but behind the live graph.
/// - `"degraded"` — the most recent refresh attempt(s) failed; the
///   server keeps answering from the last good snapshot while the
///   refresh thread backs off and retries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReply {
    /// `"ready"`, `"stale"`, or `"degraded"`.
    pub state: String,
    /// Epoch of the snapshot currently serving queries.
    pub snapshot_epoch: u64,
    /// Milliseconds since the serving snapshot was installed.
    pub snapshot_age_ms: u64,
    /// Mutations recorded against the serving snapshot, as last
    /// observed by the refresh thread (0 when auto-refresh is off).
    pub pending_changes: u64,
    /// Whether a background auto-refresh thread is running.
    pub auto_refresh: bool,
    /// Lifetime failed refresh attempts (background and explicit).
    pub refresh_failures: u64,
    /// Failed refresh attempts since the last success — the degraded
    /// trigger, and the exponent of the refresh thread's backoff.
    pub consecutive_refresh_failures: u64,
}

/// Server counters, answering [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Per-tenant pool and admission counters.
    pub tenants: Vec<TenantStats>,
    /// Shared plan-cache counters.
    pub plan_cache: CacheStats,
    /// Lifetime requests shed by the global queue.
    pub queue_shed: u64,
    /// Morsel-executor worker threads each frozen pattern query may
    /// fan out across (the resolved process-wide setting, ≥ 1).
    pub executor_workers: u64,
    /// Epoch of the snapshot currently serving queries.
    pub snapshot_epoch: u64,
    /// Lifetime live snapshot refreshes since startup.
    pub refreshes: u64,
    /// Wall-clock cost of the most recent refresh (build + swap), in
    /// microseconds; 0 until the first refresh.
    pub last_refresh_us: u64,
    /// Lifetime refresh attempts that failed (the serving snapshot was
    /// left as it was; the refresh thread backs off and retries).
    pub refresh_failures: u64,
    /// Lifetime torn, oversized, or undecodable frames received —
    /// each one closed its session with a structured error where the
    /// socket was still writable.
    pub frame_errors: u64,
    /// Lifetime sessions closed by the server's own deadlines: a
    /// mid-frame read deadline (slowloris cutoff) or the idle max-age.
    pub sessions_reaped: u64,
    /// Lifetime queries whose execution panicked; each was contained
    /// by `catch_unwind`, answered with a structured error, and closed
    /// only its own session — the pooled worker survived.
    pub queries_poisoned: u64,
}

/// Everything the server can answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Hello accepted.
    Welcome(Welcome),
    /// Query completed.
    Rows(Rows),
    /// Query stopped by the governor (structured, retryable).
    Interrupted(Interrupted),
    /// Request shed by admission control (structured, retryable).
    Overloaded(Overloaded),
    /// Request failed (not retryable as-is).
    Error(ErrorReply),
    /// Stats snapshot.
    Stats(StatsReply),
    /// Health snapshot.
    Health(HealthReply),
    /// Session closing (answer to Goodbye and Shutdown).
    Bye,
}

/// Writes one frame: `u32` big-endian length, then the JSON bytes.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let body = serde_json::to_vec(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one frame, or `None` on a clean EOF at a frame boundary.
pub fn read_frame<R: Read, T: serde::Deserialize>(r: &mut R) -> io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    // Incremental body read: allocate per chunk as bytes arrive, never
    // the full claimed length up front (see [`READ_CHUNK`]).
    let len = len as usize;
    let mut body = Vec::with_capacity(len.min(READ_CHUNK));
    let mut chunk = [0u8; 4096];
    while body.len() < len {
        let want = (len - body.len()).min(chunk.len());
        let n = r.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    serde_json::from_slice(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(msg: &T) -> T
    where
        T: Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
    {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).expect("write");
        let mut cursor = io::Cursor::new(buf);
        read_frame(&mut cursor).expect("read").expect("a frame")
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Hello(Hello {
                tenant: "alpha".into(),
                secret: Some("s3cret".into()),
            }),
            Request::Query(QueryReq {
                text: "MATCH (p:person) RETURN p.name".into(),
            }),
            Request::Stats,
            Request::Health,
            Request::Shutdown,
            Request::Goodbye,
        ] {
            assert_eq!(round_trip(&req), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Welcome(Welcome {
                engine: "Neo4j".into(),
                tenant: "alpha".into(),
            }),
            Response::Rows(Rows {
                columns: vec!["name".into()],
                rows: vec![vec![Value::from("ada")], vec![Value::Null]],
                cached_plan: true,
            }),
            Response::Interrupted(Interrupted {
                reason: "tenant allowance exhausted".into(),
                partial: 17,
            }),
            Response::Overloaded(Overloaded {
                scope: "queue".into(),
                retry_after_ms: 25,
            }),
            Response::Error(ErrorReply {
                message: "cypher parse error".into(),
            }),
            Response::Stats(StatsReply {
                tenants: vec![TenantStats {
                    name: "alpha".into(),
                    weight: 3,
                    credits: -2,
                    charged: 1000,
                    throttled: 4,
                    shed: 1,
                }],
                plan_cache: CacheStats {
                    hits: 9,
                    misses: 2,
                    entries: 2,
                    epoch_evictions: 1,
                },
                queue_shed: 0,
                executor_workers: 2,
                snapshot_epoch: 42,
                refreshes: 3,
                last_refresh_us: 180,
                refresh_failures: 1,
                frame_errors: 2,
                sessions_reaped: 1,
                queries_poisoned: 1,
            }),
            Response::Health(HealthReply {
                state: "degraded".into(),
                snapshot_epoch: 42,
                snapshot_age_ms: 1200,
                pending_changes: 7,
                auto_refresh: true,
                refresh_failures: 2,
                consecutive_refresh_failures: 1,
            }),
            Response::Bye,
        ] {
            assert_eq!(round_trip(&resp), resp);
        }
    }

    #[test]
    fn eof_at_boundary_is_none_mid_frame_is_error() {
        let mut empty = io::Cursor::new(Vec::new());
        assert!(read_frame::<_, Request>(&mut empty)
            .expect("eof ok")
            .is_none());
        // A length prefix with no body is a torn frame.
        let mut torn = io::Cursor::new(vec![0, 0, 0, 9]);
        assert!(read_frame::<_, Request>(&mut torn).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame::<_, Request>(&mut cursor).is_err());
    }
}
