//! Deterministic fault-injecting TCP proxy for resilience testing.
//!
//! A [`ChaosProxy`] sits between clients and a `gdm-server`, forwarding
//! bytes while injecting network faults according to a seed-driven
//! schedule: abrupt disconnects, partial writes (a frame cut mid-body),
//! delayed bytes, garbage frames, truncated frames, and slowloris
//! drip-feeds that start a frame and never finish it. Every fault is
//! chosen by accept order from [`ChaosConfig::schedule`] and
//! parameterised from [`ChaosConfig::seed`], so a run is reproducible:
//! same seed, same schedule, same faults in the same order.
//!
//! The proxy is intentionally *connection-terminal* about corruption:
//! once it has injected garbage or torn a frame it cuts the connection
//! rather than resuming pass-through, so a client can never read a
//! reply that belongs to a corrupted request — recovery is always a
//! clean reconnect (which [`crate::RetryingClient`] performs
//! transparently). Delay faults are the exception: they only stretch
//! time, never corrupt, and the connection survives.
//!
//! Used by `tests/server_chaos.rs` and `server_load --chaos-smoke`;
//! the design notes live in DESIGN.md §16.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often proxy relay loops wake to poll the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// One connection's fault plan. Byte counts apply to the
/// client→server direction, which is where a hostile or unlucky
/// network hurts a server most.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Clean pass-through in both directions.
    None,
    /// Forward `after_bytes` client bytes, then cut both directions
    /// abruptly — possibly mid-frame, possibly mid-reply.
    Disconnect {
        /// Client bytes forwarded before the cut.
        after_bytes: usize,
    },
    /// Forward only `forward` client bytes, then half-close the
    /// upstream write side: the server sees a frame that stops
    /// mid-body (a torn write), while its error reply still reaches
    /// the client.
    PartialWrite {
        /// Client bytes forwarded before the write side goes quiet.
        forward: usize,
    },
    /// Forward everything, but pause `pause_ms` after every `every`
    /// bytes — a slow network, not a broken one. Non-terminal.
    Delay {
        /// Bytes between pauses.
        every: usize,
        /// Length of each pause, in milliseconds.
        pause_ms: u64,
    },
    /// Forward `after_bytes` client bytes, then inject a well-formed
    /// length prefix followed by `len` random bytes that are not JSON,
    /// then cut.
    Garbage {
        /// Client bytes forwarded before the injection.
        after_bytes: usize,
        /// Garbage body length.
        len: u32,
    },
    /// Forward `after_bytes` client bytes, then send a length prefix
    /// claiming `claim` bytes, deliver only `send` of them, and cut —
    /// the server reads EOF mid-frame.
    Truncate {
        /// Client bytes forwarded before the truncated frame.
        after_bytes: usize,
        /// Body length the prefix promises.
        claim: u32,
        /// Body bytes actually delivered (< `claim`).
        send: usize,
    },
    /// Never forward the client at all: start a frame claiming `claim`
    /// bytes and drip `drip` bytes every `pause_ms`, holding the
    /// connection hostage until the server's frame deadline reaps it.
    Slowloris {
        /// Body length the prefix promises.
        claim: u32,
        /// Bytes dripped per pause.
        drip: usize,
        /// Milliseconds between drips.
        pause_ms: u64,
    },
}

/// Seed plus per-connection schedule; connection `i` (accept order)
/// gets `schedule[i % schedule.len()]`.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seeds the garbage-byte generator and any derived parameters.
    pub seed: u64,
    /// Fault plans, cycled by accept order. Empty means pass-through.
    pub schedule: Vec<Fault>,
}

impl ChaosConfig {
    /// Pass-through proxy: useful as the control arm of an experiment.
    pub fn clean(seed: u64) -> Self {
        ChaosConfig {
            seed,
            schedule: vec![Fault::None],
        }
    }

    /// Every fault category, interleaved with clean connections so
    /// retrying clients always make progress. Parameters are derived
    /// from `seed`, so two runs with the same seed inject the same
    /// faults at the same byte offsets.
    pub fn full_menu(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = vec![
            Fault::None,
            Fault::Garbage {
                after_bytes: rng.gen_range(5usize..40),
                len: rng.gen_range(8u32..128),
            },
            Fault::None,
            Fault::Truncate {
                after_bytes: rng.gen_range(5usize..40),
                claim: rng.gen_range(64u32..512),
                send: rng.gen_range(1usize..32),
            },
            Fault::None,
            Fault::Disconnect {
                // Low enough that a Hello plus one query always crosses
                // it — the cut is guaranteed to be exercised.
                after_bytes: rng.gen_range(10usize..100),
            },
            Fault::None,
            Fault::PartialWrite {
                forward: rng.gen_range(5usize..25),
            },
            Fault::None,
            Fault::Slowloris {
                claim: 64 * 1024,
                drip: rng.gen_range(1usize..8),
                pause_ms: 40,
            },
            Fault::None,
            Fault::Delay {
                every: rng.gen_range(16usize..48),
                pause_ms: rng.gen_range(3u64..12),
            },
        ];
        ChaosConfig { seed, schedule }
    }
}

/// Counts of faults actually *injected* (a plan whose connection ends
/// before its trigger byte offset injects nothing and counts nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections proxied cleanly end to end.
    pub passthrough: u64,
    /// Abrupt two-way cuts injected.
    pub disconnects: u64,
    /// Frames torn by a half-closed write side.
    pub partial_writes: u64,
    /// Connections stretched by injected pauses.
    pub delays: u64,
    /// Garbage frames injected.
    pub garbage_frames: u64,
    /// Truncated frames injected.
    pub truncated_frames: u64,
    /// Slowloris drip-feeds injected.
    pub slowloris: u64,
}

#[derive(Default)]
struct StatsInner {
    connections: AtomicU64,
    passthrough: AtomicU64,
    disconnects: AtomicU64,
    partial_writes: AtomicU64,
    delays: AtomicU64,
    garbage_frames: AtomicU64,
    truncated_frames: AtomicU64,
    slowloris: AtomicU64,
}

/// The running proxy: accepts on its own port, forwards to the
/// upstream server, injects faults per its schedule.
pub struct ChaosProxy {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<StatsInner>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to
    /// `upstream`.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(StatsInner::default());

        let acceptor = {
            let stop = stop.clone();
            let conns = conns.clone();
            let stats = stats.clone();
            std::thread::spawn(move || {
                let mut idx = 0usize;
                loop {
                    match listener.accept() {
                        Ok((client, _)) => {
                            if stop.load(Ordering::Acquire) {
                                break; // the wake-up connection
                            }
                            let plan = if config.schedule.is_empty() {
                                Fault::None
                            } else {
                                config.schedule[idx % config.schedule.len()]
                            };
                            // Unique per connection, stable per run.
                            let conn_seed = config.seed.wrapping_add(idx as u64);
                            idx += 1;
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                            let stop = stop.clone();
                            let stats = stats.clone();
                            let handle = std::thread::spawn(move || {
                                handle_conn(client, upstream, plan, conn_seed, &stats, stop);
                            });
                            conns.lock().expect("chaos conns lock").push(handle);
                        }
                        Err(_) => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                }
            })
        };

        Ok(ChaosProxy {
            local,
            stop,
            acceptor: Some(acceptor),
            conns,
            stats,
        })
    }

    /// The address clients should connect to instead of the server's.
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Snapshot of injected-fault counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            passthrough: self.stats.passthrough.load(Ordering::Relaxed),
            disconnects: self.stats.disconnects.load(Ordering::Relaxed),
            partial_writes: self.stats.partial_writes.load(Ordering::Relaxed),
            delays: self.stats.delays.load(Ordering::Relaxed),
            garbage_frames: self.stats.garbage_frames.load(Ordering::Relaxed),
            truncated_frames: self.stats.truncated_frames.load(Ordering::Relaxed),
            slowloris: self.stats.slowloris.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, cuts live proxied connections, joins all
    /// threads. Also runs on drop.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local); // wake the acceptor
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = self
            .conns
            .lock()
            .expect("chaos conns lock")
            .drain(..)
            .collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Cuts both directions of both streams; errors mean "already cut".
fn cut(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Forwards up to `n` bytes from `src` to `dst`. Returns `Ok(true)` if
/// all `n` were forwarded (the fault's trigger point was reached),
/// `Ok(false)` on EOF or stop before that.
fn forward_n(src: &mut TcpStream, dst: &mut TcpStream, n: usize, stop: &AtomicBool) -> bool {
    let mut buf = [0u8; 4096];
    let mut done = 0usize;
    while done < n {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let want = (n - done).min(buf.len());
        match src.read(&mut buf[..want]) {
            Ok(0) => return false,
            Ok(k) => {
                if dst.write_all(&buf[..k]).is_err() {
                    return false;
                }
                done += k;
            }
            Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Forwards until EOF, stop, or a write failure; `pause` injects a
/// sleep every so many bytes (the Delay fault).
fn forward_all(
    src: &mut TcpStream,
    dst: &mut TcpStream,
    stop: &AtomicBool,
    pause: Option<(usize, Duration)>,
) {
    let mut buf = [0u8; 4096];
    let mut since_pause = 0usize;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match src.read(&mut buf) {
            Ok(0) => return,
            Ok(k) => {
                if let Some((every, nap)) = pause {
                    // Dripping in `every`-byte steps with a nap between
                    // them stretches delivery without corrupting it.
                    let mut sent = 0usize;
                    while sent < k {
                        let step = (k - sent).min(every.max(1));
                        if dst.write_all(&buf[sent..sent + step]).is_err() {
                            return;
                        }
                        sent += step;
                        since_pause += step;
                        if since_pause >= every.max(1) {
                            since_pause = 0;
                            std::thread::sleep(nap);
                        }
                    }
                } else if dst.write_all(&buf[..k]).is_err() {
                    return;
                }
            }
            Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn handle_conn(
    client: TcpStream,
    upstream_addr: SocketAddr,
    plan: Fault,
    conn_seed: u64,
    stats: &StatsInner,
    stop: Arc<AtomicBool>,
) {
    let upstream = match TcpStream::connect(upstream_addr) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    for s in [&client, &upstream] {
        if s.set_read_timeout(Some(POLL)).is_err() {
            cut(&client, &upstream);
            return;
        }
        s.set_write_timeout(Some(Duration::from_secs(5))).ok();
        s.set_nodelay(true).ok();
    }

    // Server→client replies relay unmodified on their own thread; it
    // ends when either side closes and then cuts whatever is left.
    let reply_relay = {
        let mut up = match upstream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                cut(&client, &upstream);
                return;
            }
        };
        let mut cl = match client.try_clone() {
            Ok(s) => s,
            Err(_) => {
                cut(&client, &upstream);
                return;
            }
        };
        let stop = stop.clone();
        std::thread::spawn(move || {
            forward_all(&mut up, &mut cl, &stop, None);
            cut(&cl, &up);
        })
    };

    run_plan(client, upstream, plan, conn_seed, stats, &stop);
    let _ = reply_relay.join();
}

fn run_plan(
    mut client: TcpStream,
    mut upstream: TcpStream,
    plan: Fault,
    conn_seed: u64,
    stats: &StatsInner,
    stop: &AtomicBool,
) {
    match plan {
        Fault::None => {
            stats.passthrough.fetch_add(1, Ordering::Relaxed);
            forward_all(&mut client, &mut upstream, stop, None);
            cut(&client, &upstream);
        }
        Fault::Delay { every, pause_ms } => {
            stats.delays.fetch_add(1, Ordering::Relaxed);
            let pause = (every, Duration::from_millis(pause_ms));
            forward_all(&mut client, &mut upstream, stop, Some(pause));
            cut(&client, &upstream);
        }
        Fault::Disconnect { after_bytes } => {
            if forward_n(&mut client, &mut upstream, after_bytes, stop) {
                stats.disconnects.fetch_add(1, Ordering::Relaxed);
            }
            cut(&client, &upstream);
        }
        Fault::PartialWrite { forward } => {
            if forward_n(&mut client, &mut upstream, forward, stop) {
                stats.partial_writes.fetch_add(1, Ordering::Relaxed);
                // Half-close: the server sees EOF mid-frame, and its
                // structured error reply still relays back to the
                // client before everything winds down.
                let _ = upstream.shutdown(Shutdown::Write);
                forward_all(&mut client, &mut upstream, stop, None);
            }
            cut(&client, &upstream);
        }
        Fault::Garbage { after_bytes, len } => {
            if forward_n(&mut client, &mut upstream, after_bytes, stop) {
                let mut rng = StdRng::seed_from_u64(conn_seed);
                let mut frame = Vec::with_capacity(4 + len as usize);
                frame.extend_from_slice(&len.to_be_bytes());
                for _ in 0..len {
                    frame.push(rng.gen_range(0u32..256) as u8);
                }
                if upstream.write_all(&frame).is_ok() {
                    stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
                }
            }
            cut(&client, &upstream);
        }
        Fault::Truncate {
            after_bytes,
            claim,
            send,
        } => {
            if forward_n(&mut client, &mut upstream, after_bytes, stop) {
                let mut rng = StdRng::seed_from_u64(conn_seed);
                let send = send.min(claim.saturating_sub(1) as usize);
                let mut frame = Vec::with_capacity(4 + send);
                frame.extend_from_slice(&claim.to_be_bytes());
                for _ in 0..send {
                    frame.push(rng.gen_range(0u32..256) as u8);
                }
                if upstream.write_all(&frame).is_ok() {
                    stats.truncated_frames.fetch_add(1, Ordering::Relaxed);
                }
            }
            cut(&client, &upstream);
        }
        Fault::Slowloris {
            claim,
            drip,
            pause_ms,
        } => {
            stats.slowloris.fetch_add(1, Ordering::Relaxed);
            let mut rng = StdRng::seed_from_u64(conn_seed);
            let drip = drip.max(1);
            let pause = Duration::from_millis(pause_ms.max(1));
            let mut sent = 0usize;
            let budget = claim.saturating_sub(1) as usize; // never finish
            if upstream.write_all(&claim.to_be_bytes()).is_err() {
                cut(&client, &upstream);
                return;
            }
            while sent < budget && !stop.load(Ordering::Acquire) {
                let step = drip.min(budget - sent);
                let mut chunk = Vec::with_capacity(step);
                for _ in 0..step {
                    chunk.push(rng.gen_range(0u32..256) as u8);
                }
                if upstream.write_all(&chunk).is_err() {
                    break; // the server reaped us — mission accomplished
                }
                sent += step;
                std::thread::sleep(pause);
            }
            cut(&client, &upstream);
        }
    }
}
