//! One connection's life: authenticate, then serve requests.
//!
//! The session socket carries a short read timeout so the loop can
//! poll the server's stop flag between requests — that is what makes
//! shutdown a *drain* (in-flight queries finish, idle sessions close)
//! instead of an abort. Mid-frame timeouts keep reading: a client that
//! has started sending a request gets to finish it.

use crate::admission::Shed;
use crate::protocol::{
    write_frame, ErrorReply, Interrupted, Overloaded, QueryReq, Request, Response, Rows, Welcome,
    MAX_FRAME,
};
use crate::server::Shared;
use gdm_govern::{CancelToken, ExecutionGuard};
use gdm_query::cypher::{self, CypherStatement};
use std::io::{self, Read};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How often an idle session re-checks the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// Backoff hint for shed requests, scaled by why they were shed: a
/// queue-full shed clears as soon as one query finishes; a tenant-cap
/// shed means the client itself is the congestion.
fn retry_after_ms(shed: Shed) -> u64 {
    match shed {
        Shed::QueueFull => 10,
        Shed::TenantCap => 50,
    }
}

/// Runs one session to completion. Errors (broken pipe, torn frame)
/// close the connection; the server keeps serving others.
pub(crate) fn run(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = serve_session(stream, shared);
}

fn serve_session(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true).ok();

    // First frame must be Hello; authenticate against the tenant list.
    let tenant = loop {
        let req = match read_request(&mut stream, shared)? {
            Some(r) => r,
            None => return Ok(()), // client left or server draining
        };
        match req {
            Request::Hello(h) => {
                let known = shared.tenants.iter().find(|t| t.name == h.tenant);
                match known {
                    Some(t) if t.secret == h.secret => {
                        write_frame(
                            &mut stream,
                            &Response::Welcome(Welcome {
                                engine: shared.current().engine.to_owned(),
                                tenant: t.name.clone(),
                            }),
                        )?;
                        break t.name.clone();
                    }
                    Some(_) => {
                        write_frame(
                            &mut stream,
                            &Response::Error(ErrorReply {
                                message: format!("bad secret for tenant '{}'", h.tenant),
                            }),
                        )?;
                        return Ok(());
                    }
                    None => {
                        write_frame(
                            &mut stream,
                            &Response::Error(ErrorReply {
                                message: format!("unknown tenant '{}'", h.tenant),
                            }),
                        )?;
                        return Ok(());
                    }
                }
            }
            _ => {
                write_frame(
                    &mut stream,
                    &Response::Error(ErrorReply {
                        message: "session not authenticated: send Hello first".to_owned(),
                    }),
                )?;
            }
        }
    };

    loop {
        let req = match read_request(&mut stream, shared)? {
            Some(r) => r,
            None => return Ok(()),
        };
        match req {
            Request::Query(q) => {
                let resp = run_query(shared, &tenant, &q);
                write_frame(&mut stream, &resp)?;
            }
            Request::Stats => {
                write_frame(&mut stream, &Response::Stats(shared.stats()))?;
            }
            Request::Shutdown => {
                write_frame(&mut stream, &Response::Bye)?;
                shared.trigger_stop();
                return Ok(());
            }
            Request::Goodbye => {
                write_frame(&mut stream, &Response::Bye)?;
                return Ok(());
            }
            Request::Hello(_) => {
                write_frame(
                    &mut stream,
                    &Response::Error(ErrorReply {
                        message: "session already authenticated".to_owned(),
                    }),
                )?;
            }
        }
    }
}

/// Admission → plan cache → governed execution, as one response.
///
/// The serving snapshot is pinned (one `Arc` clone) before planning
/// and held until the rows are produced: a live refresh swapping the
/// server's snapshot mid-query never moves the graph under this
/// execution, it only redirects *later* queries to the new epoch.
fn run_query(shared: &Arc<Shared>, tenant: &str, q: &QueryReq) -> Response {
    let snapshot = shared.current();
    let permit = match shared.admission.admit(tenant) {
        Ok(p) => p,
        Err(shed) => {
            return Response::Overloaded(Overloaded {
                scope: shed.scope().to_owned(),
                retry_after_ms: retry_after_ms(shed),
            })
        }
    };

    let key = q.text.trim();
    let statement = match cypher::parse(key) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error(ErrorReply {
                message: e.to_string(),
            })
        }
    };
    let select = match statement {
        CypherStatement::Select(s) => *s,
        _ => {
            return Response::Error(ErrorReply {
                message: "the server serves an immutable snapshot: only MATCH queries are accepted"
                    .to_owned(),
            })
        }
    };

    // Cache lookups carry the pinned snapshot's epoch: a plan cached
    // against an older (or newer) snapshot misses and is evicted, so a
    // refresh needs no coordinated cache clear.
    let epoch = snapshot.frozen.epoch();
    let (planned, cached_plan) = match shared.cache.get_epoch(key, epoch) {
        Some(p) => (p, true),
        None => {
            let planned = match gdm_query::plan_select(&snapshot.frozen, &select) {
                Ok(p) => Arc::new(p),
                Err(e) => {
                    return Response::Error(ErrorReply {
                        message: e.to_string(),
                    })
                }
            };
            shared.cache.insert_epoch(key, epoch, planned.clone());
            (planned, false)
        }
    };

    let guard = match shared.pool.get(tenant) {
        Some(allowance) => {
            ExecutionGuard::with_allowance(shared.limits, CancelToken::new(), allowance)
        }
        None => ExecutionGuard::with_cancel(shared.limits, CancelToken::new()),
    };
    let result = gdm_query::execute_planned_governed(&snapshot.frozen, &planned, &guard);
    drop(permit);

    match result {
        Ok(rs) => Response::Rows(Rows {
            columns: rs.columns,
            rows: rs.rows,
            cached_plan,
        }),
        Err(e) if e.is_interrupted() => {
            let reason = e
                .interrupt_reason()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "interrupted".to_owned());
            let partial = match e {
                gdm_core::GdmError::Interrupted { partial, .. } => partial,
                _ => 0,
            };
            Response::Interrupted(Interrupted { reason, partial })
        }
        Err(e) => Response::Error(ErrorReply {
            message: e.to_string(),
        }),
    }
}

/// Reads one request, tolerating read timeouts so the stop flag is
/// polled. Returns `None` on a clean client EOF, or — when the server
/// is draining — as soon as the connection goes idle between frames.
fn read_request(stream: &mut TcpStream, shared: &Arc<Shared>) -> io::Result<Option<Request>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None) // clean EOF at a frame boundary
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                // Idle poll point: drain only between frames — a
                // partially read prefix means a request is in flight.
                if got == 0 && shared.stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < body.len() {
        match stream.read(&mut body[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    serde_json::from_slice(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
