//! One connection's life: authenticate, then serve requests.
//!
//! The session socket carries a short read timeout so the loop can
//! poll the server's stop flag between requests — that is what makes
//! shutdown a *drain* (in-flight queries finish, idle sessions close)
//! instead of an abort. The same poll points enforce the session's
//! two self-defense deadlines:
//!
//! - **Frame deadline** (slowloris cutoff): once a frame's first byte
//!   arrives, the whole frame must arrive within
//!   `ServerConfig::frame_deadline`, or the session is reaped — a
//!   client sending 4 length bytes and then dripping cannot pin a
//!   pooled worker.
//! - **Idle max-age**: a session that starts no frame for
//!   `ServerConfig::idle_timeout` is reaped between frames.
//!
//! Torn, oversized, or undecodable frames get a best-effort structured
//! `Error` reply and a close (`frame_errors`); a query whose execution
//! panics is contained by `catch_unwind` and closes only its own
//! session (`queries_poisoned`) — the worker thread survives to serve
//! the next connection.

use crate::admission::Shed;
use crate::protocol::{
    write_frame, ErrorReply, Interrupted, Overloaded, QueryReq, Request, Response, Rows, Welcome,
    MAX_FRAME, READ_CHUNK,
};
use crate::server::Shared;
use gdm_govern::{CancelToken, ExecutionGuard};
use gdm_query::cypher::{self, CypherStatement};
use std::io::{self, Read};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often an idle session re-checks the stop flag and its deadlines.
const POLL: Duration = Duration::from_millis(50);

/// Backoff hint for shed requests, scaled by why they were shed: a
/// queue-full shed clears as soon as one query finishes; a tenant-cap
/// shed means the client itself is the congestion.
fn retry_after_ms(shed: Shed) -> u64 {
    match shed {
        Shed::QueueFull => 10,
        Shed::TenantCap => 50,
    }
}

/// Runs one session to completion. Errors (broken pipe, torn frame,
/// tripped deadline) close the connection; the server keeps serving
/// others.
pub(crate) fn run(stream: TcpStream, shared: &Arc<Shared>) {
    serve_session(stream, shared);
}

fn serve_session(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    // A stalled reader cannot wedge the worker inside write_frame: the
    // write times out and the session closes.
    stream.set_write_timeout(Some(shared.write_timeout)).ok();
    stream.set_nodelay(true).ok();

    // First frame must be Hello; authenticate against the tenant list.
    // HEALTH is the one pre-auth command, so load balancers can probe
    // liveness without tenant credentials.
    let tenant = loop {
        let req = match next_request(&mut stream, shared) {
            Some(r) => r,
            None => return, // client left, reaped, or server draining
        };
        match req {
            Request::Hello(h) => {
                let known = shared.tenants.iter().find(|t| t.name == h.tenant);
                match known {
                    Some(t) if t.secret == h.secret => {
                        let welcome = Response::Welcome(Welcome {
                            engine: shared.current().engine.to_owned(),
                            tenant: t.name.clone(),
                        });
                        if write_frame(&mut stream, &welcome).is_err() {
                            return;
                        }
                        break t.name.clone();
                    }
                    Some(_) => {
                        let _ = write_frame(
                            &mut stream,
                            &Response::Error(ErrorReply {
                                message: format!("bad secret for tenant '{}'", h.tenant),
                            }),
                        );
                        return;
                    }
                    None => {
                        let _ = write_frame(
                            &mut stream,
                            &Response::Error(ErrorReply {
                                message: format!("unknown tenant '{}'", h.tenant),
                            }),
                        );
                        return;
                    }
                }
            }
            Request::Health => {
                if write_frame(&mut stream, &Response::Health(shared.health())).is_err() {
                    return;
                }
            }
            _ => {
                let reply = Response::Error(ErrorReply {
                    message: "session not authenticated: send Hello first".to_owned(),
                });
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
        }
    };

    loop {
        let req = match next_request(&mut stream, shared) {
            Some(r) => r,
            None => return,
        };
        match req {
            Request::Query(q) => {
                // Containment: a panic inside planning or execution
                // poisons this session only — reply with a structured
                // error where possible, close, and leave the pooled
                // worker alive for the next connection. The shared
                // state a query touches (snapshot Arc, atomics, the
                // admission permit released on unwind) stays
                // consistent, which is what makes the unwind safe to
                // assert across.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_query(shared, &tenant, &q)
                }));
                match result {
                    Ok(resp) => {
                        if write_frame(&mut stream, &resp).is_err() {
                            return;
                        }
                    }
                    Err(_) => {
                        shared.queries_poisoned.fetch_add(1, Ordering::Relaxed);
                        let _ = write_frame(
                            &mut stream,
                            &Response::Error(ErrorReply {
                                message: "internal error: query execution panicked; \
                                          closing this session"
                                    .to_owned(),
                            }),
                        );
                        return;
                    }
                }
            }
            Request::Stats => {
                if write_frame(&mut stream, &Response::Stats(shared.stats())).is_err() {
                    return;
                }
            }
            Request::Health => {
                if write_frame(&mut stream, &Response::Health(shared.health())).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = write_frame(&mut stream, &Response::Bye);
                shared.trigger_stop();
                return;
            }
            Request::Goodbye => {
                let _ = write_frame(&mut stream, &Response::Bye);
                return;
            }
            Request::Hello(_) => {
                let reply = Response::Error(ErrorReply {
                    message: "session already authenticated".to_owned(),
                });
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
        }
    }
}

/// Admission → plan cache → governed execution, as one response.
///
/// The serving snapshot is pinned (one `Arc` clone) before planning
/// and held until the rows are produced: a live refresh swapping the
/// server's snapshot mid-query never moves the graph under this
/// execution, it only redirects *later* queries to the new epoch.
fn run_query(shared: &Arc<Shared>, tenant: &str, q: &QueryReq) -> Response {
    if shared.panic_injection && q.text.trim() == "::chaos-panic" {
        panic!("chaos: injected query panic");
    }
    let snapshot = shared.current();
    let permit = match shared.admission.admit(tenant) {
        Ok(p) => p,
        Err(shed) => {
            return Response::Overloaded(Overloaded {
                scope: shed.scope().to_owned(),
                retry_after_ms: retry_after_ms(shed),
            })
        }
    };

    let key = q.text.trim();
    let statement = match cypher::parse(key) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error(ErrorReply {
                message: e.to_string(),
            })
        }
    };
    let select = match statement {
        CypherStatement::Select(s) => *s,
        _ => {
            return Response::Error(ErrorReply {
                message: "the server serves an immutable snapshot: only MATCH queries are accepted"
                    .to_owned(),
            })
        }
    };

    // Cache lookups carry the pinned snapshot's epoch: a plan cached
    // against an older (or newer) snapshot misses and is evicted, so a
    // refresh needs no coordinated cache clear.
    let epoch = snapshot.frozen.epoch();
    let (planned, cached_plan) = match shared.cache.get_epoch(key, epoch) {
        Some(p) => (p, true),
        None => {
            let planned = match gdm_query::plan_select(&snapshot.frozen, &select) {
                Ok(p) => Arc::new(p),
                Err(e) => {
                    return Response::Error(ErrorReply {
                        message: e.to_string(),
                    })
                }
            };
            shared.cache.insert_epoch(key, epoch, planned.clone());
            (planned, false)
        }
    };

    let guard = match shared.pool.get(tenant) {
        Some(allowance) => {
            ExecutionGuard::with_allowance(shared.limits, CancelToken::new(), allowance)
        }
        None => ExecutionGuard::with_cancel(shared.limits, CancelToken::new()),
    };
    let result = gdm_query::execute_planned_governed(&snapshot.frozen, &planned, &guard);
    drop(permit);

    match result {
        Ok(rs) => Response::Rows(Rows {
            columns: rs.columns,
            rows: rs.rows,
            cached_plan,
        }),
        Err(e) if e.is_interrupted() => {
            let reason = e
                .interrupt_reason()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "interrupted".to_owned());
            let partial = match e {
                gdm_core::GdmError::Interrupted { partial, .. } => partial,
                _ => 0,
            };
            Response::Interrupted(Interrupted { reason, partial })
        }
        Err(e) => Response::Error(ErrorReply {
            message: e.to_string(),
        }),
    }
}

/// Reads the next request, classifying every failure: `None` means
/// the session is over (clean EOF, drain, reap, or a counted frame
/// error that got its best-effort structured reply here).
fn next_request(stream: &mut TcpStream, shared: &Arc<Shared>) -> Option<Request> {
    match read_request(stream, shared) {
        Ok(r) => r,
        Err(e) => {
            if matches!(
                e.kind(),
                io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
            ) {
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort structured goodbye; on a torn frame the
                // peer is often already gone and the write just fails.
                let _ = write_frame(
                    stream,
                    &Response::Error(ErrorReply {
                        message: format!("protocol error: {e}; closing session"),
                    }),
                );
            }
            None
        }
    }
}

/// Reads one request, tolerating read timeouts so the stop flag is
/// polled. Returns `None` on a clean client EOF, when the server is
/// draining and the connection is idle between frames, or when the
/// idle max-age reaps the session. Mid-frame, the frame deadline is
/// enforced at every poll: a slowloris drip is cut off with a
/// `TimedOut` error (counted in `sessions_reaped`) instead of holding
/// the worker hostage.
fn read_request(stream: &mut TcpStream, shared: &Arc<Shared>) -> io::Result<Option<Request>> {
    let idle_since = Instant::now();
    let mut frame_start: Option<Instant> = None;
    let reap_check = |frame_start: &Option<Instant>| -> io::Result<()> {
        if let Some(t0) = frame_start {
            if t0.elapsed() >= shared.frame_deadline {
                shared.sessions_reaped.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame read deadline exceeded (slowloris cutoff)",
                ));
            }
        }
        Ok(())
    };

    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None) // clean EOF at a frame boundary
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => {
                if got == 0 {
                    frame_start = Some(Instant::now());
                }
                got += n;
                reap_check(&frame_start)?;
            }
            Err(e) if is_timeout(&e) => {
                if got == 0 {
                    // Idle poll point: drain only between frames — a
                    // partially read prefix means a request is in
                    // flight.
                    if shared.stop.load(Ordering::Acquire) {
                        return Ok(None);
                    }
                    if idle_since.elapsed() >= shared.idle_timeout {
                        shared.sessions_reaped.fetch_add(1, Ordering::Relaxed);
                        return Ok(None);
                    }
                } else {
                    reap_check(&frame_start)?;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    // Incremental body read: the length prefix is untrusted input, so
    // memory is committed per arriving chunk, never the full claimed
    // size up front — a hostile 16 MiB prefix with no body costs one
    // chunk, and the frame deadline collects the connection.
    let len = len as usize;
    let mut body = Vec::with_capacity(len.min(READ_CHUNK));
    let mut chunk = [0u8; 4096];
    while body.len() < len {
        let want = (len - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => {
                body.extend_from_slice(&chunk[..n]);
                reap_check(&frame_start)?;
            }
            Err(e) if is_timeout(&e) => reap_check(&frame_start)?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    serde_json::from_slice(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
