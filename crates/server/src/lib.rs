//! # gdm-server — the multi-tenant query server
//!
//! The paper compares nine graph databases as *systems serving
//! clients*, not as in-process libraries; this crate closes that gap.
//! It fronts any engine emulation with a TCP server whose sessions
//! authenticate to a **tenant**, and layers three serving concerns the
//! single-process facade never needed:
//!
//! - **Admission control** ([`Admission`]): a per-tenant in-flight cap
//!   and a global slots-plus-bounded-queue, both *shed-on-full* with a
//!   structured [`protocol::Overloaded`] reply — overload produces
//!   fast, honest rejections instead of unbounded queueing.
//! - **Fair budgets**: every query runs under a
//!   [`gdm_govern::ExecutionGuard`] drawing credits from its tenant's
//!   [`gdm_govern::TenantAllowance`], refilled by a pacer thread
//!   through [`gdm_govern::BudgetPool`]'s weighted max-min split. A
//!   greedy tenant exhausts its own allowance (queries return
//!   `Interrupted { reason: "tenant allowance exhausted" }`) while a
//!   light tenant's credits — and latency — survive.
//! - **A shared plan cache** ([`gdm_query::PlanCache`]): sound here
//!   precisely because the server executes over an immutable
//!   [`gdm_engines::ServingSnapshot`], so cached index domains can
//!   never go stale.
//!
//! Wire format and the full command set live in [`protocol`]; the
//! fairness math and keying rationale are written up in DESIGN.md §12.
//!
//! ## Serving an engine
//!
//! ```no_run
//! use gdm_server::{serve, Client, ServerConfig, TenantConfig};
//! use gdm_engines::{make_engine, EngineKind, GraphEngine};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join("gdm-serve-doc");
//! # std::fs::create_dir_all(&dir)?;
//! let db = make_engine(EngineKind::Neo4j, &dir)?;
//! let mut config = ServerConfig::default();
//! config.tenants.push(TenantConfig::new("alpha", 3));
//!
//! let handle = serve(db.serving_snapshot()?, config)?;
//! let mut client = Client::connect(handle.addr())?;
//! client.hello("alpha", None)?;
//! let reply = client.query("MATCH (p:Person) RETURN p.name")?;
//! println!("{reply:?}");
//! client.goodbye()?;
//! handle.shutdown();
//! # Ok(()) }
//! ```

pub mod admission;
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod refresh;
mod server;
mod session;

pub use admission::{Admission, Permit, Shed};
pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats, Fault};
pub use client::{Client, Deadlines, RetryingClient};
pub use protocol::{HealthReply, Request, Response, StatsReply};
pub use refresh::{channel_source, ChannelSource, RefreshPolicy, SnapshotSource, SourcePump};
pub use server::{serve, ServerConfig, ServerHandle, TenantConfig, REFRESH_PRINCIPAL};
