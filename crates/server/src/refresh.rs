//! Background snapshot refresh: policy, source, and the thread glue.
//!
//! PR 8 made live refresh *possible* (`ServerHandle::refresh_with`
//! swaps an incrementally re-frozen snapshot under traffic); this
//! module makes it *self-driving*. A server-owned thread watches how
//! far the serving snapshot has drifted from the live engine — the
//! [`DeltaTracker`](gdm_core::DeltaTracker) change count surfaced
//! through [`SnapshotSource::pending_changes`] — and re-freezes when
//! the drift crosses a change-count or staleness threshold. A failed
//! rebuild never takes the server down: the old snapshot keeps
//! serving, the thread backs off exponentially, and the `HEALTH`
//! command reports `degraded` until a rebuild lands.
//!
//! Engines are deliberately not `Send`, so the refresh thread cannot
//! own one. [`channel_source`] bridges the gap: the engine's owning
//! thread keeps the engine and periodically *pumps* rebuild requests
//! ([`SourcePump::try_serve`]) that the refresh thread sends through a
//! channel — the engine never crosses a thread boundary, only the
//! immutable [`FrozenGraph`] result does.

use gdm_algo::FrozenGraph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// When the background refresh thread re-freezes, and how it behaves
/// when a re-freeze fails.
#[derive(Debug, Clone, Copy)]
pub struct RefreshPolicy {
    /// Re-freeze once this many changes are pending, regardless of
    /// snapshot age.
    pub min_changes: u64,
    /// Re-freeze once *any* change is pending and the serving snapshot
    /// is older than this.
    pub max_staleness: Duration,
    /// How often the thread samples [`SnapshotSource::pending_changes`].
    pub poll_interval: Duration,
    /// Sleep after the first failed rebuild; doubles per consecutive
    /// failure.
    pub failure_backoff: Duration,
    /// Ceiling on the failure backoff.
    pub max_backoff: Duration,
}

impl Default for RefreshPolicy {
    /// Re-freeze at 1 000 pending changes or 2 s of staleness, polling
    /// every 100 ms; failures back off 100 ms → 5 s.
    fn default() -> Self {
        RefreshPolicy {
            min_changes: 1_000,
            max_staleness: Duration::from_secs(2),
            poll_interval: Duration::from_millis(100),
            failure_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// What the background refresh thread needs from the data side: how
/// far the serving snapshot has drifted, and a way to build its
/// replacement. Implementations must be `Send` (the thread owns the
/// source); engine owners that cannot move their engine use
/// [`channel_source`].
pub trait SnapshotSource: Send {
    /// Mutations recorded since the serving snapshot was frozen.
    /// `u64::MAX` means "unbounded drift" (the tracker degraded to a
    /// full rebuild) and triggers a refresh like any large count.
    fn pending_changes(&mut self) -> u64;

    /// Builds the next snapshot from the one currently serving —
    /// typically [`gdm_engines::GraphEngine::refreeze`]. An error
    /// leaves the previous snapshot serving; the refresh thread backs
    /// off and retries.
    fn rebuild(&mut self, prev: &FrozenGraph) -> gdm_core::Result<FrozenGraph>;
}

fn broken_pump(msg: &str) -> gdm_core::GdmError {
    gdm_core::GdmError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, msg))
}

/// A rebuild request in flight from the refresh thread to the engine
/// owner: the serving snapshot to patch, and where to send the result.
struct RebuildReq {
    prev: FrozenGraph,
    reply: Sender<gdm_core::Result<FrozenGraph>>,
}

/// The `Send` half of [`channel_source`]: lives on the refresh thread,
/// forwards rebuilds to the engine owner and relays pending-change
/// reports.
pub struct ChannelSource {
    req_tx: Sender<RebuildReq>,
    pending: Arc<AtomicU64>,
    /// How long a rebuild may wait on the owner before the refresh
    /// counts it as failed.
    pub rebuild_timeout: Duration,
}

/// The engine-owner half of [`channel_source`]: stays on the thread
/// that owns the (non-`Send`) engine, reporting drift and serving
/// rebuild requests in its own loop.
pub struct SourcePump {
    req_rx: Receiver<RebuildReq>,
    pending: Arc<AtomicU64>,
}

/// A [`SnapshotSource`] / [`SourcePump`] pair bridging the refresh
/// thread and a thread-bound engine. Hand the [`ChannelSource`] to
/// [`crate::ServerHandle::start_auto_refresh`]; on the engine's owning
/// thread, interleave mutations with [`SourcePump::report_pending`]
/// and [`SourcePump::try_serve`].
pub fn channel_source() -> (ChannelSource, SourcePump) {
    let (req_tx, req_rx) = mpsc::channel();
    let pending = Arc::new(AtomicU64::new(0));
    (
        ChannelSource {
            req_tx,
            pending: pending.clone(),
            rebuild_timeout: Duration::from_secs(10),
        },
        SourcePump { req_rx, pending },
    )
}

impl SnapshotSource for ChannelSource {
    fn pending_changes(&mut self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }

    fn rebuild(&mut self, prev: &FrozenGraph) -> gdm_core::Result<FrozenGraph> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.req_tx
            .send(RebuildReq {
                prev: prev.clone(),
                reply: reply_tx,
            })
            .map_err(|_| broken_pump("snapshot source pump is gone"))?;
        match reply_rx.recv_timeout(self.rebuild_timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(gdm_core::GdmError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "snapshot rebuild timed out waiting for the engine owner",
            ))),
            Err(RecvTimeoutError::Disconnected) => {
                Err(broken_pump("snapshot source pump dropped mid-rebuild"))
            }
        }
    }
}

impl SourcePump {
    /// Publishes the engine's current drift (typically
    /// [`gdm_engines::GraphEngine::pending_changes`]) for the refresh
    /// thread's next policy evaluation.
    pub fn report_pending(&self, n: u64) {
        self.pending.store(n, Ordering::Release);
    }

    /// Serves at most one queued rebuild request with `build` (run on
    /// *this* thread, next to the engine). Returns whether a request
    /// was served. On success the published drift resets to 0; the
    /// owner's next [`SourcePump::report_pending`] re-establishes
    /// truth for anything mutated meanwhile.
    pub fn try_serve<F>(&self, build: F) -> bool
    where
        F: FnOnce(&FrozenGraph) -> gdm_core::Result<FrozenGraph>,
    {
        match self.req_rx.try_recv() {
            Ok(req) => {
                let result = build(&req.prev);
                if result.is_ok() {
                    self.pending.store(0, Ordering::Release);
                }
                // A dropped reply means the refresh timed out on us;
                // the next request will carry the then-current prev.
                let _ = req.reply.send(result);
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_source_round_trips_a_rebuild_error() {
        let (mut source, pump) = channel_source();
        source.rebuild_timeout = Duration::from_secs(2);
        pump.report_pending(3);
        assert_eq!(source.pending_changes(), 3);

        let owner = std::thread::spawn(move || {
            // Serve exactly one request, failing it.
            loop {
                let served = pump.try_serve(|_prev| {
                    Err(gdm_core::GdmError::Storage(
                        "injected rebuild failure".into(),
                    ))
                });
                if served {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            pump
        });

        let dir = std::env::temp_dir().join(format!("gdm-refresh-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let db = gdm_engines::make_engine(gdm_engines::EngineKind::Neo4j, &dir).expect("engine");
        let prev = db.snapshot().expect("snapshot");
        let err = source.rebuild(&prev).expect_err("injected failure");
        assert!(err.to_string().contains("injected rebuild failure"));
        let pump = owner.join().expect("owner thread");
        // A failed rebuild must not clear the drift.
        assert_eq!(source.pending_changes(), 3);
        drop(pump);
        // Pump gone: rebuild degrades to a structured error, not a hang.
        assert!(source.rebuild(&prev).is_err());
    }
}
