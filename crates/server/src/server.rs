//! The server: listener, worker pool, refill pacer, shutdown drain.
//!
//! Threading model (all `std`, no async): one acceptor thread blocks
//! on [`TcpListener::accept`] and feeds connections through an mpsc
//! channel to a fixed pool of session workers — each connection is
//! owned by one worker for its whole life (sessions are stateful:
//! they authenticate once, then stream queries). One pacer thread
//! refills the fair budget pool on a fixed cadence.
//!
//! Engines are deliberately not `Send`, so the server never holds one:
//! it takes a [`ServingSnapshot`] (immutable CSR graph + engine
//! identity + default limits) at startup and shares it read-only
//! across workers.
//!
//! Shutdown: a stop flag plus a self-connection to unblock the
//! acceptor. Sessions poll the flag between requests (their sockets
//! carry a short read timeout), finish whatever query is in flight,
//! and close — a drain, not an abort.

use crate::admission::Admission;
use crate::protocol::{CacheStats, StatsReply, TenantStats};
use crate::session;
use gdm_engines::ServingSnapshot;
use gdm_govern::{BudgetPool, Limits};
use gdm_query::PlanCache;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reserved budget-pool principal the refresh path draws from. The
/// name cannot collide with a tenant: `TenantConfig` names come from
/// configuration and sessions authenticate by exact match, while this
/// principal is registered by [`serve`] itself.
pub const REFRESH_PRINCIPAL: &str = "::refresh";

/// One tenant's serving configuration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name clients authenticate as.
    pub name: String,
    /// Fair-share weight in the budget pool (≥ 1).
    pub weight: u64,
    /// Maximum concurrently executing queries before admission sheds.
    pub max_in_flight: usize,
    /// Burst cap on banked pool credits.
    pub burst_cap: i64,
    /// Shared secret; `None` admits the tenant by name alone.
    pub secret: Option<String>,
}

impl TenantConfig {
    /// A tenant with the given fairness weight and serving defaults:
    /// 4 in-flight queries, a 100k-credit burst cap, no secret.
    pub fn new(name: impl Into<String>, weight: u64) -> Self {
        TenantConfig {
            name: name.into(),
            weight,
            max_in_flight: 4,
            burst_cap: 100_000,
            secret: None,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Session worker threads (= maximum concurrent connections).
    pub workers: usize,
    /// Concurrently executing queries across all sessions.
    pub slots: usize,
    /// Admission wait-queue length; a request past it is shed.
    pub queue: usize,
    /// The tenants sessions may authenticate to.
    pub tenants: Vec<TenantConfig>,
    /// Budget-pool refill cadence.
    pub refill_interval: Duration,
    /// Credits distributed per refill (split by weighted max-min).
    pub refill_credits: u64,
    /// Per-query limits; `None` uses the snapshot engine's defaults.
    pub query_limits: Option<Limits>,
    /// Plans the shared cache holds before FIFO eviction.
    pub plan_cache_capacity: usize,
    /// Morsel-executor worker threads per query (`0` keeps the
    /// process-wide auto setting, [`gdm_algo::default_threads`]).
    /// Applied once by [`serve`] via [`gdm_algo::set_executor_workers`].
    pub executor_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            slots: 2,
            queue: 8,
            tenants: Vec::new(),
            refill_interval: Duration::from_millis(20),
            refill_credits: 50_000,
            query_limits: None,
            plan_cache_capacity: 64,
            executor_workers: 0,
        }
    }
}

/// Everything the worker threads share.
pub(crate) struct Shared {
    /// The serving snapshot, swappable by [`ServerHandle::refresh_with`].
    /// Sessions clone the `Arc` once per query, so a swap never moves
    /// the graph under an executing query — in-flight work finishes on
    /// the epoch it started with.
    pub(crate) snapshot: Mutex<Arc<ServingSnapshot>>,
    pub(crate) limits: Limits,
    pub(crate) tenants: Vec<TenantConfig>,
    pub(crate) pool: BudgetPool,
    pub(crate) admission: Arc<Admission>,
    pub(crate) cache: PlanCache,
    pub(crate) stop: AtomicBool,
    /// Lifetime snapshot refreshes.
    refreshes: AtomicU64,
    /// Microseconds the most recent refresh spent building + swapping.
    last_refresh_us: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    /// The snapshot new queries should pin (one `Arc` clone).
    pub(crate) fn current(&self) -> Arc<ServingSnapshot> {
        self.snapshot.lock().expect("snapshot lock").clone()
    }

    /// Sets the stop flag and pokes the acceptor awake with a throwaway
    /// self-connection. Idempotent; connection failure just means the
    /// acceptor is already gone.
    pub(crate) fn trigger_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }

    /// The counters behind the `STATS` command.
    pub(crate) fn stats(&self) -> StatsReply {
        StatsReply {
            tenants: self
                .pool
                .tenants()
                .iter()
                .map(|t| TenantStats {
                    name: t.name().to_owned(),
                    weight: t.weight(),
                    credits: t.credits(),
                    charged: t.charged(),
                    throttled: t.throttled(),
                    shed: self.admission.tenant_shed(t.name()),
                })
                .collect(),
            plan_cache: CacheStats {
                hits: self.cache.hits(),
                misses: self.cache.misses(),
                entries: self.cache.len() as u64,
                epoch_evictions: self.cache.epoch_evictions(),
            },
            queue_shed: self.admission.queue_shed(),
            executor_workers: gdm_algo::executor_workers() as u64,
            snapshot_epoch: self.current().frozen.epoch(),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            last_refresh_us: self.last_refresh_us.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Keep it; dropping without [`ServerHandle::shutdown`]
/// leaks the worker threads until process exit.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (an ephemeral loopback port under test).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters, without a session.
    pub fn stats(&self) -> StatsReply {
        self.shared.stats()
    }

    /// Refreshes the serving snapshot without stopping the server.
    ///
    /// `build` receives the snapshot currently serving and returns its
    /// replacement — typically the owning thread's engine calling
    /// [`gdm_engines::GraphEngine::refreeze`], which patches only the
    /// rows its delta tracker recorded (O(changes), not O(graph)). The
    /// engine stays with its owner: only the immutable result crosses
    /// into the server, swapped in atomically behind an `Arc`.
    /// Sessions pin the snapshot per query, so in-flight queries
    /// finish on the epoch they started with and the *next* query
    /// observes the new one; stale plan-cache entries evict lazily by
    /// epoch tag.
    ///
    /// Refresh work is metered like tenant work: the build is charged
    /// to the reserved [`REFRESH_PRINCIPAL`] budget at one credit per
    /// unit of [`gdm_algo::FrozenGraph::freeze_work`], and a refresh is
    /// refused (`WouldBlock`) while that principal is overdrawn — a
    /// hot mutation loop cannot starve query traffic by re-freezing
    /// continuously. Returns the new serving epoch.
    pub fn refresh_with<F>(&self, build: F) -> io::Result<u64>
    where
        F: FnOnce(&gdm_algo::FrozenGraph) -> gdm_core::Result<gdm_algo::FrozenGraph>,
    {
        let allowance = self.shared.pool.get(REFRESH_PRINCIPAL);
        if let Some(a) = &allowance {
            if !a.has_credit() {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "refresh budget exhausted: retry after the pool refills",
                ));
            }
        }
        let started = Instant::now();
        let prev = self.shared.current();
        let frozen = build(&prev.frozen)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let epoch = frozen.epoch();
        let work = frozen.freeze_work();
        let next = Arc::new(ServingSnapshot {
            engine: prev.engine,
            frozen,
            limits: prev.limits,
        });
        *self.shared.snapshot.lock().expect("snapshot lock") = next;
        self.shared
            .last_refresh_us
            .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.shared.refreshes.fetch_add(1, Ordering::Relaxed);
        if let Some(a) = allowance {
            // Overdraft (not refusal) on purpose: the work is already
            // done, so record it and let the debt gate the next one.
            let _ = a.charge(work);
        }
        Ok(epoch)
    }

    /// Stops accepting, drains in-flight sessions, joins every thread.
    /// Also completes a shutdown a client already triggered remotely.
    pub fn shutdown(mut self) {
        self.shared.trigger_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Waits for the server to stop without triggering it — pair with
    /// a client-sent `Shutdown` request.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds a loopback listener and serves `snapshot` under `config`.
/// Returns once the listener is live; queries run on worker threads.
pub fn serve(snapshot: ServingSnapshot, config: ServerConfig) -> io::Result<ServerHandle> {
    if config.tenants.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a server needs at least one tenant",
        ));
    }
    if config.executor_workers > 0 {
        gdm_algo::set_executor_workers(config.executor_workers);
    }
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;

    let mut pool = BudgetPool::new();
    for t in &config.tenants {
        pool.register(t.name.clone(), t.weight, t.burst_cap);
    }
    // The refresh path draws from the same fair pool as the tenants
    // (weight 1), so snapshot rebuild work is globally accounted and
    // cannot silently crowd out query budgets.
    pool.register(
        REFRESH_PRINCIPAL.to_owned(),
        1,
        config.refill_credits as i64,
    );
    let admission = Admission::new(
        config.slots,
        config.queue,
        &config
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.max_in_flight))
            .collect::<Vec<_>>(),
    );
    let limits = config.query_limits.unwrap_or(snapshot.limits);
    let shared = Arc::new(Shared {
        snapshot: Mutex::new(Arc::new(snapshot)),
        limits,
        tenants: config.tenants.clone(),
        pool,
        admission,
        cache: PlanCache::new(config.plan_cache_capacity),
        stop: AtomicBool::new(false),
        refreshes: AtomicU64::new(0),
        last_refresh_us: AtomicU64::new(0),
        addr,
    });

    let mut threads = Vec::new();

    // Refill pacer: the fair-share scheduler's clock.
    {
        let shared = shared.clone();
        let interval = config.refill_interval;
        let credits = config.refill_credits;
        threads.push(std::thread::spawn(move || {
            while !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                shared.pool.refill(credits);
            }
        }));
    }

    // Session workers, fed by the acceptor through a channel.
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..config.workers.max(1) {
        let shared = shared.clone();
        let rx = rx.clone();
        threads.push(std::thread::spawn(move || loop {
            let conn = rx.lock().expect("worker queue lock").recv();
            match conn {
                Ok(stream) => session::run(stream, &shared),
                Err(_) => break, // acceptor gone: no more connections
            }
        }));
    }

    // Acceptor.
    {
        let shared = shared.clone();
        threads.push(std::thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shared.stop.load(Ordering::Acquire) {
                            break; // the wake-up connection, or late arrivals
                        }
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        if shared.stop.load(Ordering::Acquire) {
                            break;
                        }
                        // Transient accept failure: keep serving.
                    }
                }
            }
            // tx drops here; workers drain the queue and exit.
        }));
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}
