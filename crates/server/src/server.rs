//! The server: listener, worker pool, refill pacer, shutdown drain.
//!
//! Threading model (all `std`, no async): one acceptor thread blocks
//! on [`TcpListener::accept`] and feeds connections through an mpsc
//! channel to a fixed pool of session workers — each connection is
//! owned by one worker for its whole life (sessions are stateful:
//! they authenticate once, then stream queries). One pacer thread
//! refills the fair budget pool on a fixed cadence.
//!
//! Engines are deliberately not `Send`, so the server never holds one:
//! it takes a [`ServingSnapshot`] (immutable CSR graph + engine
//! identity + default limits) at startup and shares it read-only
//! across workers.
//!
//! Shutdown: a stop flag plus a self-connection to unblock the
//! acceptor. Sessions poll the flag between requests (their sockets
//! carry a short read timeout), finish whatever query is in flight,
//! and close — a drain, not an abort.

use crate::admission::Admission;
use crate::protocol::{CacheStats, HealthReply, StatsReply, TenantStats};
use crate::refresh::{RefreshPolicy, SnapshotSource};
use crate::session;
use gdm_engines::ServingSnapshot;
use gdm_govern::{BudgetPool, Limits};
use gdm_query::PlanCache;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reserved budget-pool principal the refresh path draws from. The
/// name cannot collide with a tenant: `TenantConfig` names come from
/// configuration and sessions authenticate by exact match, while this
/// principal is registered by [`serve`] itself.
pub const REFRESH_PRINCIPAL: &str = "::refresh";

/// One tenant's serving configuration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name clients authenticate as.
    pub name: String,
    /// Fair-share weight in the budget pool (≥ 1).
    pub weight: u64,
    /// Maximum concurrently executing queries before admission sheds.
    pub max_in_flight: usize,
    /// Burst cap on banked pool credits.
    pub burst_cap: i64,
    /// Shared secret; `None` admits the tenant by name alone.
    pub secret: Option<String>,
}

impl TenantConfig {
    /// A tenant with the given fairness weight and serving defaults:
    /// 4 in-flight queries, a 100k-credit burst cap, no secret.
    pub fn new(name: impl Into<String>, weight: u64) -> Self {
        TenantConfig {
            name: name.into(),
            weight,
            max_in_flight: 4,
            burst_cap: 100_000,
            secret: None,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Session worker threads (= maximum concurrent connections).
    pub workers: usize,
    /// Concurrently executing queries across all sessions.
    pub slots: usize,
    /// Admission wait-queue length; a request past it is shed.
    pub queue: usize,
    /// The tenants sessions may authenticate to.
    pub tenants: Vec<TenantConfig>,
    /// Budget-pool refill cadence.
    pub refill_interval: Duration,
    /// Credits distributed per refill (split by weighted max-min).
    pub refill_credits: u64,
    /// Per-query limits; `None` uses the snapshot engine's defaults.
    pub query_limits: Option<Limits>,
    /// Plans the shared cache holds before FIFO eviction.
    pub plan_cache_capacity: usize,
    /// Morsel-executor worker threads per query (`0` keeps the
    /// process-wide auto setting, [`gdm_algo::default_threads`]).
    /// Applied once by [`serve`] via [`gdm_algo::set_executor_workers`].
    pub executor_workers: usize,
    /// Once the first byte of a frame has arrived, the whole frame
    /// must arrive within this deadline — the slowloris cutoff. A
    /// session holding a frame open past it is reaped (connection
    /// closed, `sessions_reaped` incremented) so it cannot pin a
    /// pooled worker with 4 bytes and silence.
    pub frame_deadline: Duration,
    /// Sessions idle (no frame started) longer than this are reaped.
    /// Generous by default: idle sessions are cheap, but unbounded
    /// lifetimes leak worker threads to clients that never hang up.
    pub idle_timeout: Duration,
    /// Socket write timeout: a client that stops reading while the
    /// server is mid-reply cannot wedge the worker in `write_frame`.
    pub write_timeout: Duration,
    /// Test/chaos hook: when true, the reserved query text
    /// `"::chaos-panic"` panics inside query execution, exercising the
    /// `catch_unwind` containment path (`queries_poisoned`). Never
    /// enable in production configurations.
    pub panic_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            slots: 2,
            queue: 8,
            tenants: Vec::new(),
            refill_interval: Duration::from_millis(20),
            refill_credits: 50_000,
            query_limits: None,
            plan_cache_capacity: 64,
            executor_workers: 0,
            frame_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(10),
            panic_injection: false,
        }
    }
}

/// Everything the worker threads share.
pub(crate) struct Shared {
    /// The serving snapshot, swappable by [`ServerHandle::refresh_with`].
    /// Sessions clone the `Arc` once per query, so a swap never moves
    /// the graph under an executing query — in-flight work finishes on
    /// the epoch it started with.
    pub(crate) snapshot: Mutex<Arc<ServingSnapshot>>,
    pub(crate) limits: Limits,
    pub(crate) tenants: Vec<TenantConfig>,
    pub(crate) pool: BudgetPool,
    pub(crate) admission: Arc<Admission>,
    pub(crate) cache: PlanCache,
    pub(crate) stop: AtomicBool,
    /// Slowloris cutoff: max wall-clock per mid-flight frame.
    pub(crate) frame_deadline: Duration,
    /// Idle-session max age before the reaper closes the connection.
    pub(crate) idle_timeout: Duration,
    /// Socket write timeout for session replies.
    pub(crate) write_timeout: Duration,
    /// Chaos hook: `"::chaos-panic"` queries panic (tests only).
    pub(crate) panic_injection: bool,
    /// Lifetime torn/oversized/undecodable frames.
    pub(crate) frame_errors: AtomicU64,
    /// Lifetime sessions closed by the frame deadline or idle max-age.
    pub(crate) sessions_reaped: AtomicU64,
    /// Lifetime queries contained by `catch_unwind`.
    pub(crate) queries_poisoned: AtomicU64,
    /// Lifetime snapshot refreshes.
    refreshes: AtomicU64,
    /// Microseconds the most recent refresh spent building + swapping.
    last_refresh_us: AtomicU64,
    /// Lifetime failed refresh attempts.
    refresh_failures: AtomicU64,
    /// Failed refresh attempts since the last success.
    consecutive_refresh_failures: AtomicU64,
    /// Drift behind the serving snapshot, as last sampled by the
    /// refresh thread (0 when no auto-refresh runs).
    pending_changes: AtomicU64,
    /// When the serving snapshot was installed (serve() or last swap).
    last_refresh_at: Mutex<Instant>,
    /// Auto-refresh thresholds for health classification:
    /// `(min_changes, max_staleness)`; `None` until
    /// [`ServerHandle::start_auto_refresh`] is called.
    refresh_thresholds: Mutex<Option<(u64, Duration)>>,
    addr: SocketAddr,
}

impl Shared {
    /// The snapshot new queries should pin (one `Arc` clone).
    pub(crate) fn current(&self) -> Arc<ServingSnapshot> {
        self.snapshot.lock().expect("snapshot lock").clone()
    }

    /// Sets the stop flag and pokes the acceptor awake with a throwaway
    /// self-connection. Idempotent; connection failure just means the
    /// acceptor is already gone.
    pub(crate) fn trigger_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }

    /// The counters behind the `STATS` command.
    pub(crate) fn stats(&self) -> StatsReply {
        StatsReply {
            tenants: self
                .pool
                .tenants()
                .iter()
                .map(|t| TenantStats {
                    name: t.name().to_owned(),
                    weight: t.weight(),
                    credits: t.credits(),
                    charged: t.charged(),
                    throttled: t.throttled(),
                    shed: self.admission.tenant_shed(t.name()),
                })
                .collect(),
            plan_cache: CacheStats {
                hits: self.cache.hits(),
                misses: self.cache.misses(),
                entries: self.cache.len() as u64,
                epoch_evictions: self.cache.epoch_evictions(),
            },
            queue_shed: self.admission.queue_shed(),
            executor_workers: gdm_algo::executor_workers() as u64,
            snapshot_epoch: self.current().frozen.epoch(),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            last_refresh_us: self.last_refresh_us.load(Ordering::Relaxed),
            refresh_failures: self.refresh_failures.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            sessions_reaped: self.sessions_reaped.load(Ordering::Relaxed),
            queries_poisoned: self.queries_poisoned.load(Ordering::Relaxed),
        }
    }

    /// The serving health state behind the `HEALTH` command. Degraded
    /// beats stale beats ready: a failing refresh is actionable even
    /// when the snapshot also happens to be behind.
    pub(crate) fn health(&self) -> HealthReply {
        let pending = self.pending_changes.load(Ordering::Relaxed);
        let consecutive = self.consecutive_refresh_failures.load(Ordering::Relaxed);
        let age = self
            .last_refresh_at
            .lock()
            .expect("refresh clock")
            .elapsed();
        let thresholds = *self.refresh_thresholds.lock().expect("refresh thresholds");
        let state = if consecutive > 0 {
            "degraded"
        } else {
            match thresholds {
                Some((min_changes, max_staleness))
                    if pending >= min_changes || (pending > 0 && age >= max_staleness) =>
                {
                    "stale"
                }
                _ => "ready",
            }
        };
        HealthReply {
            state: state.to_owned(),
            snapshot_epoch: self.current().frozen.epoch(),
            snapshot_age_ms: age.as_millis() as u64,
            pending_changes: pending,
            auto_refresh: thresholds.is_some(),
            refresh_failures: self.refresh_failures.load(Ordering::Relaxed),
            consecutive_refresh_failures: consecutive,
        }
    }

    /// The shared refresh path behind [`ServerHandle::refresh_with`]
    /// and the background refresh thread: budget gate, build, atomic
    /// swap, counters. A failed build leaves the serving snapshot
    /// untouched and counts a refresh failure.
    pub(crate) fn do_refresh<F>(&self, build: F) -> io::Result<u64>
    where
        F: FnOnce(&gdm_algo::FrozenGraph) -> gdm_core::Result<gdm_algo::FrozenGraph>,
    {
        let fail = |e: io::Error| {
            self.refresh_failures.fetch_add(1, Ordering::Relaxed);
            self.consecutive_refresh_failures
                .fetch_add(1, Ordering::Relaxed);
            e
        };
        let allowance = self.pool.get(REFRESH_PRINCIPAL);
        if let Some(a) = &allowance {
            if !a.has_credit() {
                return Err(fail(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "refresh budget exhausted: retry after the pool refills",
                )));
            }
        }
        let started = Instant::now();
        let prev = self.current();
        let frozen = build(&prev.frozen)
            .map_err(|e| fail(io::Error::new(io::ErrorKind::InvalidData, e.to_string())))?;
        let epoch = frozen.epoch();
        let work = frozen.freeze_work();
        let next = Arc::new(ServingSnapshot {
            engine: prev.engine,
            frozen,
            limits: prev.limits,
        });
        *self.snapshot.lock().expect("snapshot lock") = next;
        *self.last_refresh_at.lock().expect("refresh clock") = Instant::now();
        self.last_refresh_us
            .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        self.consecutive_refresh_failures
            .store(0, Ordering::Relaxed);
        if let Some(a) = allowance {
            // Overdraft (not refusal) on purpose: the work is already
            // done, so record it and let the debt gate the next one.
            let _ = a.charge(work);
        }
        Ok(epoch)
    }
}

/// A running server. Keep it; dropping without [`ServerHandle::shutdown`]
/// leaks the worker threads until process exit.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (an ephemeral loopback port under test).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters, without a session.
    pub fn stats(&self) -> StatsReply {
        self.shared.stats()
    }

    /// Refreshes the serving snapshot without stopping the server.
    ///
    /// `build` receives the snapshot currently serving and returns its
    /// replacement — typically the owning thread's engine calling
    /// [`gdm_engines::GraphEngine::refreeze`], which patches only the
    /// rows its delta tracker recorded (O(changes), not O(graph)). The
    /// engine stays with its owner: only the immutable result crosses
    /// into the server, swapped in atomically behind an `Arc`.
    /// Sessions pin the snapshot per query, so in-flight queries
    /// finish on the epoch they started with and the *next* query
    /// observes the new one; stale plan-cache entries evict lazily by
    /// epoch tag.
    ///
    /// Refresh work is metered like tenant work: the build is charged
    /// to the reserved [`REFRESH_PRINCIPAL`] budget at one credit per
    /// unit of [`gdm_algo::FrozenGraph::freeze_work`], and a refresh is
    /// refused (`WouldBlock`) while that principal is overdrawn — a
    /// hot mutation loop cannot starve query traffic by re-freezing
    /// continuously. Returns the new serving epoch.
    pub fn refresh_with<F>(&self, build: F) -> io::Result<u64>
    where
        F: FnOnce(&gdm_algo::FrozenGraph) -> gdm_core::Result<gdm_algo::FrozenGraph>,
    {
        self.shared.do_refresh(build)
    }

    /// The serving health state (same payload as the `HEALTH`
    /// protocol command), without a session.
    pub fn health(&self) -> HealthReply {
        self.shared.health()
    }

    /// Starts the server-owned background refresh thread: the
    /// ROADMAP's auto-refresh policy. The thread samples
    /// [`SnapshotSource::pending_changes`] every
    /// [`RefreshPolicy::poll_interval`]; once the drift crosses
    /// [`RefreshPolicy::min_changes`] — or any drift outlives
    /// [`RefreshPolicy::max_staleness`] — it re-freezes through the
    /// same budget-metered path as [`ServerHandle::refresh_with`] and
    /// swaps the result under live traffic.
    ///
    /// Failure is survivable by construction: a failed rebuild leaves
    /// the previous snapshot serving, marks health `degraded`, and
    /// backs off exponentially ([`RefreshPolicy::failure_backoff`] →
    /// [`RefreshPolicy::max_backoff`]) before retrying. The thread
    /// joins on shutdown like every other server thread.
    ///
    /// Engines are not `Send`; pair this with
    /// [`crate::refresh::channel_source`] so the engine stays with its
    /// owning thread and only immutable snapshots cross over.
    pub fn start_auto_refresh<S: SnapshotSource + 'static>(
        &mut self,
        policy: RefreshPolicy,
        mut source: S,
    ) {
        *self
            .shared
            .refresh_thresholds
            .lock()
            .expect("refresh thresholds") = Some((policy.min_changes.max(1), policy.max_staleness));
        let shared = self.shared.clone();
        self.threads.push(std::thread::spawn(move || {
            let mut backoff = policy.failure_backoff;
            // Sleep in short slices so shutdown never waits on a full
            // poll interval or a long failure backoff.
            let nap = |total: Duration| {
                let slice = Duration::from_millis(20);
                let mut left = total;
                while !left.is_zero() && !shared.stop.load(Ordering::Acquire) {
                    let step = left.min(slice);
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
            };
            while !shared.stop.load(Ordering::Acquire) {
                let pending = source.pending_changes();
                shared.pending_changes.store(pending, Ordering::Relaxed);
                let age = shared
                    .last_refresh_at
                    .lock()
                    .expect("refresh clock")
                    .elapsed();
                let due = pending >= policy.min_changes.max(1)
                    || (pending > 0 && age >= policy.max_staleness);
                if due {
                    match shared.do_refresh(|prev| source.rebuild(prev)) {
                        Ok(_) => {
                            backoff = policy.failure_backoff;
                            shared
                                .pending_changes
                                .store(source.pending_changes(), Ordering::Relaxed);
                        }
                        Err(_) => {
                            // do_refresh already counted the failure;
                            // keep serving the old snapshot and retry
                            // after an exponentially growing pause.
                            nap(backoff);
                            backoff = (backoff * 2).min(policy.max_backoff);
                            continue;
                        }
                    }
                }
                nap(policy.poll_interval);
            }
        }));
    }

    /// Stops accepting, drains in-flight sessions, joins every thread.
    /// Also completes a shutdown a client already triggered remotely.
    pub fn shutdown(mut self) {
        self.shared.trigger_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Waits for the server to stop without triggering it — pair with
    /// a client-sent `Shutdown` request.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds a loopback listener and serves `snapshot` under `config`.
/// Returns once the listener is live; queries run on worker threads.
pub fn serve(snapshot: ServingSnapshot, config: ServerConfig) -> io::Result<ServerHandle> {
    if config.tenants.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a server needs at least one tenant",
        ));
    }
    if config.executor_workers > 0 {
        gdm_algo::set_executor_workers(config.executor_workers);
    }
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;

    let mut pool = BudgetPool::new();
    for t in &config.tenants {
        pool.register(t.name.clone(), t.weight, t.burst_cap);
    }
    // The refresh path draws from the same fair pool as the tenants
    // (weight 1), so snapshot rebuild work is globally accounted and
    // cannot silently crowd out query budgets.
    pool.register(
        REFRESH_PRINCIPAL.to_owned(),
        1,
        config.refill_credits as i64,
    );
    let admission = Admission::new(
        config.slots,
        config.queue,
        &config
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.max_in_flight))
            .collect::<Vec<_>>(),
    );
    let limits = config.query_limits.unwrap_or(snapshot.limits);
    let shared = Arc::new(Shared {
        snapshot: Mutex::new(Arc::new(snapshot)),
        limits,
        tenants: config.tenants.clone(),
        pool,
        admission,
        cache: PlanCache::new(config.plan_cache_capacity),
        stop: AtomicBool::new(false),
        frame_deadline: config.frame_deadline,
        idle_timeout: config.idle_timeout,
        write_timeout: config.write_timeout,
        panic_injection: config.panic_injection,
        frame_errors: AtomicU64::new(0),
        sessions_reaped: AtomicU64::new(0),
        queries_poisoned: AtomicU64::new(0),
        refreshes: AtomicU64::new(0),
        last_refresh_us: AtomicU64::new(0),
        refresh_failures: AtomicU64::new(0),
        consecutive_refresh_failures: AtomicU64::new(0),
        pending_changes: AtomicU64::new(0),
        last_refresh_at: Mutex::new(Instant::now()),
        refresh_thresholds: Mutex::new(None),
        addr,
    });

    let mut threads = Vec::new();

    // Refill pacer: the fair-share scheduler's clock.
    {
        let shared = shared.clone();
        let interval = config.refill_interval;
        let credits = config.refill_credits;
        threads.push(std::thread::spawn(move || {
            while !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                shared.pool.refill(credits);
            }
        }));
    }

    // Session workers, fed by the acceptor through a channel.
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..config.workers.max(1) {
        let shared = shared.clone();
        let rx = rx.clone();
        threads.push(std::thread::spawn(move || loop {
            let conn = rx.lock().expect("worker queue lock").recv();
            match conn {
                Ok(stream) => session::run(stream, &shared),
                Err(_) => break, // acceptor gone: no more connections
            }
        }));
    }

    // Acceptor.
    {
        let shared = shared.clone();
        threads.push(std::thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shared.stop.load(Ordering::Acquire) {
                            break; // the wake-up connection, or late arrivals
                        }
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        if shared.stop.load(Ordering::Acquire) {
                            break;
                        }
                        // Transient accept failure: keep serving.
                    }
                }
            }
            // tx drops here; workers drain the queue and exit.
        }));
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}
