//! The key/value abstraction and its in-memory implementation.
//!
//! Several surveyed systems are "graph stores on a key/value backend"
//! (the paper: VertexDB on TokyoCabinet; HyperGraphDB on a key/value
//! store; Filament over JDB). [`KvStore`] is that backend seam: the
//! disk B-tree and [`MemKv`] implement it, engines build graph layouts
//! on top, and the undo-log transaction wrapper composes over any
//! implementation.
//!
//! Methods take `&mut self` because disk-backed implementations mutate
//! their buffer pool even on reads.

use gdm_core::Result;
use std::collections::BTreeMap;
use std::ops::Bound;

/// An ordered, persistent-capable key/value store.
pub trait KvStore {
    /// Returns the value stored at `key`.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Stores `value` at `key`, returning the previous value if any.
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Removes `key`, returning the previous value if any.
    fn delete(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Returns all `(key, value)` pairs with `start ≤ key < end` in key
    /// order; `end = None` means unbounded.
    fn scan_range(&mut self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Number of stored pairs.
    fn len(&mut self) -> Result<usize>;

    /// Flushes buffered state to durable storage (no-op for memory).
    fn flush(&mut self) -> Result<()>;

    /// True when the store holds nothing.
    fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// All pairs whose key starts with `prefix`, in key order.
    fn scan_prefix(&mut self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match prefix_end(prefix) {
            Some(end) => self.scan_range(prefix, Some(&end)),
            None => self.scan_range(prefix, None),
        }
    }

    /// True when `key` is present.
    fn contains(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }
}

/// Smallest byte string greater than every string with this prefix, or
/// `None` when the prefix is all `0xff` (unbounded).
pub fn prefix_end(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

/// An in-memory ordered store — the main-memory storage schema of
/// Table I, and the differential-testing oracle for [`crate::DiskBTree`].
#[derive(Debug, Default, Clone)]
pub struct MemKv {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemKv {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KvStore for MemKv {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(key).cloned())
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.insert(key.to_vec(), value.to_vec()))
    }

    fn delete(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.remove(key))
    }

    fn scan_range(&mut self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // An empty range (end ≤ start) yields nothing; `BTreeMap::range`
        // panics on inverted bounds, so guard explicitly.
        if end.is_some_and(|e| e <= start) {
            return Ok(Vec::new());
        }
        let upper = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        Ok(self
            .map
            .range((Bound::Included(start.to_vec()), upper))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }

    fn len(&mut self) -> Result<usize> {
        Ok(self.map.len())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = MemKv::new();
        assert_eq!(kv.put(b"a", b"1").unwrap(), None);
        assert_eq!(kv.put(b"a", b"2").unwrap(), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"a").unwrap(), Some(b"2".to_vec()));
        assert_eq!(kv.delete(b"a").unwrap(), Some(b"2".to_vec()));
        assert_eq!(kv.delete(b"a").unwrap(), None);
        assert!(kv.is_empty().unwrap());
    }

    #[test]
    fn range_scan_is_half_open() {
        let mut kv = MemKv::new();
        for k in [b"a", b"b", b"c", b"d"] {
            kv.put(k, b"v").unwrap();
        }
        let got: Vec<_> = kv
            .scan_range(b"b", Some(b"d"))
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn unbounded_scan() {
        let mut kv = MemKv::new();
        kv.put(b"x", b"1").unwrap();
        kv.put(b"y", b"2").unwrap();
        assert_eq!(kv.scan_range(b"", None).unwrap().len(), 2);
    }

    #[test]
    fn prefix_scan() {
        let mut kv = MemKv::new();
        for k in [&b"n/1"[..], b"n/2", b"e/1", b"n"] {
            kv.put(k, b"v").unwrap();
        }
        let got = kv.scan_prefix(b"n/").unwrap();
        assert_eq!(got.len(), 2);
        let all_n = kv.scan_prefix(b"n").unwrap();
        assert_eq!(all_n.len(), 3);
    }

    #[test]
    fn prefix_end_handles_ff() {
        assert_eq!(prefix_end(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_end(&[0x61, 0xff]), Some(vec![0x62]));
        assert_eq!(prefix_end(&[0xff, 0xff]), None);
        assert_eq!(prefix_end(b""), None);
    }

    #[test]
    fn contains_via_default_method() {
        let mut kv = MemKv::new();
        kv.put(b"k", b"v").unwrap();
        assert!(kv.contains(b"k").unwrap());
        assert!(!kv.contains(b"nope").unwrap());
    }
}
