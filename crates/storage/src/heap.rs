//! Slotted-page heap file with record identifiers and placement hints.
//!
//! G-Store, the paper's pure external-memory system ("a basic storage
//! manager for large vertex-labeled graphs"), stored vertices in disk
//! pages and tried to co-locate neighborhoods. [`HeapFile`] reproduces
//! the substrate: records addressed by [`Rid`] (page, slot), a
//! free-space map, and — the part G-Store's contribution hinges on — an
//! explicit *placement hint* so a graph loader can cluster adjacent
//! vertices on the same page. The placement ablation bench measures the
//! page-fault difference between clustered and random placement.

use crate::pager::{BufferPool, PageId, PAGE_SIZE};
use gdm_core::{FxHashMap, GdmError, Result};

/// Header: slot count (u16) + data-start offset (u16).
const HEADER: usize = 4;
/// Each slot entry: record offset (u16) + record length (u16).
const SLOT: usize = 4;
/// Largest record the heap accepts.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT;

/// A record identifier: page number plus slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page.raw(), self.slot)
    }
}

/// A heap of variable-length records over a buffer pool the heap owns
/// exclusively (every allocated page is a heap page).
pub struct HeapFile {
    pool: BufferPool,
    /// page → free bytes, maintained incrementally.
    free_space: FxHashMap<u32, usize>,
}

impl HeapFile {
    /// Wraps `pool`, scanning existing pages to rebuild the free-space
    /// map (pages must all be heap pages).
    pub fn new(mut pool: BufferPool) -> Result<Self> {
        let mut free_space = FxHashMap::default();
        for raw in 1..=pool.allocated_pages() {
            let pid = PageId(raw);
            let free = pool.with_page(pid, page_free_bytes)?;
            free_space.insert(raw, free);
        }
        Ok(Self { pool, free_space })
    }

    /// A memory-backed heap for tests.
    pub fn memory(pool_pages: usize) -> Self {
        Self::new(BufferPool::memory(pool_pages)).expect("memory heap cannot fail")
    }

    /// Inserts `record`, preferring the page named by `hint` when it has
    /// room. Returns the record's RID.
    pub fn insert_hint(&mut self, record: &[u8], hint: Option<PageId>) -> Result<Rid> {
        if record.len() > MAX_RECORD {
            return Err(GdmError::InvalidArgument(format!(
                "record of {} bytes exceeds {MAX_RECORD}",
                record.len()
            )));
        }
        let needed = record.len() + SLOT;
        let target = hint
            .filter(|p| self.free_space.get(&p.raw()).is_some_and(|&f| f >= needed))
            .or_else(|| {
                self.free_space
                    .iter()
                    .find(|(_, &free)| free >= needed)
                    .map(|(&p, _)| PageId(p))
            });
        let pid = match target {
            Some(p) => p,
            None => {
                let p = self.pool.allocate_page()?;
                self.pool.update_page(p, |page| {
                    init_page(page);
                })?;
                self.free_space.insert(p.raw(), PAGE_SIZE - HEADER);
                p
            }
        };
        let slot = self
            .pool
            .update_page(pid, |page| insert_record(page, record))?;
        let free = self.pool.with_page(pid, page_free_bytes)?;
        self.free_space.insert(pid.raw(), free);
        Ok(Rid { page: pid, slot })
    }

    /// Inserts `record` wherever there is room.
    pub fn insert(&mut self, record: &[u8]) -> Result<Rid> {
        self.insert_hint(record, None)
    }

    /// Reads the record at `rid`.
    pub fn get(&mut self, rid: Rid) -> Result<Vec<u8>> {
        self.pool
            .with_page(rid.page, |page| read_record(page, rid.slot))?
    }

    /// Rewrites the record at `rid` in place when the new bytes fit the
    /// page, otherwise relocates it; returns the (possibly new) RID.
    pub fn update(&mut self, rid: Rid, record: &[u8]) -> Result<Rid> {
        let fits = self
            .pool
            .update_page(rid.page, |page| try_update_in_place(page, rid.slot, record))??;
        if fits {
            let free = self.pool.with_page(rid.page, page_free_bytes)?;
            self.free_space.insert(rid.page.raw(), free);
            return Ok(rid);
        }
        self.delete(rid)?;
        self.insert_hint(record, Some(rid.page))
    }

    /// Deletes the record at `rid`. The slot is reused by later inserts.
    pub fn delete(&mut self, rid: Rid) -> Result<()> {
        self.pool
            .update_page(rid.page, |page| delete_record(page, rid.slot))??;
        let free = self.pool.with_page(rid.page, page_free_bytes)?;
        self.free_space.insert(rid.page.raw(), free);
        Ok(())
    }

    /// Visits every live record as `(rid, bytes)` in page order.
    pub fn scan(&mut self, f: &mut dyn FnMut(Rid, &[u8])) -> Result<()> {
        for raw in 1..=self.pool.allocated_pages() {
            let pid = PageId(raw);
            self.pool.with_page(pid, |page| {
                let nslots = u16::from_le_bytes([page[0], page[1]]) as usize;
                for slot in 0..nslots {
                    let (off, len) = slot_entry(page, slot as u16);
                    if off != 0 {
                        f(
                            Rid {
                                page: pid,
                                slot: slot as u16,
                            },
                            &page[off as usize..off as usize + len as usize],
                        );
                    }
                }
            })?;
        }
        Ok(())
    }

    /// Number of heap pages.
    pub fn page_count(&self) -> u32 {
        self.pool.allocated_pages()
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> crate::pager::PoolStats {
        self.pool.stats()
    }

    /// Resets buffer-pool statistics (benches call this after loading).
    pub fn reset_pool_stats(&mut self) {
        self.pool.reset_stats();
    }

    /// Flushes dirty pages.
    pub fn flush(&mut self) -> Result<()> {
        self.pool.flush()
    }
}

fn init_page(page: &mut [u8]) {
    page[0..2].copy_from_slice(&0u16.to_le_bytes());
    page[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
}

fn nslots(page: &[u8]) -> u16 {
    u16::from_le_bytes([page[0], page[1]])
}

fn data_start(page: &[u8]) -> u16 {
    let v = u16::from_le_bytes([page[2], page[3]]);
    if v == 0 {
        PAGE_SIZE as u16 // freshly zeroed page
    } else {
        v
    }
}

fn slot_entry(page: &[u8], slot: u16) -> (u16, u16) {
    let base = HEADER + slot as usize * SLOT;
    (
        u16::from_le_bytes([page[base], page[base + 1]]),
        u16::from_le_bytes([page[base + 2], page[base + 3]]),
    )
}

fn set_slot(page: &mut [u8], slot: u16, off: u16, len: u16) {
    let base = HEADER + slot as usize * SLOT;
    page[base..base + 2].copy_from_slice(&off.to_le_bytes());
    page[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
}

fn page_free_bytes(page: &[u8]) -> usize {
    let n = nslots(page) as usize;
    let ds = data_start(page) as usize;
    // A freed slot can be reused without new slot-table space, but we
    // report the conservative figure (assumes a new slot entry).
    ds.saturating_sub(HEADER + n * SLOT)
}

fn insert_record(page: &mut [u8], record: &[u8]) -> u16 {
    let n = nslots(page);
    // Reuse a dead slot when possible.
    let mut slot = n;
    for s in 0..n {
        if slot_entry(page, s).0 == 0 {
            slot = s;
            break;
        }
    }
    let ds = data_start(page) as usize;
    let new_ds = ds - record.len();
    page[new_ds..ds].copy_from_slice(record);
    page[2..4].copy_from_slice(&(new_ds as u16).to_le_bytes());
    if slot == n {
        page[0..2].copy_from_slice(&(n + 1).to_le_bytes());
    }
    set_slot(page, slot, new_ds as u16, record.len() as u16);
    slot
}

fn read_record(page: &[u8], slot: u16) -> Result<Vec<u8>> {
    if slot >= nslots(page) {
        return Err(GdmError::NotFound(format!("slot {slot} out of range")));
    }
    let (off, len) = slot_entry(page, slot);
    if off == 0 {
        return Err(GdmError::NotFound(format!("slot {slot} deleted")));
    }
    Ok(page[off as usize..off as usize + len as usize].to_vec())
}

fn delete_record(page: &mut [u8], slot: u16) -> Result<()> {
    if slot >= nslots(page) || slot_entry(page, slot).0 == 0 {
        return Err(GdmError::NotFound(format!("slot {slot} not live")));
    }
    set_slot(page, slot, 0, 0);
    Ok(())
}

/// Updates in place when the new record is no longer than the old one
/// (or when the page has room for a relocated copy within itself).
/// Returns Ok(false) when the caller must relocate to another page.
fn try_update_in_place(page: &mut [u8], slot: u16, record: &[u8]) -> Result<bool> {
    if slot >= nslots(page) {
        return Err(GdmError::NotFound(format!("slot {slot} out of range")));
    }
    let (off, len) = slot_entry(page, slot);
    if off == 0 {
        return Err(GdmError::NotFound(format!("slot {slot} deleted")));
    }
    if record.len() <= len as usize {
        let off = off as usize;
        page[off..off + record.len()].copy_from_slice(record);
        set_slot(page, slot, off as u16, record.len() as u16);
        return Ok(true);
    }
    // Try to place a fresh copy in this page's free region.
    let ds = data_start(page) as usize;
    let needed = record.len();
    let table_end = HEADER + nslots(page) as usize * SLOT;
    if ds - table_end >= needed {
        let new_ds = ds - needed;
        page[new_ds..ds].copy_from_slice(record);
        page[2..4].copy_from_slice(&(new_ds as u16).to_le_bytes());
        set_slot(page, slot, new_ds as u16, needed as u16);
        return Ok(true);
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_delete() {
        let mut h = HeapFile::memory(8);
        let rid = h.insert(b"hello records").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"hello records");
        h.delete(rid).unwrap();
        assert!(h.get(rid).is_err());
    }

    #[test]
    fn slots_are_reused_after_delete() {
        let mut h = HeapFile::memory(8);
        let a = h.insert(b"first").unwrap();
        let _b = h.insert(b"second").unwrap();
        h.delete(a).unwrap();
        let c = h.insert(b"third").unwrap();
        assert_eq!(c.slot, a.slot, "dead slot should be recycled");
        assert_eq!(h.get(c).unwrap(), b"third");
    }

    #[test]
    fn placement_hint_is_honored_when_space_allows() {
        let mut h = HeapFile::memory(8);
        let a = h.insert(&[1u8; 100]).unwrap();
        let b = h.insert_hint(&[2u8; 100], Some(a.page)).unwrap();
        assert_eq!(a.page, b.page);
    }

    #[test]
    fn full_page_spills_to_new_page() {
        let mut h = HeapFile::memory(8);
        let big = vec![9u8; 2000];
        let a = h.insert(&big).unwrap();
        let _b = h.insert_hint(&big, Some(a.page)).unwrap();
        // Third copy cannot fit on the first page.
        let c = h.insert_hint(&big, Some(a.page)).unwrap();
        assert_ne!(c.page, a.page);
        assert!(h.page_count() >= 2);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let mut h = HeapFile::memory(8);
        let rid = h.insert(b"short").unwrap();
        // Shrinking update stays put.
        let same = h.update(rid, b"hi").unwrap();
        assert_eq!(same, rid);
        assert_eq!(h.get(rid).unwrap(), b"hi");
        // Growing update that still fits the page stays on the page.
        let bigger = h.update(rid, &[3u8; 200]).unwrap();
        assert_eq!(bigger.page, rid.page);
        assert_eq!(h.get(bigger).unwrap(), vec![3u8; 200]);
    }

    #[test]
    fn relocation_when_page_is_packed() {
        let mut h = HeapFile::memory(16);
        let filler = vec![1u8; 1900];
        let a = h.insert(&filler).unwrap();
        let b = h.insert_hint(&filler, Some(a.page)).unwrap();
        assert_eq!(a.page, b.page);
        // Growing a record beyond the page's free space must relocate.
        let moved = h.update(a, &vec![2u8; 3000]).unwrap();
        assert_ne!(moved.page, a.page);
        assert_eq!(h.get(moved).unwrap(), vec![2u8; 3000]);
        // The old slot is dead.
        assert!(h.get(a).is_err());
    }

    #[test]
    fn scan_visits_all_live_records() {
        let mut h = HeapFile::memory(16);
        let mut rids = Vec::new();
        for i in 0..200u32 {
            rids.push(h.insert(format!("record-{i}").as_bytes()).unwrap());
        }
        h.delete(rids[5]).unwrap();
        h.delete(rids[100]).unwrap();
        let mut seen = 0;
        h.scan(&mut |_, bytes| {
            assert!(bytes.starts_with(b"record-"));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 198);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut h = HeapFile::memory(4);
        assert!(h.insert(&vec![0u8; MAX_RECORD + 1]).is_err());
    }

    #[test]
    fn free_space_map_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("gdm-heap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.db");
        let _ = std::fs::remove_file(&path);
        let rid;
        {
            let mut h = HeapFile::new(BufferPool::file(&path, 8).unwrap()).unwrap();
            rid = h.insert(b"persistent record").unwrap();
            h.flush().unwrap();
        }
        {
            let mut h = HeapFile::new(BufferPool::file(&path, 8).unwrap()).unwrap();
            assert_eq!(h.get(rid).unwrap(), b"persistent record");
            // New insert should be able to reuse the same page.
            let r2 = h.insert(b"second").unwrap();
            assert_eq!(r2.page, rid.page);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
