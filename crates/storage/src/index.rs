//! Secondary indexes over attribute values.
//!
//! Table I's "Indexes" column is probed through these: engines declare
//! indexes on property keys, and lookups route through a [`ValueIndex`]
//! implementation matching the surveyed system's design — hash
//! directories, B-trees (AllegroGraph/Neo4j-style), or DEX's
//! value-to-bitmap maps.

use crate::bitmap::Bitmap;
use crate::codec;
use gdm_core::{FxHashMap, FxHashSet, GdmError, Result, Value};
use std::collections::BTreeMap;

/// The index families the surveyed systems used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Hash directory: O(1) point lookups, no ranges.
    Hash,
    /// Ordered index: point and range lookups.
    BTree,
    /// DEX-style value→bitmap: point lookups returning id sets that
    /// compose with bitwise operations.
    Bitmap,
}

/// A secondary index mapping attribute values to entity ids.
pub trait ValueIndex {
    /// Which family this index belongs to.
    fn kind(&self) -> IndexKind;

    /// Adds `(value, id)`.
    fn insert(&mut self, value: &Value, id: u64);

    /// Removes `(value, id)`; returns whether it was present.
    fn remove(&mut self, value: &Value, id: u64) -> bool;

    /// All ids stored under exactly `value`, ascending.
    fn lookup(&self, value: &Value) -> Vec<u64>;

    /// All ids with `low ≤ value ≤ high` (either bound optional),
    /// ascending and deduplicated. Hash and bitmap indexes cannot
    /// answer ranges and return [`GdmError::Unsupported`].
    fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Result<Vec<u64>>;

    /// Number of `(value, id)` pairs.
    fn len(&self) -> usize;

    /// True when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All ids stored under any value *loosely* equal to `value` — the
    /// query layer's int/float-coercing equality — ascending and
    /// deduplicated. The default probes the exact encoding plus the
    /// coerced number-family sibling, which is exact for every value
    /// the coercion round-trips (all of them below 2^53); ordered
    /// indexes override this with a unified-prefix range, which is
    /// exact everywhere.
    fn lookup_loose(&self, value: &Value) -> Vec<u64> {
        let sibling = match value {
            Value::Int(i) => Some(Value::Float(*i as f64)),
            Value::Float(f) => {
                let i = *f as i64;
                ((i as f64) == *f).then_some(Value::Int(i))
            }
            _ => None,
        };
        let mut ids = self.lookup(value);
        if let Some(s) = sibling {
            ids.extend(self.lookup(&s));
            ids.sort_unstable();
            ids.dedup();
        }
        ids
    }
}

/// Number-family keys share an order prefix; this returns the loose
/// prefix used for range bounds (so an int bound also bounds floats).
fn range_prefix(v: &Value) -> Vec<u8> {
    match v {
        Value::Int(i) => {
            let mut out = Vec::with_capacity(9);
            out.push(0x04);
            // Same ordered-double mapping as codec::encode_value.
            let f = *i as f64;
            let bits = f.to_bits();
            let ordered = if bits & (1 << 63) == 0 {
                bits | (1 << 63)
            } else {
                !bits
            };
            out.extend_from_slice(&ordered.to_be_bytes());
            out
        }
        Value::Float(f) => {
            let mut out = Vec::with_capacity(9);
            out.push(0x04);
            let bits = f.to_bits();
            let ordered = if bits & (1 << 63) == 0 {
                bits | (1 << 63)
            } else {
                !bits
            };
            out.extend_from_slice(&ordered.to_be_bytes());
            out
        }
        other => codec::encoded_value(other),
    }
}

/// Smallest byte string greater than every string with prefix `p`.
fn prefix_successor(mut p: Vec<u8>) -> Option<Vec<u8>> {
    while let Some(last) = p.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(p);
        }
        p.pop();
    }
    None
}

// ---------------------------------------------------------------------
// Hash index
// ---------------------------------------------------------------------

/// Hash directory from encoded value to id set.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    map: FxHashMap<Vec<u8>, FxHashSet<u64>>,
    pairs: usize,
}

impl HashIndex {
    /// Creates an empty hash index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ValueIndex for HashIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Hash
    }

    fn insert(&mut self, value: &Value, id: u64) {
        if self
            .map
            .entry(codec::encoded_value(value))
            .or_default()
            .insert(id)
        {
            self.pairs += 1;
        }
    }

    fn remove(&mut self, value: &Value, id: u64) -> bool {
        let key = codec::encoded_value(value);
        if let Some(set) = self.map.get_mut(&key) {
            if set.remove(&id) {
                self.pairs -= 1;
                if set.is_empty() {
                    self.map.remove(&key);
                }
                return true;
            }
        }
        false
    }

    fn lookup(&self, value: &Value) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .map
            .get(&codec::encoded_value(value))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    fn range(&self, _low: Option<&Value>, _high: Option<&Value>) -> Result<Vec<u64>> {
        Err(GdmError::unsupported("hash index", "range lookup"))
    }

    fn len(&self) -> usize {
        self.pairs
    }
}

// ---------------------------------------------------------------------
// B-tree index
// ---------------------------------------------------------------------

/// Ordered index from encoded value to id set, with range queries.
#[derive(Debug, Default, Clone)]
pub struct BTreeIndex {
    map: BTreeMap<Vec<u8>, FxHashSet<u64>>,
    pairs: usize,
}

impl BTreeIndex {
    /// Creates an empty ordered index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ValueIndex for BTreeIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::BTree
    }

    fn insert(&mut self, value: &Value, id: u64) {
        if self
            .map
            .entry(codec::encoded_value(value))
            .or_default()
            .insert(id)
        {
            self.pairs += 1;
        }
    }

    fn remove(&mut self, value: &Value, id: u64) -> bool {
        let key = codec::encoded_value(value);
        if let Some(set) = self.map.get_mut(&key) {
            if set.remove(&id) {
                self.pairs -= 1;
                if set.is_empty() {
                    self.map.remove(&key);
                }
                return true;
            }
        }
        false
    }

    fn lookup(&self, value: &Value) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .map
            .get(&codec::encoded_value(value))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Result<Vec<u64>> {
        use std::ops::Bound;
        let lower = match low {
            Some(v) => Bound::Included(range_prefix(v)),
            None => Bound::Unbounded,
        };
        let upper = match high {
            Some(v) => match prefix_successor(range_prefix(v)) {
                Some(s) => Bound::Excluded(s),
                None => Bound::Unbounded,
            },
            None => Bound::Unbounded,
        };
        // An inverted range (low > high) selects nothing; BTreeMap's
        // `range` panics on it instead, so answer before asking.
        if let (Bound::Included(lo), Bound::Excluded(hi)) = (&lower, &upper) {
            if lo > hi {
                return Ok(Vec::new());
            }
        }
        let mut ids: Vec<u64> = self
            .map
            .range((lower, upper))
            .flat_map(|(_, set)| set.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    fn len(&self) -> usize {
        self.pairs
    }

    /// Unified-prefix range over the number family: every int/float
    /// sharing the probe's double is under one 9-byte prefix, so this
    /// is exact even where the coercion in the default would not
    /// round-trip.
    fn lookup_loose(&self, value: &Value) -> Vec<u64> {
        match value {
            Value::Int(_) | Value::Float(_) => self
                .range(Some(value), Some(value))
                .expect("ordered index answers ranges"),
            other => self.lookup(other),
        }
    }
}

// ---------------------------------------------------------------------
// Bitmap index
// ---------------------------------------------------------------------

/// DEX-style value→bitmap index.
#[derive(Debug, Default, Clone)]
pub struct BitmapIndex {
    map: FxHashMap<Vec<u8>, Bitmap>,
    pairs: usize,
}

impl BitmapIndex {
    /// Creates an empty bitmap index.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw bitmap for `value`, for DEX-style bitwise composition.
    pub fn bitmap_for(&self, value: &Value) -> Option<&Bitmap> {
        self.map.get(&codec::encoded_value(value))
    }
}

impl ValueIndex for BitmapIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Bitmap
    }

    fn insert(&mut self, value: &Value, id: u64) {
        if self
            .map
            .entry(codec::encoded_value(value))
            .or_default()
            .insert(id)
        {
            self.pairs += 1;
        }
    }

    fn remove(&mut self, value: &Value, id: u64) -> bool {
        let key = codec::encoded_value(value);
        if let Some(bm) = self.map.get_mut(&key) {
            if bm.remove(id) {
                self.pairs -= 1;
                if bm.is_empty() {
                    self.map.remove(&key);
                }
                return true;
            }
        }
        false
    }

    fn lookup(&self, value: &Value) -> Vec<u64> {
        self.map
            .get(&codec::encoded_value(value))
            .map(|bm| bm.iter().collect())
            .unwrap_or_default()
    }

    fn range(&self, _low: Option<&Value>, _high: Option<&Value>) -> Result<Vec<u64>> {
        Err(GdmError::unsupported("bitmap index", "range lookup"))
    }

    fn len(&self) -> usize {
        self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_point_ops(idx: &mut dyn ValueIndex) {
        idx.insert(&Value::from("alice"), 1);
        idx.insert(&Value::from("alice"), 2);
        idx.insert(&Value::from("bob"), 3);
        idx.insert(&Value::from("alice"), 1); // duplicate, ignored
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.lookup(&Value::from("alice")), vec![1, 2]);
        assert_eq!(idx.lookup(&Value::from("bob")), vec![3]);
        assert_eq!(idx.lookup(&Value::from("carol")), Vec::<u64>::new());
        assert!(idx.remove(&Value::from("alice"), 1));
        assert!(!idx.remove(&Value::from("alice"), 1));
        assert_eq!(idx.lookup(&Value::from("alice")), vec![2]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn hash_index_point_ops() {
        exercise_point_ops(&mut HashIndex::new());
    }

    #[test]
    fn btree_index_point_ops() {
        exercise_point_ops(&mut BTreeIndex::new());
    }

    #[test]
    fn bitmap_index_point_ops() {
        exercise_point_ops(&mut BitmapIndex::new());
    }

    #[test]
    fn inverted_range_is_empty_not_a_panic() {
        let mut idx = BTreeIndex::new();
        idx.insert(&Value::from(1), 1);
        idx.insert(&Value::from(5), 2);
        // low > high selects nothing (a pattern edge range can carry
        // arbitrary user bounds, so this must not reach BTreeMap).
        assert_eq!(
            idx.range(Some(&Value::from(5)), Some(&Value::from(1)))
                .unwrap(),
            Vec::<u64>::new()
        );
        // Degenerate but valid: low == high is a point probe.
        assert_eq!(
            idx.range(Some(&Value::from(5)), Some(&Value::from(5)))
                .unwrap(),
            vec![2]
        );
    }

    #[test]
    fn lookup_loose_unifies_number_families() {
        fn exercise(idx: &mut dyn ValueIndex) {
            idx.insert(&Value::from(3), 1);
            idx.insert(&Value::from(3.0), 2);
            idx.insert(&Value::from(3.5), 3);
            idx.insert(&Value::from("3"), 4);
            assert_eq!(idx.lookup_loose(&Value::from(3)), vec![1, 2]);
            assert_eq!(idx.lookup_loose(&Value::from(3.0)), vec![1, 2]);
            assert_eq!(idx.lookup_loose(&Value::from(3.5)), vec![3]);
            assert_eq!(idx.lookup_loose(&Value::from("3")), vec![4]);
            assert_eq!(idx.lookup(&Value::from(3)), vec![1], "exact stays exact");
        }
        exercise(&mut HashIndex::new());
        exercise(&mut BTreeIndex::new());
        exercise(&mut BitmapIndex::new());
    }

    #[test]
    fn btree_range_queries() {
        let mut idx = BTreeIndex::new();
        for (i, age) in [25i64, 30, 35, 40, 45].iter().enumerate() {
            idx.insert(&Value::from(*age), i as u64);
        }
        assert_eq!(
            idx.range(Some(&Value::from(30)), Some(&Value::from(40)))
                .unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(idx.range(None, Some(&Value::from(29))).unwrap(), vec![0]);
        assert_eq!(idx.range(Some(&Value::from(41)), None).unwrap(), vec![4]);
        assert_eq!(idx.range(None, None).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn btree_range_mixes_ints_and_floats() {
        let mut idx = BTreeIndex::new();
        idx.insert(&Value::from(1), 10);
        idx.insert(&Value::from(2.5), 20);
        idx.insert(&Value::from(3), 30);
        let got = idx
            .range(Some(&Value::from(2)), Some(&Value::from(3)))
            .unwrap();
        assert_eq!(got, vec![20, 30]);
    }

    #[test]
    fn btree_string_ranges() {
        let mut idx = BTreeIndex::new();
        for (i, name) in ["ann", "bob", "carol", "dave"].iter().enumerate() {
            idx.insert(&Value::from(*name), i as u64);
        }
        let got = idx
            .range(Some(&Value::from("b")), Some(&Value::from("carol")))
            .unwrap();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn hash_and_bitmap_reject_ranges() {
        assert!(HashIndex::new()
            .range(None, None)
            .unwrap_err()
            .is_unsupported());
        assert!(BitmapIndex::new()
            .range(None, None)
            .unwrap_err()
            .is_unsupported());
    }

    #[test]
    fn bitmap_composition() {
        let mut by_label = BitmapIndex::new();
        by_label.insert(&Value::from("person"), 1);
        by_label.insert(&Value::from("person"), 2);
        by_label.insert(&Value::from("person"), 3);
        let mut by_city = BitmapIndex::new();
        by_city.insert(&Value::from("santiago"), 2);
        by_city.insert(&Value::from("santiago"), 3);
        by_city.insert(&Value::from("talca"), 1);
        let persons = by_label.bitmap_for(&Value::from("person")).unwrap();
        let santiago = by_city.bitmap_for(&Value::from("santiago")).unwrap();
        let both = persons.intersection(santiago);
        assert_eq!(both.iter().collect::<Vec<_>>(), vec![2, 3]);
    }
}
