//! # gdm-storage
//!
//! Storage substrates for the graph-database-model reproduction. Each of
//! the nine surveyed databases sat on a recognizable storage design; the
//! paper's Table I (main memory / external memory / backend storage /
//! indexes) compares exactly these. This crate builds each design:
//!
//! * [`pager`] — a 4 KiB page file with a pinned, LRU-evicting buffer
//!   pool and observable I/O statistics (page-fault counting drives the
//!   G-Store placement ablation bench),
//! * [`btree`] — an on-disk B-tree key/value store over the pager: the
//!   stand-in for TokyoCabinet (VertexDB's backend) and BerkeleyDB-style
//!   backends (HyperGraphDB, Filament),
//! * [`memkv`] — an in-memory store implementing the same [`KvStore`]
//!   trait, used both standalone (main-memory engines) and as the
//!   differential-testing oracle for the B-tree,
//! * [`heap`] — a slotted-page heap file with RID addressing and
//!   placement hints (G-Store's external-memory design),
//! * [`records`] — fixed-size node/relationship records with per-node
//!   relationship linked lists (Neo4j's native store, at the logical
//!   level),
//! * [`bitmap`] — dynamic bitsets and a value→bitmap index (DEX's
//!   bitmap-based design),
//! * [`index`] — hash, B-tree, and bitmap secondary indexes over
//!   attribute values behind one [`index::ValueIndex`] trait,
//! * [`txn`] — undo-log transactions over any [`KvStore`],
//! * [`codec`] — order-preserving byte encodings for
//!   [`gdm_core::Value`] keys and varint record encoding.

pub mod bitmap;
pub mod btree;
pub mod codec;
pub mod heap;
pub mod index;
pub mod memkv;
pub mod pager;
pub mod records;
pub mod txn;

pub use bitmap::Bitmap;
pub use btree::DiskBTree;
pub use heap::{HeapFile, Rid};
pub use index::{BTreeIndex, BitmapIndex, HashIndex, ValueIndex};
pub use memkv::{KvStore, MemKv};
pub use pager::{BufferPool, PageId, PoolStats, PAGE_SIZE};
pub use records::RecordStore;
pub use txn::UndoKv;
