//! A Neo4j-style record store.
//!
//! Neo4j's signature storage design — the reason the paper calls it "a
//! native disk-based storage manager for graphs" — is fixed-size
//! records: a node record points at the head of a *relationship chain*,
//! and each relationship record participates in two chains (one per
//! endpoint) via `from_next` / `to_next` pointers. Traversing a node's
//! relationships is pointer-chasing, not index lookup. Properties hang
//! off nodes and relationships as singly linked property records.
//!
//! This module reproduces that layout at the logical level over
//! in-memory arrays with binary save/load, preserving the structural
//! behaviour (chain traversal, O(1) insertion, chain-unlink deletion)
//! that distinguishes the design.

use crate::codec::{self, get_u32, get_u64, put_u32, put_u64};
use gdm_core::{GdmError, Result, Value};
use std::path::Path;

/// Null pointer in record chains.
pub const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq)]
struct NodeRecord {
    in_use: bool,
    label: u32,
    first_rel: u32,
    first_prop: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct RelRecord {
    in_use: bool,
    from: u32,
    to: u32,
    rel_type: u32,
    from_next: u32,
    to_next: u32,
    first_prop: u32,
}

#[derive(Debug, Clone, PartialEq)]
struct PropRecord {
    in_use: bool,
    key: u32,
    value: Value,
    next: u32,
}

/// A relationship as seen by traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelEntry {
    /// Relationship record id.
    pub id: u32,
    /// Source node record id.
    pub from: u32,
    /// Target node record id.
    pub to: u32,
    /// Relationship type token.
    pub rel_type: u32,
}

/// Fixed-size-record graph storage with relationship chains.
#[derive(Debug, Default, Clone)]
pub struct RecordStore {
    nodes: Vec<NodeRecord>,
    rels: Vec<RelRecord>,
    props: Vec<PropRecord>,
    live_nodes: usize,
    live_rels: usize,
}

impl RecordStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live node records.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live relationship records.
    pub fn rel_count(&self) -> usize {
        self.live_rels
    }

    /// Highest node record id ever allocated (bound for scans).
    pub fn node_high_id(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Creates a node with label token `label`; returns its record id.
    pub fn create_node(&mut self, label: u32) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(NodeRecord {
            in_use: true,
            label,
            first_rel: NIL,
            first_prop: NIL,
        });
        self.live_nodes += 1;
        id
    }

    /// True when node `id` exists.
    pub fn node_in_use(&self, id: u32) -> bool {
        self.nodes.get(id as usize).is_some_and(|n| n.in_use)
    }

    /// Label token of node `id`.
    pub fn node_label(&self, id: u32) -> Result<u32> {
        Ok(self.node(id)?.label)
    }

    /// Creates a relationship `from -[rel_type]-> to`, prepending it to
    /// both endpoints' chains (once, for self-loops).
    pub fn create_rel(&mut self, from: u32, to: u32, rel_type: u32) -> Result<u32> {
        self.node(from)?;
        self.node(to)?;
        let id = self.rels.len() as u32;
        let from_head = self.nodes[from as usize].first_rel;
        let to_head = self.nodes[to as usize].first_rel;
        self.rels.push(RelRecord {
            in_use: true,
            from,
            to,
            rel_type,
            from_next: from_head,
            to_next: if from == to { NIL } else { to_head },
            first_prop: NIL,
        });
        self.nodes[from as usize].first_rel = id;
        if from != to {
            self.nodes[to as usize].first_rel = id;
        }
        self.live_rels += 1;
        Ok(id)
    }

    /// Looks a relationship up.
    pub fn rel(&self, id: u32) -> Result<RelEntry> {
        let r = self
            .rels
            .get(id as usize)
            .filter(|r| r.in_use)
            .ok_or_else(|| GdmError::NotFound(format!("relationship {id}")))?;
        Ok(RelEntry {
            id,
            from: r.from,
            to: r.to,
            rel_type: r.rel_type,
        })
    }

    /// Visits every relationship in node `id`'s chain (both directions).
    pub fn visit_rels(&self, node: u32, f: &mut dyn FnMut(RelEntry)) {
        let Some(n) = self.nodes.get(node as usize).filter(|n| n.in_use) else {
            return;
        };
        let mut cur = n.first_rel;
        while cur != NIL {
            let r = &self.rels[cur as usize];
            debug_assert!(r.in_use, "chain points at dead relationship");
            f(RelEntry {
                id: cur,
                from: r.from,
                to: r.to,
                rel_type: r.rel_type,
            });
            cur = if r.from == node {
                r.from_next
            } else {
                r.to_next
            };
        }
    }

    /// Deletes relationship `id`, unlinking it from both chains.
    pub fn delete_rel(&mut self, id: u32) -> Result<()> {
        let r = *self
            .rels
            .get(id as usize)
            .filter(|r| r.in_use)
            .ok_or_else(|| GdmError::NotFound(format!("relationship {id}")))?;
        self.unlink_from_chain(r.from, id);
        if r.from != r.to {
            self.unlink_from_chain(r.to, id);
        }
        self.rels[id as usize].in_use = false;
        self.live_rels -= 1;
        Ok(())
    }

    /// Deletes node `id` and all its relationships (Neo4j requires
    /// explicit detach; we fold detach-delete into one call).
    pub fn delete_node(&mut self, id: u32) -> Result<()> {
        self.node(id)?;
        loop {
            let head = self.nodes[id as usize].first_rel;
            if head == NIL {
                break;
            }
            self.delete_rel(head)?;
        }
        self.nodes[id as usize].in_use = false;
        self.live_nodes -= 1;
        Ok(())
    }

    fn unlink_from_chain(&mut self, node: u32, rel_id: u32) {
        let mut cur = self.nodes[node as usize].first_rel;
        let mut prev: Option<u32> = None;
        while cur != NIL {
            let r = self.rels[cur as usize];
            let next = if r.from == node {
                r.from_next
            } else {
                r.to_next
            };
            if cur == rel_id {
                match prev {
                    None => self.nodes[node as usize].first_rel = next,
                    Some(p) => {
                        let pr = &mut self.rels[p as usize];
                        if pr.from == node {
                            pr.from_next = next;
                        } else {
                            pr.to_next = next;
                        }
                    }
                }
                return;
            }
            prev = Some(cur);
            cur = next;
        }
    }

    // ---- properties --------------------------------------------------

    /// Sets a property on node `id`.
    pub fn set_node_prop(&mut self, id: u32, key: u32, value: Value) -> Result<()> {
        self.node(id)?;
        let head = self.nodes[id as usize].first_prop;
        let new_head = self.set_prop_in_chain(head, key, value);
        self.nodes[id as usize].first_prop = new_head;
        Ok(())
    }

    /// Sets a property on relationship `id`.
    pub fn set_rel_prop(&mut self, id: u32, key: u32, value: Value) -> Result<()> {
        self.rel(id)?;
        let head = self.rels[id as usize].first_prop;
        let new_head = self.set_prop_in_chain(head, key, value);
        self.rels[id as usize].first_prop = new_head;
        Ok(())
    }

    /// Reads a property from node `id`.
    pub fn node_prop(&self, id: u32, key: u32) -> Option<&Value> {
        let n = self.nodes.get(id as usize).filter(|n| n.in_use)?;
        self.find_prop(n.first_prop, key)
    }

    /// Reads a property from relationship `id`.
    pub fn rel_prop(&self, id: u32, key: u32) -> Option<&Value> {
        let r = self.rels.get(id as usize).filter(|r| r.in_use)?;
        self.find_prop(r.first_prop, key)
    }

    /// Visits `(key, value)` for every property of node `id`.
    pub fn visit_node_props(&self, id: u32, f: &mut dyn FnMut(u32, &Value)) {
        if let Some(n) = self.nodes.get(id as usize).filter(|n| n.in_use) {
            self.visit_props(n.first_prop, f);
        }
    }

    /// Visits every property of a relationship as `(key token, value)`.
    pub fn visit_rel_props(&self, id: u32, f: &mut dyn FnMut(u32, &Value)) {
        if let Some(r) = self.rels.get(id as usize).filter(|r| r.in_use) {
            self.visit_props(r.first_prop, f);
        }
    }

    fn set_prop_in_chain(&mut self, head: u32, key: u32, value: Value) -> u32 {
        let mut cur = head;
        while cur != NIL {
            if self.props[cur as usize].key == key {
                self.props[cur as usize].value = value;
                return head;
            }
            cur = self.props[cur as usize].next;
        }
        let id = self.props.len() as u32;
        self.props.push(PropRecord {
            in_use: true,
            key,
            value,
            next: head,
        });
        id
    }

    fn find_prop(&self, head: u32, key: u32) -> Option<&Value> {
        let mut cur = head;
        while cur != NIL {
            let p = &self.props[cur as usize];
            if p.key == key {
                return Some(&p.value);
            }
            cur = p.next;
        }
        None
    }

    fn visit_props(&self, head: u32, f: &mut dyn FnMut(u32, &Value)) {
        let mut cur = head;
        while cur != NIL {
            let p = &self.props[cur as usize];
            f(p.key, &p.value);
            cur = p.next;
        }
    }

    fn node(&self, id: u32) -> Result<&NodeRecord> {
        self.nodes
            .get(id as usize)
            .filter(|n| n.in_use)
            .ok_or_else(|| GdmError::NotFound(format!("node {id}")))
    }

    // ---- consistency and persistence ----------------------------------

    /// Verifies chain integrity: every live relationship appears exactly
    /// once in each endpoint's chain and chains contain only live
    /// relationships.
    pub fn check_chains(&self) -> Result<()> {
        for node in 0..self.nodes.len() as u32 {
            if !self.nodes[node as usize].in_use {
                continue;
            }
            let mut seen = Vec::new();
            let mut cur = self.nodes[node as usize].first_rel;
            let mut hops = 0usize;
            while cur != NIL {
                let r = self
                    .rels
                    .get(cur as usize)
                    .ok_or_else(|| GdmError::Storage("chain points out of range".into()))?;
                if !r.in_use {
                    return Err(GdmError::Storage(format!(
                        "node {node} chain reaches dead relationship {cur}"
                    )));
                }
                if r.from != node && r.to != node {
                    return Err(GdmError::Storage(format!(
                        "node {node} chain contains foreign relationship {cur}"
                    )));
                }
                if seen.contains(&cur) {
                    return Err(GdmError::Storage(format!(
                        "node {node} chain repeats relationship {cur}"
                    )));
                }
                seen.push(cur);
                cur = if r.from == node {
                    r.from_next
                } else {
                    r.to_next
                };
                hops += 1;
                if hops > self.rels.len() + 1 {
                    return Err(GdmError::Storage(format!("node {node} chain cycles")));
                }
            }
        }
        // Every live relationship must be reachable from both endpoints.
        for (id, r) in self.rels.iter().enumerate() {
            if !r.in_use {
                continue;
            }
            for endpoint in [r.from, r.to] {
                let mut found = false;
                self.visit_rels(endpoint, &mut |e| found |= e.id == id as u32);
                if !found {
                    return Err(GdmError::Storage(format!(
                        "relationship {id} missing from node {endpoint}'s chain"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Serializes the store to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.nodes.len() as u64);
        for n in &self.nodes {
            out.push(n.in_use as u8);
            put_u32(&mut out, n.label);
            put_u32(&mut out, n.first_rel);
            put_u32(&mut out, n.first_prop);
        }
        put_u64(&mut out, self.rels.len() as u64);
        for r in &self.rels {
            out.push(r.in_use as u8);
            put_u32(&mut out, r.from);
            put_u32(&mut out, r.to);
            put_u32(&mut out, r.rel_type);
            put_u32(&mut out, r.from_next);
            put_u32(&mut out, r.to_next);
            put_u32(&mut out, r.first_prop);
        }
        put_u64(&mut out, self.props.len() as u64);
        for p in &self.props {
            out.push(p.in_use as u8);
            put_u32(&mut out, p.key);
            codec::encode_value(&mut out, &p.value);
            put_u32(&mut out, p.next);
        }
        out
    }

    /// Deserializes a store produced by [`RecordStore::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut pos = 0;
        let take_flag = |buf: &[u8], pos: &mut usize| -> Result<bool> {
            let b = *buf
                .get(*pos)
                .ok_or_else(|| GdmError::Storage("record store truncated".into()))?;
            *pos += 1;
            Ok(b != 0)
        };
        let n_nodes = get_u64(buf, &mut pos)? as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut live_nodes = 0;
        for _ in 0..n_nodes {
            let in_use = take_flag(buf, &mut pos)?;
            let label = get_u32(buf, &mut pos)?;
            let first_rel = get_u32(buf, &mut pos)?;
            let first_prop = get_u32(buf, &mut pos)?;
            live_nodes += in_use as usize;
            nodes.push(NodeRecord {
                in_use,
                label,
                first_rel,
                first_prop,
            });
        }
        let n_rels = get_u64(buf, &mut pos)? as usize;
        let mut rels = Vec::with_capacity(n_rels);
        let mut live_rels = 0;
        for _ in 0..n_rels {
            let in_use = take_flag(buf, &mut pos)?;
            let from = get_u32(buf, &mut pos)?;
            let to = get_u32(buf, &mut pos)?;
            let rel_type = get_u32(buf, &mut pos)?;
            let from_next = get_u32(buf, &mut pos)?;
            let to_next = get_u32(buf, &mut pos)?;
            let first_prop = get_u32(buf, &mut pos)?;
            live_rels += in_use as usize;
            rels.push(RelRecord {
                in_use,
                from,
                to,
                rel_type,
                from_next,
                to_next,
                first_prop,
            });
        }
        let n_props = get_u64(buf, &mut pos)? as usize;
        let mut props = Vec::with_capacity(n_props);
        for _ in 0..n_props {
            let in_use = take_flag(buf, &mut pos)?;
            let key = get_u32(buf, &mut pos)?;
            let value = codec::decode_value(buf, &mut pos)?;
            let next = get_u32(buf, &mut pos)?;
            props.push(PropRecord {
                in_use,
                key,
                value,
                next,
            });
        }
        Ok(Self {
            nodes,
            rels,
            props,
            live_nodes,
            live_rels,
        })
    }

    /// Writes the store to `path`.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a store from `path`.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_rel_creation() {
        let mut s = RecordStore::new();
        let a = s.create_node(0);
        let b = s.create_node(1);
        let r = s.create_rel(a, b, 7).unwrap();
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.rel_count(), 1);
        let e = s.rel(r).unwrap();
        assert_eq!((e.from, e.to, e.rel_type), (a, b, 7));
        s.check_chains().unwrap();
    }

    #[test]
    fn chains_visit_both_directions() {
        let mut s = RecordStore::new();
        let a = s.create_node(0);
        let b = s.create_node(0);
        let c = s.create_node(0);
        s.create_rel(a, b, 1).unwrap();
        s.create_rel(c, a, 2).unwrap();
        let mut seen = Vec::new();
        s.visit_rels(a, &mut |e| seen.push((e.from, e.to)));
        assert_eq!(seen.len(), 2, "a participates in both relationships");
        s.check_chains().unwrap();
    }

    #[test]
    fn self_loop_appears_once() {
        let mut s = RecordStore::new();
        let a = s.create_node(0);
        s.create_rel(a, a, 1).unwrap();
        let mut count = 0;
        s.visit_rels(a, &mut |_| count += 1);
        assert_eq!(count, 1);
        s.check_chains().unwrap();
    }

    #[test]
    fn delete_rel_unlinks_both_chains() {
        let mut s = RecordStore::new();
        let a = s.create_node(0);
        let b = s.create_node(0);
        let r1 = s.create_rel(a, b, 1).unwrap();
        let r2 = s.create_rel(a, b, 2).unwrap();
        let r3 = s.create_rel(b, a, 3).unwrap();
        s.delete_rel(r2).unwrap();
        s.check_chains().unwrap();
        let mut ids = Vec::new();
        s.visit_rels(a, &mut |e| ids.push(e.id));
        ids.sort();
        assert_eq!(ids, vec![r1, r3]);
        assert!(s.rel(r2).is_err());
    }

    #[test]
    fn delete_node_detaches() {
        let mut s = RecordStore::new();
        let a = s.create_node(0);
        let b = s.create_node(0);
        s.create_rel(a, b, 1).unwrap();
        s.create_rel(b, a, 1).unwrap();
        s.delete_node(a).unwrap();
        assert!(!s.node_in_use(a));
        assert_eq!(s.rel_count(), 0);
        let mut count = 0;
        s.visit_rels(b, &mut |_| count += 1);
        assert_eq!(count, 0);
        s.check_chains().unwrap();
    }

    #[test]
    fn properties_on_nodes_and_rels() {
        let mut s = RecordStore::new();
        let a = s.create_node(0);
        let b = s.create_node(0);
        let r = s.create_rel(a, b, 1).unwrap();
        s.set_node_prop(a, 10, Value::from("alice")).unwrap();
        s.set_node_prop(a, 11, Value::from(30)).unwrap();
        s.set_node_prop(a, 10, Value::from("alicia")).unwrap(); // overwrite
        s.set_rel_prop(r, 12, Value::from(0.9)).unwrap();
        assert_eq!(s.node_prop(a, 10), Some(&Value::from("alicia")));
        assert_eq!(s.node_prop(a, 11), Some(&Value::from(30)));
        assert_eq!(s.node_prop(a, 99), None);
        assert_eq!(s.rel_prop(r, 12), Some(&Value::from(0.9)));
        let mut keys = Vec::new();
        s.visit_node_props(a, &mut |k, _| keys.push(k));
        keys.sort();
        assert_eq!(keys, vec![10, 11]);
    }

    #[test]
    fn serialization_round_trip() {
        let mut s = RecordStore::new();
        let a = s.create_node(3);
        let b = s.create_node(4);
        let r = s.create_rel(a, b, 9).unwrap();
        s.set_node_prop(a, 1, Value::from("x")).unwrap();
        s.set_rel_prop(r, 2, Value::from(5)).unwrap();
        s.delete_node(b).unwrap();
        let bytes = s.to_bytes();
        let restored = RecordStore::from_bytes(&bytes).unwrap();
        assert_eq!(restored.node_count(), s.node_count());
        assert_eq!(restored.rel_count(), s.rel_count());
        assert_eq!(restored.node_prop(a, 1), Some(&Value::from("x")));
        restored.check_chains().unwrap();
    }

    #[test]
    fn heavy_random_mutation_keeps_chains_consistent() {
        let mut s = RecordStore::new();
        let nodes: Vec<u32> = (0..20).map(|i| s.create_node(i)).collect();
        let mut rels = Vec::new();
        // Deterministic pseudo-random mutation pattern.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for step in 0..500 {
            if step % 3 != 2 || rels.is_empty() {
                let f = nodes[next() % nodes.len()];
                let t = nodes[next() % nodes.len()];
                rels.push(s.create_rel(f, t, 0).unwrap());
            } else {
                let idx = next() % rels.len();
                let id = rels.swap_remove(idx);
                s.delete_rel(id).unwrap();
            }
        }
        s.check_chains().unwrap();
        assert_eq!(s.rel_count(), rels.len());
    }
}
