//! Undo-log transactions over any [`KvStore`].
//!
//! The paper's definition of a full graph *database* (as opposed to a
//! graph *store*) includes a transaction engine. [`UndoKv`] provides
//! the minimal honest version: begin/commit/rollback with an undo log
//! replayed in reverse on rollback. Engines flagged as transactional in
//! their descriptor wrap their backend in this.

use crate::memkv::KvStore;
use gdm_core::{GdmError, Result};

/// Operation recorded for rollback: the key and its value before the
/// mutation (None = absent).
type UndoRecord = (Vec<u8>, Option<Vec<u8>>);

/// A [`KvStore`] wrapper adding single-writer transactions.
pub struct UndoKv<S: KvStore> {
    inner: S,
    log: Option<Vec<UndoRecord>>,
}

impl<S: KvStore> UndoKv<S> {
    /// Wraps `inner` with transaction support.
    pub fn new(inner: S) -> Self {
        Self { inner, log: None }
    }

    /// Unwraps the inner store.
    ///
    /// Calling this with a transaction still open is a bug: the undo
    /// log is discarded, so the uncommitted mutations become permanent
    /// — a *silent commit* the caller never asked for. Debug builds
    /// assert against it; resolve the transaction with
    /// [`UndoKv::commit`] or [`UndoKv::rollback`] first.
    pub fn into_inner(self) -> S {
        debug_assert!(
            self.log.is_none(),
            "UndoKv::into_inner called with an open transaction; \
             commit() or rollback() first"
        );
        self.inner
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.log.is_some()
    }

    /// Starts a transaction. Nested transactions are rejected.
    pub fn begin(&mut self) -> Result<()> {
        if self.log.is_some() {
            return Err(GdmError::InvalidArgument(
                "transaction already in progress".into(),
            ));
        }
        self.log = Some(Vec::new());
        Ok(())
    }

    /// Makes the transaction's effects permanent.
    pub fn commit(&mut self) -> Result<()> {
        if self.log.take().is_none() {
            return Err(GdmError::InvalidArgument("no open transaction".into()));
        }
        self.inner.flush()
    }

    /// Reverts every mutation made since [`UndoKv::begin`].
    pub fn rollback(&mut self) -> Result<()> {
        let Some(log) = self.log.take() else {
            return Err(GdmError::InvalidArgument("no open transaction".into()));
        };
        for (key, old) in log.into_iter().rev() {
            match old {
                Some(v) => {
                    self.inner.put(&key, &v)?;
                }
                None => {
                    self.inner.delete(&key)?;
                }
            }
        }
        Ok(())
    }
}

impl<S: KvStore> KvStore for UndoKv<S> {
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        let old = self.inner.put(key, value)?;
        if let Some(log) = &mut self.log {
            log.push((key.to_vec(), old.clone()));
        }
        Ok(old)
    }

    fn delete(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let old = self.inner.delete(key)?;
        if let Some(log) = &mut self.log {
            if old.is_some() {
                log.push((key.to_vec(), old.clone()));
            }
        }
        Ok(old)
    }

    fn scan_range(&mut self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan_range(start, end)
    }

    fn len(&mut self) -> Result<usize> {
        self.inner.len()
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memkv::MemKv;

    #[test]
    fn commit_keeps_changes() {
        let mut kv = UndoKv::new(MemKv::new());
        kv.put(b"a", b"0").unwrap();
        kv.begin().unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.commit().unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn rollback_restores_previous_state() {
        let mut kv = UndoKv::new(MemKv::new());
        kv.put(b"a", b"0").unwrap();
        kv.put(b"gone", b"x").unwrap();
        kv.begin().unwrap();
        kv.put(b"a", b"1").unwrap(); // overwrite
        kv.put(b"new", b"2").unwrap(); // insert
        kv.delete(b"gone").unwrap(); // delete
        kv.rollback().unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"0".to_vec()));
        assert_eq!(kv.get(b"new").unwrap(), None);
        assert_eq!(kv.get(b"gone").unwrap(), Some(b"x".to_vec()));
    }

    #[test]
    fn rollback_handles_repeated_writes_to_one_key() {
        let mut kv = UndoKv::new(MemKv::new());
        kv.begin().unwrap();
        kv.put(b"k", b"1").unwrap();
        kv.put(b"k", b"2").unwrap();
        kv.delete(b"k").unwrap();
        kv.put(b"k", b"3").unwrap();
        kv.rollback().unwrap();
        assert_eq!(kv.get(b"k").unwrap(), None);
    }

    #[test]
    fn nested_begin_is_rejected() {
        let mut kv = UndoKv::new(MemKv::new());
        kv.begin().unwrap();
        assert!(kv.begin().is_err());
        kv.commit().unwrap();
        assert!(kv.commit().is_err());
        assert!(kv.rollback().is_err());
    }

    #[test]
    fn mutations_outside_transactions_are_unlogged() {
        let mut kv = UndoKv::new(MemKv::new());
        kv.put(b"a", b"1").unwrap();
        assert!(!kv.in_transaction());
        kv.begin().unwrap();
        kv.rollback().unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "open transaction")]
    fn into_inner_rejects_open_transaction() {
        let mut kv = UndoKv::new(MemKv::new());
        kv.begin().unwrap();
        kv.put(b"a", b"1").unwrap();
        let _ = kv.into_inner(); // would silently commit the put
    }

    #[test]
    fn works_over_the_disk_btree() {
        let mut kv = UndoKv::new(crate::btree::DiskBTree::memory(16));
        for i in 0..100u32 {
            kv.put(format!("k{i}").as_bytes(), b"base").unwrap();
        }
        kv.begin().unwrap();
        for i in 0..100u32 {
            kv.put(format!("k{i}").as_bytes(), b"changed").unwrap();
        }
        kv.rollback().unwrap();
        assert_eq!(kv.get(b"k50").unwrap(), Some(b"base".to_vec()));
        kv.into_inner().check_invariants().unwrap();
    }
}
